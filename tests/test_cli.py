"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_defaults():
    args = build_parser().parse_args(["overhead"])
    assert args.mode == "snap"
    assert args.rate == 1_000_000
    args = build_parser().parse_args(["snapshot", "--keys", "1000"])
    assert args.keys == 1000
    assert args.queries is False


def test_parser_rejects_bad_mode():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["overhead", "--mode", "warp"])


def test_overhead_command_runs(capsys):
    code = main(["overhead", "--mode", "jet", "--rate", "100000",
                 "--measure-ms", "300"])
    assert code == 0
    out = capsys.readouterr().out
    assert "source-sink latency" in out
    assert "p99.99=" in out


def test_snapshot_command_runs(capsys):
    code = main(["snapshot", "--keys", "1000", "--checkpoints", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "phase 1+2" in out


def test_delta_command_runs(capsys):
    code = main(["delta", "--keys", "7000", "--fraction", "0.05",
                 "--incremental", "--checkpoints", "5"])
    assert code == 0
    assert "incr" in capsys.readouterr().out


def test_direct_command_runs(capsys):
    code = main(["direct", "--system", "tspoon", "--select", "10",
                 "--measure-ms", "200"])
    assert code == 0
    assert "q/s" in capsys.readouterr().out
