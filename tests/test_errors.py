"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or \
                obj is errors.ReproError


def test_subsystem_grouping():
    assert issubclass(errors.SqlParseError, errors.SqlError)
    assert issubclass(errors.SqlLexError, errors.SqlError)
    assert issubclass(errors.SqlPlanError, errors.SqlError)
    assert issubclass(errors.SqlExecutionError, errors.SqlError)
    assert issubclass(errors.CheckpointError, errors.DataflowError)
    assert issubclass(errors.GraphError, errors.DataflowError)
    assert issubclass(errors.RecoveryError, errors.DataflowError)
    assert issubclass(errors.MapNotFoundError, errors.StoreError)
    assert issubclass(errors.LockError, errors.StoreError)
    assert issubclass(errors.NodeDownError, errors.ClusterError)
    assert issubclass(errors.SnapshotNotFoundError, errors.StateError)


def test_node_down_carries_node_id():
    error = errors.NodeDownError(3)
    assert error.node_id == 3
    assert "3" in str(error)


def test_map_not_found_carries_name():
    error = errors.MapNotFoundError("orders")
    assert error.map_name == "orders"
    assert "orders" in str(error)


def test_snapshot_not_found_carries_id():
    error = errors.SnapshotNotFoundError(42)
    assert error.snapshot_id == 42
    assert "42" in str(error)


def test_catch_all_subsystems_with_base():
    with pytest.raises(errors.ReproError):
        raise errors.SqlLexError("x")
    with pytest.raises(errors.ReproError):
        raise errors.NoCommittedSnapshotError("x")


def test_log_error_is_repro_error():
    from repro.log.log import LogError

    assert issubclass(LogError, errors.ReproError)
