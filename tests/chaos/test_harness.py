"""Tests for the fault-injection harness and its invariant checks."""

import pytest

from repro import Environment
from repro.chaos import (
    ChaosEvent,
    ChaosHarness,
    assert_invariants,
    check_invariants,
    snapshot_fingerprint,
)
from repro.config import ClusterConfig
from repro.errors import InvariantViolationError
from repro.sql.executor import QueryResult


@pytest.fixture
def env4():
    return Environment(ClusterConfig(nodes=4))


def test_scripted_kill_and_restart_fire_in_order(env4):
    chaos = ChaosHarness(env4)
    chaos.schedule_kill(10.0, node_id=2)
    chaos.schedule_restart(50.0, node_id=2)
    env4.run_until(5.0)
    assert env4.cluster.node(2).alive
    env4.run_until(20.0)
    assert not env4.cluster.node(2).alive
    env4.run_until(60.0)
    assert env4.cluster.node(2).alive
    assert chaos.kills_executed == 1
    assert chaos.restarts_executed == 1
    chaos.assert_all_fired()


def test_kill_of_dead_node_is_skipped(env4):
    chaos = ChaosHarness(env4)
    chaos.schedule_kill(10.0, node_id=1)
    chaos.schedule_kill(20.0, node_id=1)  # already dead by then
    env4.run_until(30.0)
    assert chaos.kills_executed == 1
    assert chaos.events_skipped == 1
    assert "already dead" in chaos.log[-1].reason


def test_never_kills_the_last_alive_node():
    env = Environment(ClusterConfig(nodes=2))
    chaos = ChaosHarness(env)
    chaos.schedule_kill(10.0, node_id=0)
    chaos.schedule_kill(20.0, node_id=1)  # would leave zero nodes
    env.run_until(30.0)
    assert chaos.kills_executed == 1
    assert chaos.events_skipped == 1
    assert env.cluster.node(1).alive


def test_restart_of_alive_node_is_skipped(env4):
    chaos = ChaosHarness(env4)
    chaos.schedule_restart(10.0, node_id=0)
    env4.run_until(20.0)
    assert chaos.restarts_executed == 0
    assert chaos.events_skipped == 1


def test_same_seed_same_plan():
    plans = []
    for _ in range(2):
        env = Environment(ClusterConfig(nodes=4))
        chaos = ChaosHarness(env, seed=42)
        plans.append(chaos.plan_random(1_000.0, kills=3,
                                       restart_after_ms=100.0))
    assert plans[0] == plans[1]
    assert len(plans[0]) == 6  # three kills, each paired with a restart


def test_different_seeds_differ():
    def plan(seed):
        env = Environment(ClusterConfig(nodes=4))
        return ChaosHarness(env, seed=seed).plan_random(1_000.0, kills=3)

    assert plan(1) != plan(2)


def test_event_validation(env4):
    with pytest.raises(ValueError):
        ChaosEvent(10.0, "explode", 0)
    with pytest.raises(ValueError):
        ChaosEvent(-1.0, "kill", 0)
    env4.run_until(100.0)
    chaos = ChaosHarness(env4)
    with pytest.raises(ValueError):
        chaos.schedule_kill(50.0, node_id=0)  # in the past


def test_assert_all_fired_detects_unreached_events(env4):
    chaos = ChaosHarness(env4)
    chaos.schedule_kill(1_000.0, node_id=1)
    env4.run_until(10.0)
    with pytest.raises(AssertionError):
        chaos.assert_all_fired()


def test_describe_lists_every_event(env4):
    chaos = ChaosHarness(env4)
    chaos.schedule_kill(10.0, node_id=1)
    chaos.schedule_restart(20.0, node_id=1)
    env4.run_until(30.0)
    text = chaos.describe()
    assert "kill" in text and "restart" in text
    assert "1 kills, 1 restarts, 0 skipped" in text


def test_invariants_clean_on_fresh_env(env4):
    assert check_invariants(env4) == []
    assert_invariants(env4)  # does not raise


def test_invariants_flag_leaked_lock(env4):
    assert env4.store.locks.try_acquire(("t", 1), "leaker")
    violations = check_invariants(env4)
    assert any("leaked" in v for v in violations)
    with pytest.raises(InvariantViolationError):
        assert_invariants(env4)


def test_invariants_flag_hung_execution(env4):
    from repro.query import QueryService

    from ..conftest import build_average_job, make_squery_backend

    backend = make_squery_backend(env4)
    job = build_average_job(env4, backend=backend, rate=2000, keys=10)
    job.start()
    env4.run_until(1_500)
    service = QueryService(env4)
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    # Deliberately do not advance the clock: the query is still open.
    violations = check_invariants(env4, [execution])
    assert any("hung" in v for v in violations)
    assert any("in-flight" in v for v in violations)
    env4.run_for(1_000)
    assert check_invariants(env4, [execution]) == []


def test_snapshot_fingerprint_is_order_independent():
    rows = [{"key": 1, "count": 2}, {"key": 2, "count": 5}]
    a = QueryResult(columns=["key", "count"], rows=rows)
    b = QueryResult(columns=["key", "count"], rows=list(reversed(rows)))
    assert snapshot_fingerprint(a) == snapshot_fingerprint(b)
    c = QueryResult(columns=["key", "count"],
                    rows=[{"key": 1, "count": 2}, {"key": 2, "count": 6}])
    assert snapshot_fingerprint(a) != snapshot_fingerprint(c)


def test_unseeded_harness_is_deterministic():
    """An omitted seed must mean a fixed default, never the wall clock:
    two unseeded harnesses plan identical fault schedules."""
    def plan():
        env = Environment(ClusterConfig(nodes=4))
        chaos = ChaosHarness(env)
        events = chaos.plan_random(horizon_ms=2_000.0, kills=3,
                                   restart_after_ms=250.0)
        return [(e.at_ms, e.action, e.node_id) for e in events]

    assert plan() == plan()


def test_explicit_seed_still_wins_over_default():
    env = Environment(ClusterConfig(nodes=4))
    seeded = ChaosHarness(env, seed=ChaosHarness.DEFAULT_SEED + 1)
    default = ChaosHarness(Environment(ClusterConfig(nodes=4)))
    a = seeded.plan_random(horizon_ms=2_000.0, kills=3)
    b = default.plan_random(horizon_ms=2_000.0, kills=3)
    assert [(e.at_ms, e.node_id) for e in a] \
        != [(e.at_ms, e.node_id) for e in b]
