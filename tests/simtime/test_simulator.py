"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.simtime import Simulator


def test_starts_at_time_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_schedule_and_run_until_executes_in_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]
    assert sim.now == 10.0


def test_run_until_respects_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.schedule(15.0, fired.append, 2)
    sim.run_until(10.0)
    assert fired == [1]
    assert sim.now == 10.0
    sim.run_until(20.0)
    assert fired == [1, 2]


def test_equal_timestamps_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(3.0, order.append, tag)
    sim.run_until(3.0)
    assert order == [0, 1, 2, 3, 4]


def test_events_scheduled_during_execution_run_within_horizon():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run_until(10.0)
    assert seen == [0, 1, 2, 3]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_run_until_past_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(4.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(2.0, fired.append, "x")
    assert handle.active
    handle.cancel()
    assert not handle.active
    sim.run_until(5.0)
    assert fired == []


def test_cancellation_reflected_in_pending_count():
    sim = Simulator()
    handle = sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    assert sim.pending_events == 2
    handle.cancel()
    assert sim.pending_events == 1


def test_run_drains_queue_and_counts():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    executed = sim.run()
    assert executed == 3
    assert sim.processed_events == 3
    assert sim.pending_events == 0


def test_run_with_max_events():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    assert sim.run(max_events=2) == 2
    assert sim.pending_events == 1


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_time_never_goes_backwards():
    sim = Simulator()
    times = []
    for delay in (3.0, 1.0, 2.0, 1.0):
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
