"""Tests for deterministic named random streams."""

from repro.simtime import RngStreams


def test_same_seed_same_sequence():
    a = RngStreams(42)
    b = RngStreams(42)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_different_names_are_decorrelated():
    streams = RngStreams(42)
    xs = [streams.stream("x").random() for _ in range(5)]
    ys = [streams.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    a = RngStreams(1)
    b = RngStreams(2)
    assert a.stream("x").random() != b.stream("x").random()


def test_stream_is_cached_not_restarted():
    streams = RngStreams(7)
    first = streams.stream("x").random()
    second = streams.stream("x").random()
    assert first != second  # continues, not reset


def test_using_one_stream_does_not_perturb_another():
    a = RngStreams(42)
    b = RngStreams(42)
    # Drain lots of values from an unrelated stream in `a` only.
    for _ in range(100):
        a.stream("noise").random()
    assert a.stream("signal").random() == b.stream("signal").random()


def test_exponential_positive_with_given_mean():
    streams = RngStreams(3)
    samples = [streams.exponential("arr", 10.0) for _ in range(2000)]
    assert all(s >= 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert 9.0 < mean < 11.0


def test_exponential_zero_mean_is_zero():
    assert RngStreams(1).exponential("x", 0.0) == 0.0


def test_uniform_within_bounds():
    streams = RngStreams(5)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= value <= 3.0
