"""Tests for Server and WorkerPool resources."""

import pytest

from repro.errors import SimulationError
from repro.simtime import Server, Simulator, WorkerPool


def test_server_runs_jobs_fifo():
    sim = Simulator()
    done = []
    server = Server(sim)
    server.submit(2.0, lambda: done.append(("a", sim.now)))
    server.submit(3.0, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", 2.0), ("b", 5.0)]


def test_server_queues_after_busy_period():
    sim = Simulator()
    server = Server(sim)
    first = server.submit(4.0)
    second = server.submit(1.0)
    assert first == 4.0
    assert second == 5.0  # waits for the first job


def test_server_idle_gap_resets_queue():
    sim = Simulator()
    server = Server(sim)
    server.submit(1.0)
    sim.run_until(10.0)
    finish = server.submit(1.0)
    assert finish == 11.0  # starts immediately at now=10


def test_server_tracks_wait_and_busy_time():
    sim = Simulator()
    server = Server(sim)
    server.submit(2.0)
    server.submit(2.0)  # waits 2ms
    assert server.total_busy_ms == 4.0
    assert server.total_wait_ms == 2.0
    assert server.jobs_served == 2


def test_server_rejects_negative_duration():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Server(sim).submit(-1.0)


def test_server_utilization():
    sim = Simulator()
    server = Server(sim)
    server.submit(5.0)
    assert server.utilization(10.0) == pytest.approx(0.5)


def test_pool_parallelism_across_keys():
    sim = Simulator()
    pool = WorkerPool(sim, workers=2)
    f1 = pool.submit("a", 5.0)
    f2 = pool.submit("b", 5.0)
    assert f1 == 5.0
    assert f2 == 5.0  # runs on the second worker


def test_pool_serialises_same_key():
    sim = Simulator()
    pool = WorkerPool(sim, workers=4)
    f1 = pool.submit("a", 5.0)
    f2 = pool.submit("a", 1.0)
    assert f1 == 5.0
    assert f2 == 6.0  # same key: must wait despite free workers


def test_pool_queues_when_all_workers_busy():
    sim = Simulator()
    pool = WorkerPool(sim, workers=2)
    pool.submit("a", 4.0)
    pool.submit("b", 4.0)
    finish = pool.submit("c", 1.0)
    assert finish == 5.0


def test_pool_completion_callbacks_fire_in_time_order():
    sim = Simulator()
    pool = WorkerPool(sim, workers=2)
    done = []
    pool.submit("a", 3.0, lambda: done.append(("a", sim.now)))
    pool.submit("b", 1.0, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("b", 1.0), ("a", 3.0)]


def test_pool_key_available_at():
    sim = Simulator()
    pool = WorkerPool(sim, workers=1)
    pool.submit("a", 7.0)
    assert pool.key_available_at("a") == 7.0
    assert pool.key_available_at("zzz") == 0.0


def test_pool_requires_positive_workers():
    with pytest.raises(SimulationError):
        WorkerPool(Simulator(), workers=0)


def test_pool_utilization_accounts_all_workers():
    sim = Simulator()
    pool = WorkerPool(sim, workers=2)
    pool.submit("a", 5.0)
    assert pool.utilization(10.0) == pytest.approx(0.25)


def test_pool_many_keys_fair_progress():
    sim = Simulator()
    pool = WorkerPool(sim, workers=3)
    finishes = [pool.submit(key, 1.0) for key in range(9)]
    # 9 unit jobs over 3 workers: waves at t=1, 2, 3.
    assert sorted(finishes) == [1.0] * 3 + [2.0] * 3 + [3.0] * 3
