"""Tests for the event queue internals."""

import pytest

from repro.errors import SimulationError
from repro.simtime.events import Event, EventQueue


def test_pop_in_time_order():
    queue = EventQueue()
    for time in (3.0, 1.0, 2.0):
        queue.push(time, lambda: None, ())
    times = []
    while True:
        event = queue.pop()
        if event is None:
            break
        times.append(event.time)
    assert times == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None, ())
    second = queue.push(1.0, lambda: None, ())
    del first, second
    a = queue.pop()
    b = queue.pop()
    assert a.seq < b.seq


def test_cancelled_events_skipped_by_pop():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, ())
    queue.push(2.0, lambda: None, ())
    handle.cancel()
    event = queue.pop()
    assert event.time == 2.0


def test_len_excludes_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, ())
    queue.push(2.0, lambda: None, ())
    assert len(queue) == 2
    handle.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, ())
    queue.push(5.0, lambda: None, ())
    assert queue.peek_time() == 1.0
    handle.cancel()
    assert queue.peek_time() == 5.0


def test_peek_time_empty():
    assert EventQueue().peek_time() is None
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, ())
    handle.cancel()
    assert queue.peek_time() is None


def test_nan_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(float("nan"), lambda: None, ())


def test_event_ordering_dataclass():
    early = Event(1.0, 0, lambda: None)
    late = Event(2.0, 0, lambda: None)
    assert early < late


def test_handle_time_property():
    queue = EventQueue()
    handle = queue.push(7.5, lambda: None, ())
    assert handle.time == 7.5
    assert handle.active
