"""Tests for SSTables and bloom filters."""

from repro.lsm import BloomFilter, SSTable, TOMBSTONE


def test_bloom_no_false_negatives():
    keys = list(range(0, 2000, 3))
    bloom = BloomFilter(keys)
    assert all(bloom.might_contain(key) for key in keys)


def test_bloom_filters_most_absent_keys():
    bloom = BloomFilter(range(1000))
    absent = range(100_000, 102_000)
    false_positives = sum(1 for k in absent if bloom.might_contain(k))
    assert false_positives < len(list(absent)) * 0.3


def test_bloom_empty():
    bloom = BloomFilter([])
    assert bloom.size_bits >= 8


def test_sstable_sorted_by_key_then_version_desc():
    table = SSTable([(2, 1, "a"), (1, 5, "b"), (1, 9, "c"), (2, 3, "d")])
    assert table.entries == [
        (1, 9, "c"), (1, 5, "b"), (2, 3, "d"), (2, 1, "a"),
    ]
    assert table.min_key == 1
    assert table.max_key == 2


def test_sstable_get_newest_visible_version():
    table = SSTable([(1, 5, "v5"), (1, 9, "v9"), (1, 2, "v2")])
    assert table.get(1, 9) == ("found", "v9", 1)
    assert table.get(1, 7)[0:2] == ("found", "v5")
    assert table.get(1, 2)[0:2] == ("found", "v2")


def test_sstable_get_newer_only():
    table = SSTable([(1, 9, "v9")])
    status, value, touched = table.get(1, 5)
    assert status == "newer_only"
    assert touched == 1


def test_sstable_get_absent():
    table = SSTable([(1, 9, "v9")])
    assert table.get(42, 100) == ("absent", None, 0)


def test_sstable_get_tombstone_is_found():
    table = SSTable([(1, 5, TOMBSTONE)])
    status, value, _ = table.get(1, 6)
    assert status == "found"
    assert value is TOMBSTONE


def test_versions_of_newest_first():
    table = SSTable([(1, 2, "a"), (1, 8, "b"), (2, 1, "x")])
    assert table.versions_of(1) == [(8, "b"), (2, "a")]
    assert table.versions_of(3) == []


def test_empty_sstable():
    table = SSTable([])
    assert len(table) == 0
    assert table.min_key is None
    assert table.get(1, 1) == ("absent", None, 0)
