"""Tests for the MVCC LSM store."""

import pytest

from repro.errors import StoreError
from repro.lsm import LsmStore, TOMBSTONE


def test_put_get_latest():
    store = LsmStore()
    store.put("k", 1, "a")
    store.put("k", 3, "b")
    assert store.get("k") == "b"
    assert store.get("k", ssid=2) == "a"
    assert store.get("k", ssid=0) is None


def test_delete_hides_key():
    store = LsmStore()
    store.put("k", 1, "a")
    store.delete("k", 2)
    assert store.get("k") is None
    assert store.get("k", ssid=1) == "a"


def test_reads_span_memtable_and_runs():
    store = LsmStore(memtable_limit=2)
    store.put("a", 1, "a1")
    store.put("b", 1, "b1")   # triggers flush
    store.put("a", 2, "a2")   # in memtable
    assert store.l0_runs == 1
    assert store.get("a") == "a2"
    assert store.get("a", ssid=1) == "a1"
    assert store.get("b") == "b1"


def test_flush_threshold_creates_runs():
    store = LsmStore(memtable_limit=4, l0_compaction_threshold=100)
    for i in range(20):
        store.put(i, 1, i)
    assert store.l0_runs == 5
    assert store.memtable_size() == 0
    assert store.stats.flushes == 5


def test_compaction_merges_l0_into_l1():
    store = LsmStore(memtable_limit=2, l0_compaction_threshold=2)
    for i in range(12):
        store.put(i % 4, i, f"v{i}")
    assert store.stats.compactions >= 1
    assert store.read_amplification_bound <= 3
    # Everything still readable at its version.
    for i in range(12):
        assert store.get(i % 4, ssid=i) == f"v{i}"


def test_explicit_compact_bounds_read_amplification():
    store = LsmStore(memtable_limit=2, l0_compaction_threshold=1000)
    for i in range(40):
        store.put(i % 8, i, i)
    assert store.l0_runs == 20
    store.compact()
    assert store.l0_runs == 0
    assert store.read_amplification_bound == 1


def test_gc_drops_versions_below_watermark():
    store = LsmStore(memtable_limit=1000)
    for version in range(1, 11):
        store.put("k", version, f"v{version}")
    store.flush()
    before = store.total_entries()
    store.set_watermark(8)
    store.compact()
    assert store.total_entries() < before
    # Every retained snapshot (>= watermark) reconstructs exactly;
    # snapshots below the watermark are retired and no longer readable.
    assert store.get("k", ssid=8) == "v8"
    assert store.get("k", ssid=9) == "v9"
    assert store.get("k", ssid=10) == "v10"
    assert store.stats.entries_dropped == 7


def test_gc_removes_dead_keys_entirely():
    store = LsmStore(memtable_limit=1000)
    store.put("k", 1, "a")
    store.delete("k", 2)
    store.flush()
    store.set_watermark(5)
    store.compact()
    assert store.total_entries() == 0
    assert store.get("k") is None


def test_gc_keeps_tombstone_when_newer_versions_exist():
    store = LsmStore(memtable_limit=1000)
    store.put("k", 1, "a")
    store.delete("k", 2)
    store.put("k", 9, "reborn")
    store.flush()
    store.set_watermark(5)
    store.compact()
    assert store.get("k", ssid=9) == "reborn"
    assert store.get("k", ssid=5) is None


def test_scan_at_reconstructs_snapshot():
    store = LsmStore(memtable_limit=3)
    store.put("a", 1, "a1")
    store.put("b", 1, "b1")
    store.put("a", 2, "a2")
    store.delete("b", 2)
    view1 = dict(store.scan_at(1))
    view2 = dict(store.scan_at(2))
    assert view1 == {"a": "a1", "b": "b1"}
    assert view2 == {"a": "a2"}


def test_scan_cost_counts_all_versions():
    store = LsmStore(memtable_limit=1000)
    for version in range(5):
        store.put("k", version, version)
    assert store.scan_cost_at(10) == 5
    store.flush()
    assert store.scan_cost_at(10) == 5


def test_versions_of_lists_history():
    store = LsmStore(memtable_limit=2)
    for version in (1, 2, 3):
        store.put("k", version, f"v{version}")
    history = store.versions_of("k")
    assert history == [(3, "v3"), (2, "v2"), (1, "v1")]


def test_bloom_skips_runs_for_absent_keys():
    store = LsmStore(memtable_limit=10)
    for i in range(100):
        store.put(i, 1, i)
    store.flush()
    before = store.stats.bloom_negatives
    for probe in range(1_000_000, 1_000_050):
        store.get(probe)
    assert store.stats.bloom_negatives > before


def test_write_amplification_tracked():
    store = LsmStore(memtable_limit=4, l0_compaction_threshold=2)
    for i in range(32):
        store.put(i, 1, i)
    assert store.stats.write_amplification >= 1.0


def test_invalid_config():
    with pytest.raises(StoreError):
        LsmStore(memtable_limit=0)
    with pytest.raises(StoreError):
        LsmStore(l0_compaction_threshold=0)


def test_tombstone_sentinel_identity():
    assert TOMBSTONE is TOMBSTONE
