"""Tests for the Kafka-like partitioned log and the log-backed source."""

import pytest

from repro import ClusterConfig, Environment, JobConfig, Pipeline
from repro.dataflow import Job, KeyedAggregateOperator, SinkOperator
from repro.dataflow.sources import RETRY
from repro.errors import ConfigurationError
from repro.log import LogAppender, LogBackedSource, PartitionedLog
from repro.log.log import LogError

from ..conftest import make_squery_backend


def test_append_assigns_sequential_offsets():
    log = PartitionedLog("events", partitions=2)
    assert log.append(0, "a", 1) == 0
    assert log.append(0, "b", 2) == 1
    assert log.append(1, "c", 3) == 0
    assert log.end_offset(0) == 2
    assert log.end_offset(1) == 1
    assert log.total_records() == 3


def test_read_and_fetch():
    log = PartitionedLog("events", partitions=1)
    for i in range(10):
        log.append(0, i, i * 10)
    assert log.read(0, 3).value == 30
    batch = log.fetch(0, 7, max_records=5)
    assert [r.offset for r in batch] == [7, 8, 9]
    assert log.fetch(0, 99) == []


def test_invalid_operations_raise():
    log = PartitionedLog("events", partitions=1)
    with pytest.raises(LogError):
        log.read(0, 0)
    with pytest.raises(LogError):
        log.read(5, 0)
    with pytest.raises(LogError):
        log.fetch(0, -1)
    with pytest.raises(ConfigurationError):
        PartitionedLog("bad", partitions=0)


def test_append_keyed_routes_by_hash():
    log = PartitionedLog("events", partitions=4)
    partition, offset = log.append_keyed(42, "v")
    assert partition == 42 % 4
    assert offset == 0
    again, _ = log.append_keyed(42, "w")
    assert again == partition


def test_log_backed_source_reads_then_retries():
    log = PartitionedLog("events", partitions=2)
    log.append(0, "k", "v0")
    source = LogBackedSource(log)
    assert source.generate(0, 0) == ("k", "v0")
    assert source.generate(0, 1) is RETRY
    log.append(0, "k", "v1")
    assert source.generate(0, 1) == ("k", "v1")
    # Instance 1 reads partition 1, which is empty.
    assert source.generate(1, 0) is RETRY


def test_appender_produces_at_rate():
    from repro.simtime import Simulator

    sim = Simulator()
    log = PartitionedLog("events", partitions=3)
    appender = LogAppender(sim, log, rate_per_s=1000.0,
                           value_fn=lambda p, o: (o, o))
    appender.start()
    sim.run_until(2_000)
    assert 1600 < appender.appended < 2400
    # Round-robin keeps partitions balanced.
    sizes = [log.end_offset(p) for p in range(3)]
    assert max(sizes) - min(sizes) <= appender.appended * 0.2
    appender.stop()
    count = appender.appended
    sim.run_until(3_000)
    assert appender.appended == count


def build_log_job(env, log, backend=None):
    pipeline = Pipeline()
    pipeline.add_source("kafka", LogBackedSource(log,
                                                 poll_rate_per_s=6000))
    pipeline.add_operator(
        "count", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("kafka", "count")
    pipeline.connect("count", "out")
    return Job(env, pipeline, JobConfig(parallelism=3,
                                        checkpoint_interval_ms=500),
               backend)


def test_job_consumes_live_log_end_to_end():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    log = PartitionedLog("events", partitions=3)
    appender = LogAppender(env.sim, log, rate_per_s=2000.0,
                           value_fn=lambda p, o: (o % 20, 1))
    job = build_log_job(env, log)
    appender.start()
    job.start()
    env.run_until(2_000)
    appender.stop()
    env.run_until(4_000)  # consumers drain the backlog
    total = sum(job.operator_state("count").values())
    assert total == log.total_records()


def test_exactly_once_across_failure_with_log_source():
    """The §VI story: checkpointed offsets + a replayable log = the
    failure run converges to exactly the log's contents, no loss, no
    duplication — even though the producer kept appending during the
    failure."""
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    log = PartitionedLog("events", partitions=3)
    appender = LogAppender(env.sim, log, rate_per_s=2000.0,
                           value_fn=lambda p, o: ((p * 31 + o) % 25, 1))
    job = build_log_job(env, log, backend)
    appender.start()
    job.start()
    env.run_until(1_700)
    env.cluster.kill_node(2)
    env.run_until(3_000)
    appender.stop()
    env.run_until(6_000)
    state = job.operator_state("count")
    assert sum(state.values()) == log.total_records()
    # Per-key counts match an independent recount of the log.
    expected = {}
    for partition in range(3):
        for record in log.iter_partition(partition):
            expected[record.key] = expected.get(record.key, 0) + 1
    assert state == expected
    assert job.metrics.recoveries == 1
