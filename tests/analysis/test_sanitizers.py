"""Runtime sanitizer tests: each invariant has a trigger and the
armed detectors stay silent on a healthy workload.

Every test here passes an explicit :class:`SanitizerConfig`, so the
autouse fixture's end-of-test ``verify()`` (which only covers
default-armed runtimes) does not double-fail the deliberate
violations.
"""

import pytest

from repro.analysis.sanitizers import SanitizerRuntime, install_sanitizers
from repro.config import ClusterConfig, SanitizerConfig
from repro.env import Environment
from repro.errors import ConfigurationError, SanitizerError
from repro.query.service import QueryService
from repro.state.isolation import IsolationLevel
from repro.state.snapshots import FullSnapshotTable

from ..conftest import build_average_job, make_squery_backend


def armed_env(**config_overrides):
    config_overrides.setdefault("fail_fast", True)
    config = SanitizerConfig(enabled=True, **config_overrides)
    return Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        sanitizers=config,
    )


def commit_snapshot_with_table(env, ssid=1):
    table = FullSnapshotTable("snapshot_t", parallelism=2,
                              node_of_instance=lambda i: i % 2)
    env.store.register_snapshot_table("snapshot_t", table)
    env.store.begin_snapshot(ssid)
    table.write_instance(ssid, 0, {"a": 1.0})
    table.write_instance(ssid, 1, {"b": 2.0})
    env.store.commit_snapshot(ssid)
    return table


# -- snapshot immutability -------------------------------------------------


def test_write_to_committed_snapshot_raises():
    env = armed_env()
    table = commit_snapshot_with_table(env)
    with pytest.raises(SanitizerError, match="immutable"):
        table.write_instance(1, 0, {"a": 99.0})


def test_drop_of_queryable_snapshot_raises():
    env = armed_env()
    table = commit_snapshot_with_table(env)
    with pytest.raises(SanitizerError, match="still queryable"):
        table.drop_snapshot(1)


def test_retired_snapshot_can_be_dropped():
    env = armed_env()
    table = commit_snapshot_with_table(env, ssid=1)
    env.store.begin_snapshot(2)
    table.write_instance(2, 0, {"a": 1.5})
    env.store.commit_snapshot(2)
    retired = env.store.retire_snapshots(keep=1)
    assert retired == [1]
    assert not table.has_snapshot(1)  # retire already dropped it


def test_writes_to_in_progress_snapshot_are_fine():
    env = armed_env()
    table = commit_snapshot_with_table(env, ssid=1)
    env.store.begin_snapshot(2)
    table.write_instance(2, 0, {"a": 7.0})  # uncommitted: allowed
    env.store.commit_snapshot(2)


def test_fingerprint_catches_in_place_mutation():
    env = armed_env(snapshot_fingerprints=True, fail_fast=False)
    table = commit_snapshot_with_table(env)
    # Reach around the store API and corrupt committed state directly —
    # exactly what the write_instance guard cannot see.
    table._by_ssid[1][0]["a"] = -123.0
    violations = env.sanitizers.verify()
    assert any(v.kind == "torn-snapshot" for v in violations)


def test_fingerprint_passes_when_untouched():
    env = armed_env(snapshot_fingerprints=True, fail_fast=False)
    commit_snapshot_with_table(env)
    assert env.sanitizers.verify() == []


# -- lock leaks ------------------------------------------------------------


def test_query_completing_with_held_lock_raises():
    env = armed_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            limit_per_instance=200)
    job.start()
    env.run_until(1_500)
    service = QueryService(env)
    execution = service.submit('SELECT * FROM "average"')
    # Simulate a buggy path acquiring a key lock for the execution and
    # never releasing it; completion must detect the leak.
    assert env.store.locks.try_acquire(("average", 3), execution)
    with pytest.raises(SanitizerError, match="lock"):
        env.run_for(3_000)


def test_verify_flags_lock_held_by_finished_owner():
    env = armed_env(fail_fast=False)

    class FinishedOwner:
        qid = 404
        done = True

    assert env.store.locks.try_acquire(("t", 1), FinishedOwner())
    violations = env.sanitizers.verify()
    assert any(v.kind == "lock-leak" for v in violations)


# -- billing / isolation ---------------------------------------------------


def test_live_query_resolving_snapshot_id_raises():
    env = armed_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            limit_per_instance=200)
    job.start()
    env.run_until(1_500)
    service = QueryService(env)
    # Forge a snapshot resolution on a read-uncommitted live query just
    # before it completes: the sanitizer's completion check must reject
    # the classification mismatch.
    sanitized_finish = service._finish_execution

    def forge_then_finish(execution, result, error):
        execution.snapshot_id = 1
        sanitized_finish(execution, result, error)

    service._finish_execution = forge_then_finish
    service.submit('SELECT * FROM "average"')
    with pytest.raises(SanitizerError, match="read-uncommitted"):
        env.run_for(3_000)


def test_shipped_rows_with_zero_bytes_raises():
    env = armed_env(fail_fast=True)
    runtime = env.sanitizers

    class FakeLiveExecution:
        qid = 7
        error = None
        snapshot_id = None
        snapshot_versions = None
        rows_shipped = 50
        bytes_shipped = 0
        isolation = IsolationLevel.READ_UNCOMMITTED

    with pytest.raises(SanitizerError, match="zero bytes"):
        runtime._check_billing(FakeLiveExecution())


# -- dead-node scheduling --------------------------------------------------


def test_submit_to_dead_node_pool_raises():
    env = armed_env()
    env.cluster.kill_node(1)
    node = env.cluster.node(1)
    with pytest.raises(SanitizerError, match="down"):
        node.query_pool.submit("job", 1.0, lambda: None)


def test_submit_to_live_node_pool_is_fine():
    env = armed_env()
    node = env.cluster.node(1)
    node.query_pool.submit("job", 1.0)
    env.run_for(10)


# -- clean end-to-end run --------------------------------------------------


def test_full_workload_under_all_sanitizers_is_clean():
    env = armed_env(snapshot_fingerprints=True)
    backend = make_squery_backend(env, repeatable_read_locks=True)
    job = build_average_job(env, backend=backend, rate=3000, keys=20,
                            checkpoint_interval_ms=500,
                            limit_per_instance=400)
    job.start()
    service = QueryService(env, repeatable_read=True)
    results = []
    env.sim.schedule(
        700, lambda: results.append(
            service.submit('SELECT * FROM "average"')
        )
    )
    env.sim.schedule(
        900, lambda: results.append(
            service.submit('SELECT COUNT(*) AS n FROM "snapshot_average"')
        )
    )
    env.run_until(4_000)
    for execution in results:
        assert execution.done and execution.error is None
    assert env.sanitizers.verify() == []


# -- wiring ----------------------------------------------------------------


def test_autouse_default_arms_new_environments(env):
    assert isinstance(env.sanitizers, SanitizerRuntime)
    assert env.sanitizers.from_default


def test_explicit_config_is_not_marked_default():
    env = armed_env()
    assert not env.sanitizers.from_default


def test_disabled_config_installs_nothing():
    env = Environment(sanitizers=SanitizerConfig(enabled=False))
    assert env.sanitizers is None


def test_fingerprints_require_immutability_guard():
    with pytest.raises(ConfigurationError):
        SanitizerConfig(snapshot_immutability=False,
                        snapshot_fingerprints=True).validate()


def test_report_counts_sanitizer_violations():
    from repro.observability import collect_report

    env = armed_env(fail_fast=False)
    table = commit_snapshot_with_table(env)
    table.write_instance(1, 0, {"a": 5.0})  # recorded, not raised
    report = collect_report(env)
    assert report.sanitizer_violations == 1
