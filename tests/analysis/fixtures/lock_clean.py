"""Lock-pairing fixture: disciplined acquire patterns, none flagged."""


def balanced(locks, key, owner):
    locks.acquire(key, owner)
    locks.release(key, owner)


def finally_protected(locks, key, owner, work):
    locks.acquire(key, owner)
    try:
        if not work:
            return None
        return work()
    finally:
        locks.release(key, owner)


def granted_handover(locks, key, owner, on_granted):
    # The callback owns the release; the runtime sanitizer checks it.
    locks.acquire(key, owner, granted=on_granted)


def checked_try_acquire(locks, key, owner):
    if locks.try_acquire(key, owner):
        locks.release(key, owner)
        return True
    return False
