"""Determinism-rule fixture: nothing here should be flagged."""

import random


def virtual_clock(sim):
    return sim.now


def seeded(seed):
    rng = random.Random(seed)
    explicit = random.Random(x=42)
    return rng.random(), explicit.random()


def set_order(counters):
    out = []
    for key in sorted({"b", "a", "c"}):
        out.append(key)
    out.extend(sorted(set(counters)))
    value = counters.pop("a", None)
    return out, value
