"""Determinism-rule fixture: every statement here should be flagged."""

import datetime
import os
import random
import time
import uuid


def wall_clock():
    started = time.time()  # VIOLATION: wall-clock read
    elapsed = time.perf_counter()  # VIOLATION: wall-clock read
    stamp = datetime.datetime.now()  # VIOLATION: wall-clock read
    return started, elapsed, stamp


def entropy():
    rng = random.Random()  # VIOLATION: unseeded Random
    draw = random.random()  # VIOLATION: process-global stream
    pick = random.choice([1, 2, 3])  # VIOLATION: process-global stream
    token = uuid.uuid4()  # VIOLATION: entropy source
    raw = os.urandom(8)  # VIOLATION: entropy source
    return rng, draw, pick, token, raw


def set_order(counters):
    out = []
    for key in {"b", "a", "c"}:  # VIOLATION: set iteration order
        out.append(key)
    out.extend(list(set(counters)))  # VIOLATION: list(set(...))
    k, v = counters.popitem()  # VIOLATION: popitem order
    return out, k, v
