"""Billing fixture: every send billed, every counter rolled up."""


def ship_billed(cluster, src, dst, deliver, payload, cost):
    cluster.network.send(src, dst, deliver, payload, nbytes=cost)


def not_a_network_send(mailbox, message):
    # ``send`` on a non-network receiver is out of scope for the rule.
    mailbox.send(message)


class ClusterReport:
    horizon_ms: float
    messages: int = 0
    bytes_total: int = 0


def collect_report(env):
    report = ClusterReport()
    report.messages = env.cluster.network.messages_sent
    report.bytes_total = env.cluster.network.bytes_sent
    return report
