"""Billing fixture: unbilled sends and an orphaned report counter."""


def ship_unbilled(cluster, src, dst, deliver, payload):
    cluster.network.send(src, dst, deliver, payload)  # VIOLATION


def ship_unbilled_bare(network, src, dst, deliver):
    network.send(src, dst, deliver)  # VIOLATION: no nbytes=


class ClusterReport:
    horizon_ms: float
    messages: int = 0
    orphaned_counter: int = 0  # VIOLATION: never rolled up below


def collect_report(env):
    report = ClusterReport()
    report.messages = env.cluster.network.messages_sent
    return report
