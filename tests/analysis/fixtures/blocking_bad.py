"""Fixture: blocking operations performed while a lock is held."""


def flush_under_lock(locks, pool):
    locks.acquire("orders", "writer")
    pool.submit("flush", 1.0, None)
    locks.release("orders", "writer")


def drain_under_lock(locks, channel, sim):
    locks.acquire("orders", "drainer")
    while True:
        channel.wait()
        sim.sleep(5.0)
    locks.release("orders", "drainer")
