"""Fixture: network traffic, benign here (no lock held locally)."""


def ship_all(network, rows):
    for row in rows:
        network.send(0, 1, row, nbytes=64)
