"""Attempt-token fixture: guarded partial collection, none flagged."""


def merge_chunk(state, table, shard, rows, attempt):
    if state["attempt"][table] != attempt:
        return  # stale chunk from a pre-retry scan
    state["rows"][shard] = rows


def bump_scanned(state, table, count, token):
    if state["attempt"][table] != token:
        return
    state["scanned"] += count


def bill_shipment(execution, nbytes, attempt):
    # Guarded by taking the token as a parameter (forwarded upstream).
    execution.bytes_shipped += nbytes


def unrelated_counter(metrics):
    # Not a partial-collection write: out of scope for the rule.
    metrics.events += 1
