"""Fixture: the blocking call is two modules away from the lock.

Alone this file is clean — ``ship_all`` only resolves once the
call-graph pass links it with ``blocking_bad_inner``.
"""

import blocking_bad_inner as shipper


def rebalance(locks, network, rows):
    locks.acquire("orders", "rebalancer")
    shipper.ship_all(network, rows)
    locks.release("orders", "rebalancer")
