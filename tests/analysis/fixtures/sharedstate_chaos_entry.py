"""Fixture: a chaos-path module importing the same shared cache."""

import sharedstate_cache


def invalidate(statement):
    sharedstate_cache.RESULTS.pop(statement, None)
