"""Fixture: a query-path module importing the shared cache module."""

import sharedstate_cache


def answer(statement):
    return sharedstate_cache.RESULTS.get(statement)
