"""Fixture: the cooperative pattern — release first, then block."""


def flush_after_release(locks, pool, sim):
    locks.acquire("orders", "writer")
    sim.schedule(5.0, print)  # async: registers a callback and returns
    locks.release("orders", "writer")
    pool.submit("flush", 1.0, None)


def bounded_drain(locks, channel):
    locks.acquire("orders", "drainer")
    for _ in range(8):
        pass  # no IO inside the loop, and it is bounded
    locks.release("orders", "drainer")
