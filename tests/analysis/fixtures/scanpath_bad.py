"""Fixture: per-row interpreter calls inside scan-path loops.

The ``scanpath_`` filename prefix puts this file in the compiled-scan
rule's scope.  Three violations: a call in a ``for`` loop, one in a
``while`` loop, and one in a list comprehension.
"""


def scan_rows(rows, predicate, context):
    kept = []
    for row in rows:
        if eval_predicate(predicate, row, context):  # noqa: F821
            kept.append(row)
    return kept


def drain(queue, expr, context):
    values = []
    while queue:
        row = queue.pop(0)
        values.append(eval_expr(expr, row, context))  # noqa: F821
    return values


def project(rows, expr, executor):
    return [executor.eval_expr(expr, row, None) for row in rows]
