"""Fixture: nested acquisition in one global order — no cycle."""


def scan_then_maintain(locks, rows):
    locks.acquire("table_a", "worker")
    update_index(locks, rows)
    locks.release("table_a", "worker")


def update_index(locks, rows):
    locks.acquire("table_b", "worker")
    locks.release("table_b", "worker")


def maintain_directly(locks, rows):
    # Same order as the nested path: table_a before table_b.
    locks.acquire("table_a", "maintainer")
    locks.acquire("table_b", "maintainer")
    locks.release_all("maintainer")
