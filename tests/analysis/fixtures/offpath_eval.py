"""Fixture: per-row eval in a loop, but not on the scan path.

No ``repro/query/`` or ``repro/sql/`` path segment and no
``scanpath_`` prefix, so the compiled-scan rule must ignore it:
central and continuous execution evaluate per row by design.
"""


def notify_subscribers(rows, predicate, context):
    matched = []
    for row in rows:
        if eval_predicate(predicate, row, context):  # noqa: F821
            matched.append(row)
    return matched
