"""Fixture: module C of the cycle (index update closing the loop).

Acquires ``table_a`` — which module A holds while (transitively)
calling into here — while module B's ``table_b`` is held.
"""


def update_index(locks, row):
    locks.acquire("table_a", "indexer")
    locks.release("table_a", "indexer")
