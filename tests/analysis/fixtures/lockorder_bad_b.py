"""Fixture: module B of the cycle (plan maintenance, middle hop)."""

import lockorder_bad_c as indexes


def refresh_plan(locks, row):
    locks.acquire("table_b", "planner")
    indexes.update_index(locks, row)
    locks.release("table_b", "planner")
