"""Lock-pairing fixture: leaky acquire patterns, all flagged."""


def early_return_leak(locks, key, owner, ready):
    locks.acquire(key, owner)
    if not ready:
        return None  # VIOLATION: returns while the lock is held
    locks.release(key, owner)
    return True


def raise_leak(locks, key, owner, value):
    locks.acquire(key, owner)
    if value < 0:
        raise ValueError(value)  # VIOLATION: raises while held
    locks.release(key, owner)


def ignored_try_acquire(locks, key, owner):
    locks.try_acquire(key, owner)  # VIOLATION: result ignored


def held_at_end(locks, key, owner):
    locks.acquire(key, owner)  # VIOLATION: never released
