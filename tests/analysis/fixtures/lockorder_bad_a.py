"""Fixture: module A of a three-module lock-order cycle (scan side).

Alone this file is clean — the cycle only appears when the
interprocedural call-graph pass links it with ``lockorder_bad_b`` and
``lockorder_bad_c``.
"""

import lockorder_bad_b as maintenance


def scan_fragment(locks, rows):
    locks.acquire("table_a", "scanner")
    for row in rows:
        maintenance.refresh_plan(locks, row)
    locks.release("table_a", "scanner")
