"""Attempt-token fixture: unguarded partial collection, all flagged."""


def merge_chunk(state, shard, rows):
    state["rows"][shard] = rows  # VIOLATION: no attempt check


def bump_scanned(state, count):
    state["scanned"] += count  # VIOLATION: no attempt check


def bill_shipment(execution, nbytes):
    execution.bytes_shipped += nbytes  # VIOLATION: no attempt check
