"""Fixture: module-level state reachable from both service paths."""

# Flagged: an empty accumulator shared by the query and chaos entries.
RESULTS = {}

# Not flagged: a populated literal lookup table is read-only by
# convention.
KEYWORDS = {"select": 1, "from": 2}

# Suppressed with a justification (the ISSUE-era alias spelling).
# lint: allow(shared-state) deliberate bounded scratch list; the test
# asserts suppression works from a preceding comment line.
RETIRED = []
