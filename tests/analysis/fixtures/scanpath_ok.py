"""Fixture: scan-path code the compiled-scan rule must accept.

Compiled closures in loops are fine; a one-off interpreter call
outside any loop is fine; the deliberate interpreted ablation
baseline carries an inline suppression.
"""


def scan_rows(rows, compiled, context):
    return [row for row in rows if compiled(row, context)]


def check_one(predicate, row, context):
    # Not in a loop: a single evaluation does not re-walk per row.
    return eval_predicate(predicate, row, context)  # noqa: F821


def scan_rows_interpreted(rows, predicate, context):
    kept = []
    for row in rows:
        # Interpreted ablation baseline, gated behind vectorized=False.
        if eval_predicate(predicate, row, context):  # noqa: F821  # lint: allow(compiled-scan) deliberate baseline
            kept.append(row)
    return kept
