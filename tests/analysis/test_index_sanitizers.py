"""Runtime sanitizer tests for secondary-index invariants.

Every test passes an explicit :class:`SanitizerConfig` (or disables
sanitizers entirely), so the autouse fixture's end-of-test ``verify()``
does not double-fail the deliberate violations.
"""

import pytest

from repro.config import ClusterConfig, IndexSpec, SanitizerConfig
from repro.env import Environment
from repro.errors import SanitizerError, StoreError
from repro.kvstore.indexes import IndexDef
from repro.query.service import QueryService
from repro.state.live import LiveStateTable
from repro.state.snapshots import FullSnapshotTable

from ..conftest import build_average_job, make_squery_backend


def armed_env(**config_overrides):
    config_overrides.setdefault("fail_fast", True)
    config = SanitizerConfig(enabled=True, **config_overrides)
    return Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        sanitizers=config,
    )


def commit_indexed_snapshot(env, ssid=1):
    table = FullSnapshotTable("snapshot_t", parallelism=2,
                              node_of_instance=lambda i: i % 2)
    table.add_index(IndexDef("v", "hash"))
    env.store.register_snapshot_table("snapshot_t", table)
    env.store.begin_snapshot(ssid)
    table.write_instance(ssid, 0, {"a": {"v": 1}})
    table.write_instance(ssid, 1, {"b": {"v": 2}})
    env.store.commit_snapshot(ssid)
    return table


# -- frozen-index mutation ---------------------------------------------------


def test_commit_freezes_the_version_registry():
    env = armed_env()
    table = commit_indexed_snapshot(env)
    assert table.index_ready(1)


def test_frozen_index_mutation_is_recorded_and_rejected():
    env = armed_env(fail_fast=False)
    table = commit_indexed_snapshot(env)
    # A write to the committed version hits the frozen registry: the
    # snapshot-mutation guard records first, then the registry fires
    # the frozen-index hook and refuses with StoreError.
    with pytest.raises(StoreError, match="frozen"):
        table.write_instance(1, 0, {"a": {"v": 99}})
    kinds = {v.kind for v in env.sanitizers.violations}
    assert "snapshot-mutation" in kinds
    assert "frozen-index" in kinds


def test_frozen_index_mutation_raises_store_error_unsanitized():
    # Freeze-at-commit is a store-layer contract, not a sanitizer
    # feature: with detection off the mutation still refuses.
    env = Environment(sanitizers=SanitizerConfig(enabled=False))
    table = commit_indexed_snapshot(env)
    with pytest.raises(StoreError, match="immutable"):
        table.write_instance(1, 0, {"a": {"v": 99}})


def test_uncommitted_version_stays_mutable():
    env = armed_env()
    table = commit_indexed_snapshot(env, ssid=1)
    env.store.begin_snapshot(2)
    table.write_instance(2, 0, {"a": {"v": 7}})  # in-flight: allowed
    env.store.commit_snapshot(2)
    assert table.index_ready(2)


def test_verify_flags_committed_but_unfrozen_indexes():
    env = armed_env(fail_fast=False)
    table = commit_indexed_snapshot(env)
    table._indexes[1].frozen = False  # melt it behind the store's back
    violations = env.sanitizers.verify()
    assert any(
        v.kind == "frozen-index" and "never frozen" in v.message
        for v in violations
    )


# -- index/store coherence ---------------------------------------------------


def indexed_live_table(env):
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    for key in range(50):
        imap.put(key, {"v": key % 5})
    env.store.create_index("data", "v", "hash")
    return imap


def test_verify_catches_corrupted_live_registry():
    env = armed_env(fail_fast=False)
    imap = indexed_live_table(env)
    # Corrupt one partition's hash buckets behind the write path.
    structure = next(
        s for s in imap.indexes._columns["v"] if s.buckets
    )
    structure.buckets.clear()
    violations = env.sanitizers.verify()
    assert any(v.kind == "index-coherence" for v in violations)


def test_verify_catches_corrupted_snapshot_registry():
    env = armed_env(fail_fast=False)
    table = commit_indexed_snapshot(env)
    registry = table._indexes[1]
    structure = next(
        s for s in registry._columns["v"] if s.buckets
    )
    structure.buckets.clear()
    violations = env.sanitizers.verify()
    assert any(v.kind == "index-coherence" for v in violations)


def test_fail_fast_verify_raises_on_incoherence():
    env = armed_env(fail_fast=True)
    imap = indexed_live_table(env)
    imap.indexes._order[
        next(p for p, d in enumerate(imap.indexes._order) if d)
    ].clear()
    with pytest.raises(SanitizerError, match="index"):
        env.sanitizers.verify()


def test_index_coherence_check_can_be_disabled():
    env = armed_env(fail_fast=False, index_coherence=False)
    imap = indexed_live_table(env)
    structure = next(
        s for s in imap.indexes._columns["v"] if s.buckets
    )
    structure.buckets.clear()
    assert env.sanitizers.verify() == []


# -- clean end-to-end run ----------------------------------------------------


def test_indexed_workload_under_all_sanitizers_is_clean():
    env = armed_env(snapshot_fingerprints=True)
    backend = make_squery_backend(
        env, repeatable_read_locks=True,
        indexes=(IndexSpec("average", "total", "hash"),),
    )
    job = build_average_job(env, backend=backend, rate=3000, keys=20,
                            checkpoint_interval_ms=500,
                            limit_per_instance=400)
    job.start()
    service = QueryService(env, repeatable_read=True)
    results = []
    env.sim.schedule(
        700, lambda: results.append(
            service.submit('SELECT * FROM "average" WHERE total > 0')
        )
    )
    env.sim.schedule(
        900, lambda: results.append(
            service.submit('SELECT COUNT(*) AS n FROM "snapshot_average"')
        )
    )
    env.run_until(4_000)
    for execution in results:
        assert execution.done and execution.error is None
    assert env.sanitizers.verify() == []
