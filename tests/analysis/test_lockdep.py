"""Runtime lockdep sanitizer: lock-order inversion detection.

The fake-environment tests drive the wrapped lock table directly so
every ordering scenario is explicit; the integration test checks the
counters surface through :func:`collect_report` on a real workload.

Acquisitions go through the :func:`grab`/:func:`drop` helpers rather
than direct ``locks.acquire`` calls: this file deliberately acquires
the same lock classes in both orders, which the *static* lock-order
rule — owner-blind by design — would correctly flag as a cycle.  The
one-acquire helpers keep the corpus out of the lexical pairing while
the runtime wrappers still see every call.
"""

import types

import pytest

from repro.analysis.sanitizers import SanitizerRuntime
from repro.config import SanitizerConfig
from repro.errors import SanitizerError
from repro.kvstore.locks import LockManager
from repro.observability import collect_report
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend


def grab(locks, key, owner):
    # lint: allow(lock-pairing) deliberately bare acquire: each test
    # scripts its own release/inversion sequence around this helper.
    return locks.acquire(key, owner)


def drop(locks, key, owner):
    locks.release(key, owner)


def lockdep_runtime(fail_fast=False):
    """A runtime with only the lockdep detector armed, on a bare lock
    table (the other detectors need a full environment)."""
    env = types.SimpleNamespace(
        store=types.SimpleNamespace(locks=LockManager())
    )
    config = SanitizerConfig(
        enabled=True, snapshot_immutability=False, lock_leaks=False,
        billing=False, dead_node_scheduling=False, index_coherence=False,
        sketch_coherence=False, lockdep=True, fail_fast=fail_fast,
    )
    runtime = SanitizerRuntime(env, config).install()
    return runtime, env.store.locks


def test_inversion_is_reported_with_both_stacks():
    runtime, locks = lockdep_runtime()
    first, second = object(), object()
    grab(locks, ("a", 1), first)
    grab(locks, ("b", 1), first)
    locks.release_all(first)
    grab(locks, ("b", 2), second)
    grab(locks, ("a", 2), second)  # opposite order: inversion
    assert runtime.lockdep_violations == 1
    message = runtime.violations[0].message
    assert "lock-order inversion" in message
    assert message.count("stack:") == 2
    assert "can deadlock" in message
    assert runtime.lock_order_edges_observed == 2


def test_consistent_order_is_clean():
    runtime, locks = lockdep_runtime()
    for owner in (object(), object(), object()):
        grab(locks, ("a", 1), owner)
        grab(locks, ("b", 1), owner)
        locks.release_all(owner)
    assert runtime.lockdep_violations == 0
    assert runtime.lock_order_edges_observed == 1  # ('a', 'b') once


def test_same_table_keys_share_a_lock_class():
    # Within-table pairs are not tracked (the acquisition sites
    # canonicalise within-table order instead), so a scan holding many
    # keys of one table records no edges at all.
    runtime, locks = lockdep_runtime()
    owner = object()
    for partition_key in range(8):
        grab(locks, ("orders", partition_key), owner)
    assert runtime.lock_order_edges_observed == 0


def test_fail_fast_raises_at_the_inversion_site():
    runtime, locks = lockdep_runtime(fail_fast=True)
    first, second = object(), object()
    grab(locks, ("a", 1), first)
    grab(locks, ("b", 1), first)
    locks.release_all(first)
    grab(locks, ("b", 2), second)
    with pytest.raises(SanitizerError, match="inversion"):
        grab(locks, ("a", 2), second)
    assert runtime.lockdep_violations == 1


def test_queued_waiter_uses_its_request_time_snapshot():
    # B requests 'a' while holding 'b', then releases 'b' before the
    # grant arrives.  The (b, a) edge must still be recorded: the
    # hold-and-wait existed at request time, which is when a deadlock
    # cycle would have closed.
    runtime, locks = lockdep_runtime()
    first, second = object(), object()
    grab(locks, ("a", 1), first)
    grab(locks, ("b", 1), second)
    assert grab(locks, ("a", 1), second) is False  # queued behind A
    drop(locks, ("b", 1), second)  # B now holds nothing
    drop(locks, ("a", 1), first)  # FIFO hand-over to B
    assert locks.holder_of(("a", 1)) is second
    assert runtime.lock_order_edges_observed == 1
    assert runtime.lockdep_violations == 0
    # The recorded edge is live: the opposite order now trips.
    third = object()
    grab(locks, ("a", 3), third)
    grab(locks, ("b", 3), third)
    assert runtime.lockdep_violations == 1


def test_release_still_enforces_ownership_under_lockdep():
    from repro.errors import LockError

    runtime, locks = lockdep_runtime()
    owner = object()
    grab(locks, ("a", 1), owner)
    with pytest.raises(LockError):
        drop(locks, ("a", 1), object())
    # The failed release must not corrupt the held bookkeeping.
    grab(locks, ("b", 1), owner)
    assert runtime.lock_order_edges_observed == 1


def test_report_rolls_up_lockdep_counters(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    job.start()
    env.run_until(1_500)
    service = QueryService(env, repeatable_read=True)
    service.execute('SELECT COUNT(*) AS n FROM "average"')
    report = collect_report(env)
    assert report.lockdep_violations == 0
    assert report.lock_order_edges_observed >= 0
