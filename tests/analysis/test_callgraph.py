"""Unit tests for the interprocedural call-graph pass."""

import ast

from repro.analysis.callgraph import build_program, module_name_for


def program_of(**sources):
    """Build a program from ``{display_path: source}`` keyword pairs."""
    pairs = []
    for path, source in sources.items():
        display = path.replace("__", "/")
        pairs.append((display, ast.parse(source)))
    return build_program(pairs)


def calls_of(program, qualname):
    return [callee for callee, _line in
            program.functions[qualname].calls()]


def test_module_name_follows_package_structure(tmp_path):
    pkg = tmp_path / "pkg"
    sub = pkg / "sub"
    sub.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (sub / "__init__.py").write_text("")
    (sub / "mod.py").write_text("")
    assert module_name_for(sub / "mod.py") == "pkg.sub.mod"
    assert module_name_for(sub / "__init__.py") == "pkg.sub"
    loose = tmp_path / "loose.py"
    loose.write_text("")
    assert module_name_for(loose) == "loose"


def test_resolves_plain_and_nested_calls():
    program = program_of(**{"m.py": """
def helper():
    pass

def outer():
    def inner():
        helper()
    inner()
    helper()
"""})
    assert calls_of(program, "m.outer") == ["m.outer.inner", "m.helper"]
    assert calls_of(program, "m.outer.inner") == ["m.helper"]


def test_resolves_self_dispatch_and_inherited_methods():
    program = program_of(**{"m.py": """
class Base:
    def shared(self):
        pass

class Service(Base):
    def run(self):
        self.shared()
        self.step()

    def step(self):
        pass
"""})
    assert calls_of(program, "m.Service.run") == [
        "m.Base.shared", "m.Service.step"
    ]


def test_resolves_attr_types_from_init_and_annotations():
    program = program_of(**{"m.py": """
class Store:
    def lookup(self):
        pass

class Cache:
    def probe(self):
        pass

class Service:
    cache: Cache

    def __init__(self):
        self.store = Store()

    def run(self):
        self.store.lookup()
        self.cache.probe()
"""})
    assert calls_of(program, "m.Service.run") == [
        "m.Store.lookup", "m.Cache.probe"
    ]


def test_resolves_cross_module_imports_and_aliases():
    program = program_of(**{
        "a.py": """
import b as helpers
from b import direct

def run():
    helpers.work()
    direct()
""",
        "b.py": """
def work():
    pass

def direct():
    pass
""",
    })
    assert calls_of(program, "a.run") == ["b.work", "b.direct"]


def test_resolves_relative_imports_inside_a_package(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("""
from .b import work

def run():
    work()
""")
    (pkg / "b.py").write_text("""
def work():
    pass
""")
    pairs = [
        (str(path), ast.parse(path.read_text()))
        for path in sorted(pkg.glob("*.py"))
    ]
    program = build_program(pairs)
    assert calls_of(program, "pkg.a.run") == ["pkg.b.work"]


def test_constructor_calls_resolve_to_init():
    program = program_of(**{"m.py": """
class Worker:
    def __init__(self):
        pass

def spawn():
    return Worker()
"""})
    assert calls_of(program, "m.spawn") == ["m.Worker.__init__"]


def test_parameter_annotations_type_local_receivers():
    program = program_of(**{"m.py": """
class Pool:
    def __init__(self):
        pass

    def submit(self):
        pass

def run(pool: Pool):
    pool.submit()

def run_assigned():
    pool = Pool()
    pool.submit()
"""})
    assert calls_of(program, "m.run") == ["m.Pool.submit"]
    assert calls_of(program, "m.run_assigned") == [
        "m.Pool.__init__", "m.Pool.submit"
    ]


def test_unresolved_receivers_create_no_edges():
    program = program_of(**{"m.py": """
def run(mystery):
    mystery.do_something()
    unknown_global()
"""})
    assert calls_of(program, "m.run") == []


def test_type_checking_imports_are_skipped():
    program = program_of(**{
        "a.py": """
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from b import work

def run():
    work()
""",
        "b.py": """
def work():
    pass
""",
    })
    # The TYPE_CHECKING import is not a runtime binding: no edge.
    assert calls_of(program, "a.run") == []


def test_mutable_globals_and_import_edges_are_indexed():
    program = program_of(**{
        "a.py": """
import b

CACHE = {}
TABLE = {"x": 1}
NAMES = []
""",
        "b.py": "",
    })
    info = program.modules["a"]
    assert [g[0] for g in info.mutable_globals] == ["CACHE", "NAMES"]
    assert program.import_edges()["a"] == ["b"]
