"""Per-rule tests against the positive/negative fixture files."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.rules import rules_by_name

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, rule: str):
    return lint_paths([FIXTURES / name], rules_by_name([rule]))


def lines_of(violations):
    return [v.line for v in violations]


# -- determinism ----------------------------------------------------------


def test_determinism_flags_every_bad_site():
    violations = lint_fixture("det_bad.py", "determinism")
    messages = " ".join(v.message for v in violations)
    assert len(violations) == 11
    assert "time.time()" in messages
    assert "time.perf_counter()" in messages
    assert "datetime.now()" in messages
    assert "random.Random() without a seed" in messages
    assert "random.random()" in messages
    assert "random.choice()" in messages
    assert "uuid.uuid4" in messages
    assert "os.urandom" in messages
    assert "iteration over a set" in messages
    assert "list(set(...))" in messages
    assert "popitem" in messages


def test_determinism_clean_fixture_passes():
    assert lint_fixture("det_clean.py", "determinism") == []


# -- lock pairing ---------------------------------------------------------


def test_lock_pairing_flags_every_leak():
    violations = lint_fixture("lock_bad.py", "lock-pairing")
    messages = [v.message for v in violations]
    assert len(violations) == 4
    assert any("return while a lock" in m for m in messages)
    assert any("raise while a lock" in m for m in messages)
    assert any("result ignored" in m for m in messages)
    assert any("not released on every path" in m for m in messages)


def test_lock_pairing_clean_fixture_passes():
    assert lint_fixture("lock_clean.py", "lock-pairing") == []


# -- billing --------------------------------------------------------------


def test_billing_flags_unbilled_sends_and_orphaned_counters():
    violations = lint_fixture("billing_bad.py", "billing")
    messages = [v.message for v in violations]
    assert sum("without nbytes=" in m for m in messages) == 2
    assert sum("never populated in collect_report" in m
               for m in messages) == 1


def test_billing_clean_fixture_passes():
    assert lint_fixture("billing_clean.py", "billing") == []


# -- attempt token --------------------------------------------------------


def test_attempt_token_flags_unguarded_collection():
    violations = lint_fixture("attempt_bad.py", "attempt-token")
    assert len(violations) == 3
    assert all("attempt token" in v.message for v in violations)


def test_attempt_token_clean_fixture_passes():
    assert lint_fixture("attempt_clean.py", "attempt-token") == []


# -- compiled scan --------------------------------------------------------


def test_compiled_scan_flags_per_row_eval_in_loops():
    violations = lint_fixture("scanpath_bad.py", "compiled-scan")
    assert len(violations) == 3
    assert all("re-walks the expression AST" in v.message
               for v in violations)


def test_compiled_scan_clean_fixture_passes():
    # scanpath_ok.py includes one deliberate interpreted-baseline call
    # suppressed with an inline ``# lint: allow(compiled-scan)``.
    assert lint_fixture("scanpath_ok.py", "compiled-scan") == []


def test_compiled_scan_ignores_off_path_files():
    # Same per-row eval code, but the file is not on the scan path.
    assert lint_fixture("offpath_eval.py", "compiled-scan") == []


# -- rule registry --------------------------------------------------------


def test_unknown_rule_name_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        rules_by_name(["no-such-rule"])


def test_all_rules_selected_by_default():
    assert len(rules_by_name(None)) == 8
