"""Engine-level tests: suppressions, baseline, CLI, and repo cleanliness."""

from pathlib import Path

import pytest

from repro.analysis import (
    Violation,
    filter_baselined,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.__main__ import DEFAULT_SCAN_PATHS, main, repo_root
from repro.analysis.rules import rules_by_name

FIXTURES = Path(__file__).parent / "fixtures"


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


# -- inline suppressions --------------------------------------------------


def test_inline_allow_suppresses_one_line(tmp_path):
    path = write_module(tmp_path, (
        "import time\n"
        "def f():\n"
        "    a = time.time()  # lint: allow(determinism) boot stamp\n"
        "    b = time.time()\n"
        "    return a, b\n"
    ))
    violations = lint_paths([path], rules_by_name(["determinism"]))
    assert [v.line for v in violations] == [4]


def test_skip_file_pragma_suppresses_whole_file(tmp_path):
    path = write_module(tmp_path, (
        "# lint: skip-file — generated\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    ))
    assert lint_paths([path]) == []


def test_syntax_error_becomes_violation(tmp_path):
    path = write_module(tmp_path, "def broken(:\n")
    violations = lint_paths([path])
    assert len(violations) == 1
    assert violations[0].rule == "syntax"


def test_fixture_directories_are_skipped_in_tree_walks(tmp_path):
    nested = tmp_path / "fixtures"
    nested.mkdir()
    write_module(nested, "import time\nx = time.time()\n")
    assert lint_paths([tmp_path]) == []


# -- baseline -------------------------------------------------------------


def test_baseline_roundtrip_suppresses_known_violations(tmp_path):
    violations = [
        Violation("determinism", "a.py", 3, "wall-clock read"),
        Violation("billing", "b.py", 7, "unbilled send"),
    ]
    baseline_path = tmp_path / "baseline.txt"
    write_baseline(baseline_path, violations)
    fresh, suppressed = filter_baselined(
        violations, load_baseline(baseline_path)
    )
    assert fresh == []
    assert suppressed == 2


def test_baseline_is_line_number_independent(tmp_path):
    baseline_path = tmp_path / "baseline.txt"
    write_baseline(baseline_path,
                   [Violation("billing", "a.py", 10, "unbilled send")])
    moved = Violation("billing", "a.py", 99, "unbilled send")
    fresh, suppressed = filter_baselined(
        [moved], load_baseline(baseline_path)
    )
    assert fresh == []
    assert suppressed == 1


def test_baseline_is_a_multiset_not_a_set(tmp_path):
    baseline_path = tmp_path / "baseline.txt"
    one = Violation("billing", "a.py", 1, "unbilled send")
    write_baseline(baseline_path, [one])
    # Two identical violations, one baseline entry: one stays fresh.
    fresh, suppressed = filter_baselined(
        [one, Violation("billing", "a.py", 2, "unbilled send")],
        load_baseline(baseline_path),
    )
    assert suppressed == 1
    assert len(fresh) == 1


def test_missing_baseline_means_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.txt") == {}


def test_baseline_counts_survive_a_roundtrip(tmp_path):
    baseline_path = tmp_path / "baseline.txt"
    twice = [
        Violation("billing", "a.py", 1, "unbilled send"),
        Violation("billing", "a.py", 9, "unbilled send"),
    ]
    write_baseline(baseline_path, twice)
    # The duplicate is stored as one count-annotated entry, not two
    # identical lines.
    lines = [line for line in
             baseline_path.read_text().splitlines()
             if line and not line.startswith("#")]
    assert len(lines) == 1
    assert lines[0].endswith("\tx2")
    loaded = load_baseline(baseline_path)
    assert loaded[("billing", "a.py", "unbilled send")] == 2
    fresh, suppressed = filter_baselined(twice, loaded)
    assert fresh == [] and suppressed == 2
    # A third occurrence is fresh: counts cap the suppression.
    third = Violation("billing", "a.py", 40, "unbilled send")
    fresh, suppressed = filter_baselined([*twice, third], loaded)
    assert suppressed == 2
    assert fresh == [third]


def test_baseline_message_with_tab_like_suffix_still_loads(tmp_path):
    # A message whose last tab-separated column is not an xN count
    # must be kept as part of the message, not dropped.
    baseline_path = tmp_path / "baseline.txt"
    message = "field\tx-coordinate"
    write_baseline(baseline_path,
                   [Violation("billing", "a.py", 1, message)])
    loaded = load_baseline(baseline_path)
    assert loaded[("billing", "a.py", message)] == 1


# -- CLI ------------------------------------------------------------------


def test_cli_exit_zero_on_clean_path(tmp_path, capsys):
    write_module(tmp_path, "def f():\n    return 1\n")
    code = main(["lint", "--path", str(tmp_path), "--no-baseline"])
    assert code == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_one_on_violations(capsys):
    code = main(["lint", "--path", str(FIXTURES / "det_bad.py"),
                 "--no-baseline"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out


def test_cli_rule_filter(capsys):
    code = main(["lint", "--path", str(FIXTURES / "det_bad.py"),
                 "--rule", "billing", "--no-baseline"])
    assert code == 0


def test_cli_write_then_pass_with_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    bad = str(FIXTURES / "lock_bad.py")
    assert main(["lint", "--path", bad, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert main(["lint", "--path", bad,
                 "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_unknown_rule_rejected():
    with pytest.raises(SystemExit):
        main(["lint", "--rule", "no-such-rule"])


def test_cli_rules_csv_filter(capsys):
    code = main(["lint", "--path", str(FIXTURES / "det_bad.py"),
                 "--rules", "billing,lock-pairing", "--no-baseline"])
    assert code == 0


def test_cli_rules_csv_unknown_name_exits_two(capsys):
    code = main(["lint", "--path", str(FIXTURES / "det_bad.py"),
                 "--rules", "no-such-rule", "--no-baseline"])
    assert code == 2


def test_cli_json_output(capsys):
    import json as json_module

    code = main(["lint", "--path", str(FIXTURES / "det_bad.py"),
                 "--rule", "determinism", "--no-baseline", "--json",
                 "--no-cache"])
    assert code == 1
    payload = json_module.loads(capsys.readouterr().out)
    assert payload["rules"] == ["determinism"]
    assert payload["baselined"] == 0
    assert all(v["rule"] == "determinism"
               for v in payload["violations"])
    assert {"rule", "path", "line", "message"} <= set(
        payload["violations"][0]
    )
    assert "determinism" in payload["timings_ms"]


def test_cli_text_output_reports_rule_wall_time(tmp_path, capsys):
    write_module(tmp_path, "def f():\n    return 1\n")
    code = main(["lint", "--path", str(tmp_path), "--no-baseline",
                 "--no-cache"])
    assert code == 0
    assert "rule wall time:" in capsys.readouterr().out


# -- preceding-comment suppressions ---------------------------------------


def test_preceding_comment_allow_suppresses_next_statement(tmp_path):
    path = write_module(tmp_path, (
        "import time\n"
        "def f():\n"
        "    # lint: allow(determinism) boot stamp, justified at\n"
        "    # length across two comment lines.\n"
        "    a = time.time()\n"
        "    b = time.time()\n"
        "    return a, b\n"
    ))
    violations = lint_paths([path], rules_by_name(["determinism"]))
    assert [v.line for v in violations] == [6]


def test_preceding_comment_allow_does_not_leak_past_code(tmp_path):
    path = write_module(tmp_path, (
        "import time\n"
        "def f():\n"
        "    # lint: allow(determinism) only the next line\n"
        "    a = time.time()\n"
        "    unrelated = 1\n"
        "    b = time.time()\n"
        "    return a, unrelated, b\n"
    ))
    violations = lint_paths([path], rules_by_name(["determinism"]))
    assert [v.line for v in violations] == [6]


# -- the repo itself ------------------------------------------------------


def test_repository_is_lint_clean():
    """The committed tree passes every rule with no baseline at all."""
    root = repo_root(Path(__file__))
    paths = [root / p for p in DEFAULT_SCAN_PATHS if (root / p).exists()]
    violations = lint_paths(paths)
    assert violations == [], "\n".join(v.format() for v in violations)
