"""Unit tests for lock summaries, the lock-order graph, and the cache."""

import ast

from repro.analysis.lockgraph import (
    build_lock_order_edges,
    build_model,
    find_cycles,
    reachable_modules,
    transitive_acquires,
    transitive_blocking,
)


def model_of(**sources):
    pairs = [(path.replace("__", "/"), ast.parse(source))
             for path, source in sources.items()]
    return build_model(pairs)


def test_acquire_opens_region_and_release_closes_all():
    model = model_of(**{"m.py": """
def run(locks, pool):
    locks.acquire("a", "o")
    pool.submit("job", 1.0, None)
    locks.release("a", "o")
    pool.submit("job", 1.0, None)
"""})
    blocking = model.functions["m.run"]["blocking"]
    assert len(blocking) == 2
    held_first, held_second = blocking[0][2], blocking[1][2]
    assert [label for label, _line in held_first] == ["a"]
    assert held_second == []


def test_granted_handover_records_acquire_but_opens_no_region():
    model = model_of(**{"m.py": """
def run(locks, pool):
    locks.acquire("a", "o", granted=print)
    pool.submit("job", 1.0, None)
"""})
    fn = model.functions["m.run"]
    assert fn["acquires"][0][0] == "a"
    assert fn["acquires"][0][3] is True  # handover
    assert fn["blocking"][0][2] == []  # nothing lexically held


def test_lock_primitive_functions_skip_self_extraction():
    model = model_of(**{"m.py": """
class LockManager:
    def acquire(self, key, owner):
        self._holders[key] = owner

    def try_acquire(self, key, owner):
        return True
"""})
    assert model.functions["m.LockManager.acquire"]["acquires"] == []
    assert model.functions["m.LockManager.try_acquire"]["acquires"] == []


def test_lock_labels_classify_tuple_keys_by_table():
    model = model_of(**{"m.py": """
def run(locks, key):
    locks.try_acquire(("orders", key), "o")
    locks.try_acquire("shipments", "o")
    locks.try_acquire(key, "o")
"""})
    labels = [a[0] for a in model.functions["m.run"]["acquires"]]
    assert labels == ["orders", "shipments", "key"]


def test_blocking_kinds_cover_the_jet_rule():
    model = model_of(**{"m.py": """
def run(network, pool, channel, sim):
    pool.submit("j", 1.0, None)
    network.send(0, 1, None, nbytes=8)
    channel.recv()
    channel.wait_for(print)
    sim.sleep(4.0)
    sim.schedule(4.0, print)
"""})
    kinds = [b[0] for b in model.functions["m.run"]["blocking"]]
    assert kinds == [
        "store-server job submission", "network send", "network recv",
        "channel wait", "simtime sleep",
    ]


def test_unbounded_loop_with_io_is_blocking():
    model = model_of(**{"m.py": """
def run(channel):
    while True:
        channel.recv()

def bounded(channel):
    for _ in range(4):
        channel.recv()

def quiet():
    while True:
        pass
"""})
    kinds = [b[0] for b in model.functions["m.run"]["blocking"]]
    assert "unbounded loop with IO" in kinds
    bounded = [b[0] for b in model.functions["m.bounded"]["blocking"]]
    assert "unbounded loop with IO" not in bounded
    assert model.functions["m.quiet"]["blocking"] == []


def test_transitive_acquires_cross_function_with_witness_chain():
    model = model_of(**{"m.py": """
def outer(locks):
    inner(locks)

def inner(locks):
    locks.acquire("b", "o")
"""})
    reached = transitive_acquires(model, "m.outer")
    assert set(reached) == {"b"}
    chain = reached["b"]
    assert [entry[2] for entry in chain] == [
        "outer() calls inner()", "lock 'b' acquired in inner()",
    ]


def test_transitive_blocking_handles_recursion():
    model = model_of(**{"m.py": """
def ping(pool):
    pool.submit("j", 1.0, None)
    pong(pool)

def pong(pool):
    ping(pool)
"""})
    assert set(transitive_blocking(model, "m.pong")) == {
        "store-server job submission"
    }


def test_lock_order_edges_and_cycles():
    model = model_of(**{"m.py": """
def forward(locks):
    locks.acquire("a", "o")
    locks.acquire("b", "o")
    locks.release_all("o")

def backward(locks):
    locks.acquire("b", "o")
    locks.acquire("a", "o")
    locks.release_all("o")
"""})
    edges = build_lock_order_edges(model)
    assert ("a", "b") in edges and ("b", "a") in edges
    assert find_cycles(edges) == [["a", "b"]]


def test_consistent_order_has_no_cycles():
    model = model_of(**{"m.py": """
def one(locks):
    locks.acquire("a", "o")
    locks.acquire("b", "o")
    locks.release_all("o")

def two(locks):
    locks.acquire("b", "o")
    locks.acquire("c", "o")
    locks.release_all("o")
"""})
    assert find_cycles(build_lock_order_edges(model)) == []


def test_reachable_modules_tracks_parents():
    model = model_of(**{
        "a.py": "import b\n",
        "b.py": "import c\n",
        "c.py": "",
    })
    reached, parent = reachable_modules(model, ["a"])
    assert reached == {"a", "b", "c"}
    assert parent["c"] == "b" and parent["b"] == "a"


def test_model_cache_roundtrip_and_invalidation(tmp_path):
    source = """
def run(locks):
    locks.acquire("a", "o")
    locks.release("a", "o")
"""
    pairs = [("m.py", ast.parse(source))]
    raw = {"m.py": source}
    cache_dir = tmp_path / "cache"
    first = build_model(pairs, cache_dir=cache_dir, raw_sources=raw)
    cached_files = list(cache_dir.glob("concurrency-*.json"))
    assert len(cached_files) == 1
    second = build_model(pairs, cache_dir=cache_dir, raw_sources=raw)
    assert second.to_json() == first.to_json()
    # A source change must produce a different cache entry (and prune
    # the stale one).
    changed = source.replace('"a"', '"b"')
    third = build_model(
        [("m.py", ast.parse(changed))], cache_dir=cache_dir,
        raw_sources={"m.py": changed},
    )
    assert third.to_json() != first.to_json()
    remaining = list(cache_dir.glob("concurrency-*.json"))
    assert len(remaining) == 1
    assert remaining[0] not in cached_files


def test_corrupt_cache_entry_is_rebuilt(tmp_path):
    source = "def run():\n    pass\n"
    pairs = [("m.py", ast.parse(source))]
    raw = {"m.py": source}
    cache_dir = tmp_path / "cache"
    build_model(pairs, cache_dir=cache_dir, raw_sources=raw)
    entry = next(cache_dir.glob("concurrency-*.json"))
    entry.write_text("{not json")
    model = build_model(pairs, cache_dir=cache_dir, raw_sources=raw)
    assert "m.run" in model.functions
