"""Fixture tests for the three interprocedural concurrency rules.

The key property throughout: each rule has at least one fixture that
is clean when its files are linted *individually* (the per-file view)
and only fails when the whole-program call-graph pass links the
modules together.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.rules import rules_by_name

FIXTURES = Path(__file__).parent / "fixtures"

LOCKORDER_TRIO = [
    FIXTURES / "lockorder_bad_a.py",
    FIXTURES / "lockorder_bad_b.py",
    FIXTURES / "lockorder_bad_c.py",
]
SHAREDSTATE_TRIO = [
    FIXTURES / "sharedstate_query_entry.py",
    FIXTURES / "sharedstate_chaos_entry.py",
    FIXTURES / "sharedstate_cache.py",
]


def lint(paths, rule):
    return lint_paths(paths, rules_by_name([rule]))


# -- lock-order -----------------------------------------------------------


def test_lock_order_cycle_spans_three_modules():
    violations = lint(LOCKORDER_TRIO, "lock-order")
    assert len(violations) == 1
    violation = violations[0]
    assert violation.rule == "lock-order"
    assert "'table_a' -> 'table_b' -> 'table_a'" in violation.message
    assert "potential deadlock" in violation.message
    # The witness path is rendered file:line by file:line through all
    # three modules.
    for name in ("lockorder_bad_a.py", "lockorder_bad_b.py",
                 "lockorder_bad_c.py"):
        assert name in violation.message


def test_lock_order_needs_the_interprocedural_pass():
    # Every file of the cycle is clean in isolation: only the linked
    # whole-program view exposes the deadlock.
    for path in LOCKORDER_TRIO:
        assert lint([path], "lock-order") == []


def test_lock_order_clean_fixture_passes():
    assert lint([FIXTURES / "lockorder_clean.py"], "lock-order") == []


# -- blocking-under-lock --------------------------------------------------


def test_blocking_under_lock_flags_direct_sites():
    violations = lint([FIXTURES / "blocking_bad.py"],
                      "blocking-under-lock")
    kinds = " | ".join(v.message for v in violations)
    assert "store-server job submission" in kinds
    assert "channel wait" in kinds
    assert "simtime sleep" in kinds
    assert "unbounded loop with IO" in kinds
    assert all("lock 'orders'" in v.message for v in violations)


def test_blocking_under_lock_spans_modules():
    pair = [FIXTURES / "blocking_bad_outer.py",
            FIXTURES / "blocking_bad_inner.py"]
    violations = lint(pair, "blocking-under-lock")
    assert len(violations) == 1
    message = violations[0].message
    assert "network send" in message
    assert "blocking_bad_inner.py" in message
    assert violations[0].path.endswith("blocking_bad_outer.py")


def test_blocking_under_lock_needs_the_interprocedural_pass():
    assert lint([FIXTURES / "blocking_bad_outer.py"],
                "blocking-under-lock") == []
    assert lint([FIXTURES / "blocking_bad_inner.py"],
                "blocking-under-lock") == []


def test_blocking_clean_fixture_passes():
    assert lint([FIXTURES / "blocking_clean.py"],
                "blocking-under-lock") == []


# -- shared-state-audit ---------------------------------------------------


def test_shared_state_flags_dual_reachable_mutable():
    violations = lint(SHAREDSTATE_TRIO, "shared-state-audit")
    assert len(violations) == 1
    violation = violations[0]
    assert "RESULTS" in violation.message
    assert "sharedstate_query_entry" in violation.message
    assert "sharedstate_chaos_entry" in violation.message
    # KEYWORDS (populated literal) is not flagged; RETIRED is
    # suppressed by the preceding-comment allow with the alias
    # spelling.
    assert "KEYWORDS" not in violation.message
    assert all("RETIRED" not in v.message for v in violations)


def test_shared_state_needs_both_paths():
    # Cache + only one side: no dual reachability, no finding.
    assert lint([FIXTURES / "sharedstate_query_entry.py",
                 FIXTURES / "sharedstate_cache.py"],
                "shared-state-audit") == []
    assert lint([FIXTURES / "sharedstate_chaos_entry.py",
                 FIXTURES / "sharedstate_cache.py"],
                "shared-state-audit") == []


def test_repository_is_clean_under_the_concurrency_rules():
    root = Path(__file__).resolve().parents[2]
    paths = [root / p for p in
             ("src/repro", "tests", "benchmarks", "examples")
             if (root / p).exists()]
    for rule in ("lock-order", "blocking-under-lock",
                 "shared-state-audit"):
        assert lint(paths, rule) == []
