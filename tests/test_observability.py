"""Tests for the utilisation/observability report."""

from repro.observability import ClusterReport, NodeReport, collect_report, \
    format_report
from repro.query import QueryService

from .conftest import build_average_job, make_squery_backend


def _node(node_id, processing=0.0, query=0.0, store=0.0):
    return NodeReport(
        node_id=node_id, alive=True,
        processing_utilization=processing, processing_jobs=0,
        query_utilization=query, query_jobs=0,
        store_utilization=store, store_jobs=0,
    )


def test_report_covers_all_nodes(env):
    job = build_average_job(env, rate=2000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    assert len(report.nodes) == 3
    assert report.horizon_ms == 2_000
    assert all(node.alive for node in report.nodes)


def test_processing_utilization_reflects_load(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    for node in report.nodes:
        assert 0.0 < node.processing_utilization < 1.0
        assert node.processing_jobs > 0
        assert node.store_jobs > 0  # snapshot writes hit the store


def test_network_and_lock_counters(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000)
    job.start()
    env.run_until(1_500)
    report = collect_report(env)
    assert report.network_messages > 0
    assert report.network_bytes > 0
    assert report.lock_acquisitions > 0  # live mirroring locks keys


def test_dead_node_flagged(env):
    job = build_average_job(env, rate=1000, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_600)
    env.cluster.kill_node(1)
    report = collect_report(env)
    status = {node.node_id: node.alive for node in report.nodes}
    assert status == {0: True, 1: False, 2: True}


def test_hottest_pool_identifies_processing(env):
    job = build_average_job(env, rate=5000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    node_id, kind, utilization = report.hottest_pool()
    assert kind == "processing"
    assert utilization > 0


def test_hottest_pool_considers_store_servers():
    # A store-bound node must win over busier-looking-but-cooler pools;
    # hottest_pool used to ignore store_utilization entirely.
    report = ClusterReport(horizon_ms=1_000, nodes=[
        _node(0, processing=0.30, query=0.10, store=0.20),
        _node(1, processing=0.25, query=0.15, store=0.85),
        _node(2, processing=0.40, query=0.05, store=0.10),
    ])
    assert report.hottest_pool() == (1, "store", 0.85)


def test_hottest_pool_store_loses_when_cooler():
    report = ClusterReport(horizon_ms=1_000, nodes=[
        _node(0, processing=0.60, query=0.10, store=0.20),
    ])
    assert report.hottest_pool() == (0, "processing", 0.60)


def test_format_report_renders(env):
    job = build_average_job(env, rate=1000)
    job.start()
    env.run_until(1_000)
    text = format_report(collect_report(env))
    assert "cluster utilisation" in text
    assert "network:" in text
    assert "proc util" in text
    assert "continuous:" not in text  # subsystem unused: no noise
    assert text.count("\n") >= 5


def test_report_counts_continuous_queries(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    subscription = service.subscribe(
        'SELECT COUNT(*) AS n, SUM(count) AS events FROM "average"'
    )
    env.run_for(1_000)
    report = collect_report(env)
    assert report.active_subscriptions == 1
    assert report.changes_captured > 0
    assert report.push_batches_sent > 0
    assert report.deltas_pushed > 0
    text = format_report(report)
    assert "continuous: 1 subscriptions" in text
    env.continuous.unsubscribe(subscription)
    assert collect_report(env).active_subscriptions == 0


def test_report_counts_query_fault_tolerance():
    from repro import Environment
    from repro.config import ClusterConfig, CostModel, QueryRetryPolicy

    slow = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        costs=CostModel(scan_entry_ms=0.05,
                        vectorized_scan_entry_ms=0.05),
    )
    backend = make_squery_backend(slow)
    job = build_average_job(slow, backend=backend, rate=4000, keys=250)
    job.start()
    slow.run_until(1_500)
    service = QueryService(
        slow, retry_policy=QueryRetryPolicy(query_timeout_ms=500.0)
    )
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    slow.run_for(2.0)  # scans in flight
    victim = next(n for n in slow.cluster.surviving_node_ids()
                  if n != execution.entry_node)
    slow.cluster.fail_node(victim)
    slow.run_for(2_000)
    report = collect_report(slow)
    assert report.query_retries == 1
    assert report.locks_held == 0
    text = format_report(report)
    assert "query fault tolerance: 1 retries" in text
