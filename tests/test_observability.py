"""Tests for the utilisation/observability report."""

from repro.observability import collect_report, format_report

from .conftest import build_average_job, make_squery_backend


def test_report_covers_all_nodes(env):
    job = build_average_job(env, rate=2000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    assert len(report.nodes) == 3
    assert report.horizon_ms == 2_000
    assert all(node.alive for node in report.nodes)


def test_processing_utilization_reflects_load(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    for node in report.nodes:
        assert 0.0 < node.processing_utilization < 1.0
        assert node.processing_jobs > 0
        assert node.store_jobs > 0  # snapshot writes hit the store


def test_network_and_lock_counters(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000)
    job.start()
    env.run_until(1_500)
    report = collect_report(env)
    assert report.network_messages > 0
    assert report.network_bytes > 0
    assert report.lock_acquisitions > 0  # live mirroring locks keys


def test_dead_node_flagged(env):
    job = build_average_job(env, rate=1000, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_600)
    env.cluster.kill_node(1)
    report = collect_report(env)
    status = {node.node_id: node.alive for node in report.nodes}
    assert status == {0: True, 1: False, 2: True}


def test_hottest_pool_identifies_processing(env):
    job = build_average_job(env, rate=5000)
    job.start()
    env.run_until(2_000)
    report = collect_report(env)
    node_id, kind, utilization = report.hottest_pool()
    assert kind == "processing"
    assert utilization > 0


def test_format_report_renders(env):
    job = build_average_job(env, rate=1000)
    job.start()
    env.run_until(1_000)
    text = format_report(collect_report(env))
    assert "cluster utilisation" in text
    assert "network:" in text
    assert "proc util" in text
    assert text.count("\n") >= 5
