"""Tests for configuration validation and the environment wrapper."""

import dataclasses

import pytest

from repro import (
    ClusterConfig,
    CostModel,
    Environment,
    JobConfig,
    NetworkConfig,
    SQueryConfig,
    VANILLA,
)
from repro.errors import ConfigurationError


def test_default_cluster_matches_table_three():
    config = ClusterConfig()
    assert config.processing_workers_per_node == 12
    assert config.query_workers_per_node == 4
    assert config.total_processing_workers == 36
    assert config.total_query_workers == 12
    config.validate()


def test_cluster_validation_errors():
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(processing_workers_per_node=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(query_workers_per_node=-1).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(partition_count=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=2, backup_count=2).validate()


def test_network_validation_errors():
    with pytest.raises(ConfigurationError):
        NetworkConfig(local_delay_ms=-1).validate()
    with pytest.raises(ConfigurationError):
        NetworkConfig(bytes_per_ms=0).validate()
    with pytest.raises(ConfigurationError):
        NetworkConfig(jitter_ms=-0.1).validate()


def test_cost_model_defaults_valid():
    CostModel().validate()


def test_cost_model_rejects_negative_constants():
    with pytest.raises(ConfigurationError):
        dataclasses.replace(CostModel(), record_service_ms=-1).validate()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(CostModel(), scan_chunk_entries=0).validate()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(
            CostModel(), direct_batch_exponent=1.5
        ).validate()


def test_job_config_validation():
    JobConfig().validate()
    with pytest.raises(ConfigurationError):
        JobConfig(checkpoint_interval_ms=0).validate()
    with pytest.raises(ConfigurationError):
        JobConfig(parallelism=0).validate()


def test_squery_config_validation():
    SQueryConfig().validate()
    with pytest.raises(ConfigurationError):
        SQueryConfig(retained_snapshots=0).validate()
    with pytest.raises(ConfigurationError):
        SQueryConfig(prune_chain_length=0).validate()
    with pytest.raises(ConfigurationError):
        SQueryConfig(live_state=False,
                     active_replication=True).validate()


def test_vanilla_disables_everything():
    assert not VANILLA.live_state
    assert not VANILLA.snapshot_state
    VANILLA.validate()


def test_configs_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        ClusterConfig().nodes = 5
    with pytest.raises(dataclasses.FrozenInstanceError):
        CostModel().record_service_ms = 1.0


def test_environment_bundles_components():
    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=1))
    assert env.now == 0.0
    assert len(env.cluster.nodes) == 2
    assert env.costs is env.cluster.costs
    env.run_for(100.0)
    assert env.now == 100.0
    env.run_until(250.0)
    assert env.now == 250.0


def test_environment_custom_costs():
    costs = dataclasses.replace(CostModel(), record_service_ms=0.5)
    env = Environment(ClusterConfig(nodes=1, backup_count=0), costs=costs)
    assert env.costs.record_service_ms == 0.5


def test_environment_seed_determinism():
    values = []
    for _ in range(2):
        env = Environment(seed=123)
        values.append(env.sim.rng.stream("x").random())
    assert values[0] == values[1]
