"""Property-based tests for partitioning and placement invariants."""

from hypothesis import given, settings, strategies as st

from repro.cluster import Partitioner
from repro.cluster.partition import stable_hash
from repro.kvstore import IMap, InstancePlacement

settings.register_profile("repro-part", max_examples=80, deadline=None)
settings.load_profile("repro-part")

keys = st.one_of(
    st.integers(min_value=0, max_value=10**9),
    st.text(max_size=20),
    st.tuples(st.integers(), st.text(max_size=5)),
)


@given(keys)
def test_stable_hash_deterministic_and_non_negative(key):
    assert stable_hash(key) == stable_hash(key)
    assert stable_hash(key) >= 0


@given(keys, st.integers(min_value=1, max_value=271),
       st.integers(min_value=1, max_value=9))
def test_partition_and_owner_in_range(key, partitions, nodes):
    part = Partitioner(partitions, nodes, backup_count=0)
    partition = part.partition_of(key)
    assert 0 <= partition < partitions
    assert 0 <= part.owner_of(key) < nodes


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=8, max_value=64))
def test_every_partition_has_distinct_backup(nodes, partitions):
    part = Partitioner(partitions, nodes, backup_count=1)
    for partition in range(partitions):
        owner = part.owner_of_partition(partition)
        backups = part.backups_of_partition(partition)
        assert owner not in backups


@given(st.integers(min_value=2, max_value=6))
def test_reassignment_leaves_no_partition_on_dead_node(nodes):
    part = Partitioner(32, nodes, backup_count=1)
    dead = nodes - 1
    part.reassign_node(dead)
    for partition in range(32):
        assert part.owner_of_partition(partition) != dead


@given(st.lists(st.tuples(keys, st.integers()), max_size=50),
       st.integers(min_value=1, max_value=7))
def test_imap_matches_plain_dict(entries, parallelism):
    placement = InstancePlacement(parallelism, lambda i: i % 3, 3)
    imap = IMap("m", placement)
    reference = {}
    for key, value in entries:
        imap.put(key, value)
        reference[key] = value
    assert dict(imap.entries()) == reference
    assert len(imap) == len(reference)
    for key, value in reference.items():
        assert imap.get(key) == value


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=60),
       st.integers(min_value=1, max_value=7))
def test_imap_node_views_partition_the_data(values, parallelism):
    placement = InstancePlacement(parallelism, lambda i: i % 3, 3)
    imap = IMap("m", placement)
    for value in values:
        imap.put(value, value)
    union = {}
    total = 0
    for node in range(3):
        view = dict(imap.entries_on_node(node))
        assert not set(view) & set(union)
        union.update(view)
        total += len(view)
    assert union == dict(imap.entries())
    assert total == len(imap)
