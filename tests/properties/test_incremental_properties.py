"""Property-based tests: incremental reconstruction always matches a
directly-maintained reference state, under arbitrary interleavings of
puts, deletes, and snapshots."""

from hypothesis import given, settings, strategies as st

from repro.state import FullSnapshotTable, IncrementalSnapshotTable

settings.register_profile("repro-incr", max_examples=80, deadline=None)
settings.load_profile("repro-incr")

#: An operation: (key, value) put, or (key, None) delete.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
    ),
    min_size=0,
    max_size=60,
)

#: Snapshot boundaries: after how many operations each checkpoint fires.
boundaries = st.lists(st.integers(min_value=0, max_value=10),
                      min_size=1, max_size=8)


def apply_trace(table, trace, checkpoints):
    """Feed operations into a dirty-tracked state; snapshot at the
    boundaries.  Returns {ssid: reference state dict}."""
    reference = {}
    state = {}
    dirty = {}
    deleted = set()
    ssid = 0
    position = 0
    for chunk in checkpoints:
        for key, value in trace[position:position + chunk]:
            if value is None:
                if key in state:
                    del state[key]
                    dirty.pop(key, None)
                    deleted.add(key)
            else:
                state[key] = value
                dirty[key] = value
                deleted.discard(key)
        position += chunk
        ssid += 1
        table.write_instance(ssid, 0, dict(dirty), set(deleted))
        dirty.clear()
        deleted.clear()
        reference[ssid] = dict(state)
    return reference


@given(operations, boundaries)
def test_reconstruction_matches_reference(trace, checkpoints):
    table = IncrementalSnapshotTable("t", 1, lambda i: 0,
                                     prune_chain_length=100)
    reference = apply_trace(table, trace, checkpoints)
    for ssid, expected in reference.items():
        state, scanned = table.materialize_instance(ssid, 0)
        assert state == expected
        assert scanned >= len(expected)


@given(operations, boundaries,
       st.integers(min_value=1, max_value=4))
def test_pruning_never_changes_answers(trace, checkpoints, prune_at):
    pruned = IncrementalSnapshotTable("p", 1, lambda i: 0,
                                      prune_chain_length=prune_at)
    unpruned = IncrementalSnapshotTable("u", 1, lambda i: 0,
                                        prune_chain_length=1000)
    apply_trace(pruned, trace, checkpoints)
    reference = apply_trace(unpruned, trace, checkpoints)
    last = max(reference)
    pruned.maybe_prune(last)
    assert pruned.materialize_instance(last, 0)[0] == reference[last]


@given(operations, boundaries)
def test_incremental_agrees_with_full_table(trace, checkpoints):
    incremental = IncrementalSnapshotTable("i", 1, lambda i: 0,
                                           prune_chain_length=100)
    full = FullSnapshotTable("f", 1, lambda i: 0)
    reference = apply_trace(incremental, trace, checkpoints)
    for ssid, state in reference.items():
        full.write_instance(ssid, 0, state)
    for ssid in reference:
        incr_rows = sorted(
            (row["key"], row.get("value")) for row in
            incremental.rows_for_snapshot(ssid)
        )
        full_rows = sorted(
            (row["key"], row.get("value")) for row in
            full.rows_for_snapshot(ssid)
        )
        assert incr_rows == full_rows


@given(operations, boundaries)
def test_scan_cost_bounded_by_total_entries(trace, checkpoints):
    table = IncrementalSnapshotTable("t", 1, lambda i: 0,
                                     prune_chain_length=100)
    reference = apply_trace(table, trace, checkpoints)
    for ssid in reference:
        _, scanned = table.materialize_instance(ssid, 0)
        assert scanned <= table.total_entries()
