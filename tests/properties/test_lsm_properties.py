"""Property-based tests: the MVCC LSM store always agrees with a
naive reference implementation, across arbitrary write/flush/compact
interleavings and retention watermarks."""

from hypothesis import given, settings, strategies as st

from repro.lsm import LsmStore

settings.register_profile("repro-lsm", max_examples=80, deadline=None)
settings.load_profile("repro-lsm")

#: Operations: ("put", key, value) / ("del", key) applied at increasing
#: versions, with occasional flush/compact maintenance.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("del"),
                  st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
    ),
    max_size=60,
)


class Reference:
    """Ground truth: full version history in plain dicts."""

    def __init__(self):
        self.history: dict[int, dict] = {}  # version -> state after it
        self.state: dict = {}
        self.version = 0

    def put(self, key, value):
        self.version += 1
        self.state[key] = value
        self.history[self.version] = dict(self.state)

    def delete(self, key):
        self.version += 1
        self.state.pop(key, None)
        self.history[self.version] = dict(self.state)


def apply(store: LsmStore, reference: Reference, trace) -> None:
    for op in trace:
        if op[0] == "put":
            reference.put(op[1], op[2])
            store.put(op[1], reference.version, op[2])
        elif op[0] == "del":
            reference.delete(op[1])
            store.delete(op[1], reference.version)
        elif op[0] == "flush":
            store.flush()
        else:
            store.compact()


@given(operations)
def test_every_version_reconstructs(trace):
    store = LsmStore(memtable_limit=5, l0_compaction_threshold=3)
    reference = Reference()
    apply(store, reference, trace)
    for version, expected in reference.history.items():
        assert dict(store.scan_at(version)) == expected
        for key, value in expected.items():
            assert store.get(key, ssid=version) == value


@given(operations, st.integers(min_value=0, max_value=60))
def test_gc_preserves_versions_at_and_above_watermark(trace, cut):
    store = LsmStore(memtable_limit=4, l0_compaction_threshold=2)
    reference = Reference()
    apply(store, reference, trace)
    watermark = min(cut, reference.version)
    store.set_watermark(watermark)
    store.flush()
    store.compact()
    for version, expected in reference.history.items():
        if version < watermark:
            continue
        assert dict(store.scan_at(version)) == expected


@given(operations)
def test_compaction_never_increases_entries(trace):
    store = LsmStore(memtable_limit=4, l0_compaction_threshold=1000)
    reference = Reference()
    apply(store, reference, trace)
    store.flush()
    before = store.total_entries()
    store.compact()
    assert store.total_entries() <= before
    assert store.read_amplification_bound <= 1


@given(operations)
def test_versions_of_matches_history(trace):
    store = LsmStore(memtable_limit=3, l0_compaction_threshold=2)
    reference = Reference()
    apply(store, reference, trace)
    for key in range(10):
        lsm_versions = {v for v, _ in store.versions_of(key)}
        # Every version at which the reference changed this key is
        # present (no GC ran: watermark unset).
        expected = set()
        previous = "<absent>"
        for version in sorted(reference.history):
            current = reference.history[version].get(key, "<absent>")
            if current != previous:
                expected.add(version)
            previous = current
        assert expected <= lsm_versions | {0}
