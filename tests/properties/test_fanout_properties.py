"""Fan-out equivalence properties: sharing must be invisible.

Plan deduplication is a pure optimisation: for any subscription mix —
unfiltered, residual-filtered, aggregate, every delivery tier — the
rows each subscriber ends up with must be bit-identical with
``shared_plans`` on and off, including under seeded chaos kills with
rollback notifications.  And routing must never leak another
subscriber's rows through a residual filter.

Seeds are fixed so CI is deterministic and failures reproduce exactly.
"""

import pytest

from repro import Environment
from repro.chaos import ChaosHarness
from repro.config import ClusterConfig
from repro.continuous.delivery import TIER_COALESCED, TIER_DIGEST
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

KEYS = 30

#: name -> (sql, subscribe kwargs): a deliberately mixed population —
#: four of these collapse onto ONE shared plan when sharing is on.
SUBSCRIPTIONS = {
    "star": ('SELECT * FROM "average"', {}),
    "key3": ('SELECT * FROM "average" WHERE partitionKey = 3', {}),
    "key7": ('SELECT * FROM "average" WHERE partitionKey = 7',
             {"tier": TIER_COALESCED}),
    "digest": ('SELECT * FROM "average"', {"tier": TIER_DIGEST}),
    "agg": ('SELECT COUNT(*) AS n, SUM(count) AS events FROM "average"',
            {}),
}

RESIDUAL_KEY = {"key3": 3, "key7": 7}


def run_scenario(shared: bool, chaos_seed: int | None = None):
    """One deterministic bounded run; returns (env, subs, delivered)."""
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=2)
    )
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=3000, keys=KEYS,
                            parallelism=3, checkpoint_interval_ms=500,
                            limit_per_instance=1500)
    service = QueryService(env, shared_plans=shared)
    job.start()
    env.run_for(200)

    delivered: dict[str, list] = {name: [] for name in SUBSCRIPTIONS}

    def capture(name):
        def on_batch(_sub, batch):
            delivered[name].append((batch.kind, [
                dict(entry["row"]) for entry in batch.entries
                if entry["row"] is not None
            ]))
        return on_batch

    subs = {
        name: service.subscribe(sql, on_batch=capture(name), **kwargs)
        for name, (sql, kwargs) in SUBSCRIPTIONS.items()
    }
    if chaos_seed is not None:
        chaos = ChaosHarness(env, seed=chaos_seed)
        chaos.plan_random(horizon_ms=2_500.0, kills=2,
                          restart_after_ms=400.0)
        env.run_for(7_000)  # sources exhaust + replay + quiesce
        assert chaos.kills_executed >= 1
    else:
        env.run_for(4_000)  # sources exhaust + quiesce
    return env, subs, delivered


def final_views(subs) -> dict[str, list[str]]:
    """Order-independent canonical form of each subscriber's view."""
    return {
        name: sorted(map(repr, sub.rows()))
        for name, sub in subs.items()
    }


def assert_no_leakage(delivered) -> None:
    """Every row a residual subscriber ever received — delta, snapshot,
    or rollback — satisfies its own residual predicate."""
    for name, key in RESIDUAL_KEY.items():
        rows = [row for _kind, batch in delivered[name] for row in batch]
        assert rows, name
        for row in rows:
            assert row["partitionKey"] == key, (name, row)


def assert_views_match_table(env, subs) -> None:
    table = env.store.get_live_table("average")
    truth = sorted(map(repr, table.rows()))
    assert final_views({"star": subs["star"]})["star"] == truth
    assert final_views({"digest": subs["digest"]})["digest"] == truth
    assert subs["agg"].rows() == [{
        "n": len(table),
        "events": sum(row["count"] for row in table.rows()),
    }]


def test_shared_on_off_views_bit_identical():
    env_on, subs_on, delivered_on = run_scenario(shared=True)
    env_off, subs_off, delivered_off = run_scenario(shared=False)

    # The dedup actually engaged: 5 subscriptions, 2 maintained plans
    # (the four SELECT-* shapes collapse; the aggregate stands alone).
    assert env_on.continuous.shared_plan_count == 2
    assert env_off.continuous.shared_plan_count == 5
    assert env_on.continuous.router.residual_filter_drops > 0

    assert final_views(subs_on) == final_views(subs_off)
    assert_views_match_table(env_on, subs_on)
    assert_views_match_table(env_off, subs_off)
    assert_no_leakage(delivered_on)
    assert_no_leakage(delivered_off)


@pytest.mark.parametrize("seed", [5, 17])
def test_shared_on_off_identical_under_chaos(seed):
    env_on, subs_on, delivered_on = run_scenario(shared=True,
                                                 chaos_seed=seed)
    env_off, subs_off, delivered_off = run_scenario(shared=False,
                                                    chaos_seed=seed)

    # Whatever interleaving the seed produced, recovery notified every
    # surviving subscriber in both modes...
    for subs in (subs_on, subs_off):
        for name, sub in subs.items():
            assert sub.active, name
            assert sub.rollbacks_received >= 1, name

    # ...and the delivered end states are still bit-identical.
    assert final_views(subs_on) == final_views(subs_off)
    assert_views_match_table(env_on, subs_on)
    assert_views_match_table(env_off, subs_off)
    assert_no_leakage(delivered_on)
    assert_no_leakage(delivered_off)
