"""Property tests for distributed joins: equivalence, chaos, pruning.

Distributed join execution is a pure optimisation: for any data and any
eligible statement the ``distributed_joins`` on/off results must be
bit-identical — same columns, same rows, same order — including LEFT
NULL padding, duplicate-key multiplication, NULL join keys, every
combination of the other optimisation gates, and node kills landing
mid-build or mid-probe (the pipeline restarts wholesale and must not
double-count anything).

Integer values keep the comparisons exact, as in the pushdown suite.
"""

import random

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import ClusterConfig, CostModel, QueryRetryPolicy
from repro.errors import QueryError
from repro.query import QueryService
from repro.sql.access import JoinCandidate, choose_join_path
from repro.state.live import LiveStateTable


def populate(env, seed, orders=300, null_every=0, dup_factor=1):
    """orders/states co-partitioned pair + a small dims dimension.

    ``null_every`` > 0 makes every n-th order's foreign key NULL;
    ``dup_factor`` > 1 multiplies dims rows per key (duplicate join
    keys on the build side).
    """
    rng = random.Random(seed)
    o = env.store.create_map("orders")
    env.store.register_live_table("orders", LiveStateTable(o))
    s = env.store.create_map("states")
    env.store.register_live_table("states", LiveStateTable(s))
    d = env.store.create_map("dims")
    env.store.register_live_table("dims", LiveStateTable(d))
    for k in range(orders):
        fk = None if null_every and k % null_every == 0 \
            else rng.randrange(0, 12)
        o.put(k, {"cust": fk, "amount": rng.randrange(0, 500),
                  "pad": rng.randrange(0, 10**6)})
        if k % 3:
            s.put(k, {"status": rng.choice(["open", "shipped", "done"]),
                      "spad": rng.randrange(0, 10**6)})
    for d_key in range(12 * dup_factor):
        d.put(d_key, {"cust_id": d_key % 12,
                      "region": ["east", "west"][d_key % 2],
                      "tier": d_key % 3})
    return env


QUERIES = [
    # co-partitioned: join key == partition key on both sides
    'SELECT o.partitionKey, o.amount, s.status FROM "orders" AS o '
    'JOIN "states" AS s USING (partitionKey) ORDER BY o.partitionKey',
    'SELECT s.status, COUNT(*) AS n, SUM(o.amount) AS total '
    'FROM "orders" AS o JOIN "states" AS s USING (partitionKey) '
    "GROUP BY s.status ORDER BY s.status",
    'SELECT o.partitionKey, s.status FROM "orders" AS o '
    'LEFT JOIN "states" AS s USING (partitionKey) '
    "WHERE o.amount < 60 ORDER BY o.partitionKey",
    # broadcast: small dims on a non-partition-key column
    'SELECT o.partitionKey, d.region FROM "orders" AS o '
    'JOIN "dims" AS d ON o.cust = d.cust_id '
    "WHERE o.amount > 400 ORDER BY o.partitionKey, d.partitionKey",
    'SELECT d.region, COUNT(*) AS c FROM "orders" AS o '
    'JOIN "dims" AS d ON o.cust = d.cust_id '
    "GROUP BY d.region ORDER BY d.region",
    'SELECT o.partitionKey, d.tier FROM "orders" AS o '
    'LEFT JOIN "dims" AS d ON o.cust = d.cust_id '
    "WHERE o.amount > 450 ORDER BY o.partitionKey, d.partitionKey",
    # 3-table multi-way: co-partitioned step then broadcast step
    'SELECT o.partitionKey, s.status, d.region FROM "orders" AS o '
    'JOIN "states" AS s USING (partitionKey) '
    'JOIN "dims" AS d ON o.cust = d.cust_id '
    "WHERE o.amount > 250 ORDER BY o.partitionKey, d.partitionKey",
    'SELECT o.partitionKey, s.status, d.tier FROM "orders" AS o '
    'LEFT JOIN "states" AS s USING (partitionKey) '
    'JOIN "dims" AS d ON o.cust = d.cust_id '
    "WHERE o.amount < 40 ORDER BY o.partitionKey, d.partitionKey",
]


def run_pair(on, off, sql):
    lhs = on.execute(sql)
    rhs = off.execute(sql)
    assert lhs.error is None, (sql, lhs.error)
    assert rhs.error is None, (sql, rhs.error)
    assert lhs.result.columns == rhs.result.columns, sql
    assert lhs.result.rows == rhs.result.rows, sql
    return lhs


@pytest.mark.parametrize("seed", [1, 17, 42])
def test_join_on_off_equivalence(seed):
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed)
    on = QueryService(env, distributed_joins=True)
    off = QueryService(env, distributed_joins=False)
    distributed = 0
    for sql in QUERIES:
        lhs = run_pair(on, off, sql)
        if any(strategy != "central"
               for strategy in lhs.join_strategies):
            distributed += 1
    assert distributed > 0, "no query exercised the distributed pipeline"
    # The pipeline must actually have chosen both headline strategies.
    assert on.joins_copartitioned_total > 0
    assert on.joins_broadcast_total > 0
    assert off.joins_central_total > 0


@pytest.mark.parametrize("null_every,dup_factor", [(2, 1), (3, 4), (2, 3)])
def test_null_and_duplicate_join_keys(null_every, dup_factor):
    """NULL keys never match (and LEFT-pad); duplicate build keys
    multiply rows — both must survive the distributed rewrite."""
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed=7, null_every=null_every, dup_factor=dup_factor)
    on = QueryService(env, distributed_joins=True)
    off = QueryService(env, distributed_joins=False)
    for sql in QUERIES:
        run_pair(on, off, sql)


def test_shuffle_hash_fallback_equivalence():
    """Neither side fits broadcast and keys are not partition keys:
    the chooser falls back to shuffle-hash, still bit-identical."""
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    rng = random.Random(11)
    left = env.store.create_map("l")
    env.store.register_live_table("l", LiveStateTable(left))
    right = env.store.create_map("r")
    env.store.register_live_table("r", LiveStateTable(right))
    for k in range(400):
        left.put(k, {"fk": rng.randrange(0, 350),
                     "a": rng.randrange(0, 100)})
    for k in range(500):
        right.put(k, {"rk": k % 350, "b": rng.randrange(0, 100)})
    on = QueryService(env, distributed_joins=True)
    off = QueryService(env, distributed_joins=False)
    for sql in [
        'SELECT l.partitionKey, r.b FROM "l" AS l '
        'JOIN "r" AS r ON l.fk = r.rk WHERE l.a < 10 '
        "ORDER BY l.partitionKey, r.partitionKey",
        'SELECT l.partitionKey, r.b FROM "l" AS l '
        'LEFT JOIN "r" AS r ON l.fk = r.rk WHERE l.a < 5 '
        "ORDER BY l.partitionKey, r.partitionKey",
    ]:
        lhs = run_pair(on, off, sql)
        assert lhs.join_strategies == ["shuffle"], lhs.join_strategies
    assert on.join_bytes_shuffled_total > 0


def test_index_nested_loop_equivalence():
    """A tiny probe side against a large indexed build side prices into
    index-nested-loop; results stay bit-identical and the build table
    is resolved through the index, not scanned."""
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    rng = random.Random(13)
    small = env.store.create_map("small")
    env.store.register_live_table("small", LiveStateTable(small))
    big = env.store.create_map("big")
    env.store.register_live_table("big", LiveStateTable(big))
    for k in range(15):
        small.put(k, {"fk": rng.randrange(0, 40), "a": k})
    for k in range(6000):
        big.put(k, {"rk": k % 2000, "b": rng.randrange(0, 100)})
    env.store.create_index("big", "rk")
    on = QueryService(env, distributed_joins=True)
    off = QueryService(env, distributed_joins=False)
    sql = ('SELECT s.partitionKey, b.b FROM "small" AS s '
           'JOIN "big" AS b ON s.fk = b.rk '
           "ORDER BY s.partitionKey, b.partitionKey")
    lhs = run_pair(on, off, sql)
    assert lhs.join_strategies == ["index-nested-loop"]
    assert lhs.index_probes > 0
    # The indexed probe touched only candidates, not the 6000 rows.
    assert lhs.entries_scanned < 6000


@pytest.mark.parametrize("gates", [
    dict(pushdown=True, vectorized=True),
    dict(pushdown=True, vectorized=False),
    dict(indexes=False, vectorized=True),
    dict(indexes=False, vectorized=False, sketches=False),
])
def test_composed_gates_stay_bit_identical(gates):
    """Distributed joins compose with every other optimisation gate."""
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed=23)
    on = QueryService(env, distributed_joins=True, **gates)
    off = QueryService(env, distributed_joins=False, **gates)
    for sql in QUERIES:
        run_pair(on, off, sql)


# -- chaos -------------------------------------------------------------------

#: Slow scans and stages widen the windows failure injection lands in.
SLOW_JOINS = CostModel(scan_entry_ms=0.05, vectorized_scan_entry_ms=0.05,
                       join_build_entry_ms=0.05, join_probe_entry_ms=0.05)
TIMEOUT_MS = 4_000.0


@pytest.mark.parametrize("seed", [5, 23])
def test_chaos_kills_preserve_join_equivalence(seed):
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_JOINS,
    )
    populate(env, seed)
    policy = QueryRetryPolicy(query_timeout_ms=TIMEOUT_MS)
    on = QueryService(env, distributed_joins=True, retry_policy=policy)
    off = QueryService(env, distributed_joins=False,
                       retry_policy=QueryRetryPolicy(
                           query_timeout_ms=TIMEOUT_MS))
    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=2_500.0, kills=2,
                      restart_after_ms=300.0)
    pairs = []
    executions = []

    def fire(sql: str) -> None:
        try:
            pair = (on.submit(sql), off.submit(sql))
        except QueryError:
            return  # "no surviving nodes" is a legal rejection
        pairs.append((sql, *pair))
        executions.extend(pair)

    for index in range(16):
        sql = QUERIES[index % len(QUERIES)]
        env.sim.schedule_at(10.0 + index * 150.0, fire, sql)

    env.run_until(2_500.0 + TIMEOUT_MS + 1_000.0)

    assert chaos.kills_executed >= 1
    assert pairs, "workload generated no query pairs"
    assert_invariants(env, executions)
    compared = 0
    for sql, lhs, rhs in pairs:
        assert lhs.done and rhs.done
        if lhs.error is not None or rhs.error is not None:
            continue  # aborted by chaos; completion is all we require
        assert lhs.result.columns == rhs.result.columns, sql
        assert lhs.result.rows == rhs.result.rows, sql
        compared += 1
    assert compared > 0, "no pair completed cleanly under chaos"


@pytest.mark.parametrize("kill_after_ms", [2.0, 5.0, 8.0])
def test_mid_join_kill_restarts_to_identical_rows(kill_after_ms):
    """A node death mid-build/mid-probe restarts the pipeline wholesale
    and must converge to exactly the undisturbed rows."""
    sql = ('SELECT o.partitionKey, s.status FROM "orders" AS o '
           'JOIN "states" AS s USING (partitionKey) '
           "ORDER BY o.partitionKey")
    baseline_env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_JOINS,
    )
    populate(baseline_env, seed=3)
    expected = QueryService(
        baseline_env, distributed_joins=True
    ).execute(sql).result.rows

    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_JOINS,
    )
    populate(env, seed=3)
    service = QueryService(
        env, distributed_joins=True,
        retry_policy=QueryRetryPolicy(query_timeout_ms=30_000.0),
    )
    execution = service.submit(sql)
    env.run_for(kill_after_ms)
    assert not execution.done
    victim = next(
        node for node in env.cluster.surviving_node_ids()
        if node != execution.entry_node
    )
    env.cluster.fail_node(victim)
    env.run_for(60_000)
    assert execution.done
    assert execution.error is None
    assert execution.retries == 1
    assert execution.result.rows == expected


def test_live_join_spanning_rollback_is_flagged():
    """An in-flight live join query crossing a rollback recovery gets
    the fuzzy-view flag, exactly like a plain live scan."""
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_JOINS,
    )
    populate(env, seed=9)
    service = QueryService(env, distributed_joins=True)
    execution = service.submit(
        'SELECT o.partitionKey, s.status FROM "orders" AS o '
        'JOIN "states" AS s USING (partitionKey) ORDER BY o.partitionKey'
    )
    env.run_for(2.0)
    assert not execution.done
    service.on_rollback_recovery(None)
    env.run_for(60_000)
    assert execution.error is None
    assert execution.observed_rollback


# -- shipping-bytes regressions (join-side projection pruning) ---------------


def test_distributed_join_ships_fewer_bytes_than_central():
    """The headline claim: join inputs stay local (co-partitioned) or
    ship one build package (broadcast) instead of every row."""
    env_on = Environment(ClusterConfig(nodes=4,
                                       processing_workers_per_node=1))
    env_off = Environment(ClusterConfig(nodes=4,
                                        processing_workers_per_node=1))
    populate(env_on, seed=31)
    populate(env_off, seed=31)
    on = QueryService(env_on, distributed_joins=True)
    off = QueryService(env_off, distributed_joins=False)
    # Selective probe-side filter: central still ships every state row
    # to the entry node, the co-partitioned pipeline only the few
    # joined survivors.
    sql = ('SELECT s.status, COUNT(*) AS n FROM "orders" AS o '
           'JOIN "states" AS s USING (partitionKey) '
           "WHERE o.amount < 25 GROUP BY s.status ORDER BY s.status")
    lhs = on.execute(sql)
    rhs = off.execute(sql)
    assert lhs.result.rows == rhs.result.rows
    assert lhs.bytes_shipped < rhs.bytes_shipped / 5


def test_join_projection_prunes_unreferenced_columns():
    """Join-side fragments project only referenced + join-key columns:
    the wide ``pad`` columns never ship, so bytes drop vs SELECT *."""
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed=37)
    service = QueryService(env, distributed_joins=False)
    narrow = service.execute(
        'SELECT o.amount, s.status FROM "orders" AS o '
        'JOIN "states" AS s USING (partitionKey) ORDER BY o.partitionKey'
    )
    wide = service.execute(
        'SELECT * FROM "orders" AS o '
        'JOIN "states" AS s USING (partitionKey) ORDER BY o.partitionKey'
    )
    assert narrow.result.rows != wide.result.rows  # sanity: narrower
    assert narrow.bytes_shipped < wide.bytes_shipped


# -- cost chooser unit tests -------------------------------------------------


def _candidate(**overrides):
    base = dict(table="right", kind="INNER", left_rows=1000,
                right_rows=1000, left_row_bytes=60, right_row_bytes=60,
                node_count=4, partition_key_join=False,
                copartitioned=False, left_native=True, index_kind=None,
                estimate_source="entries")
    base.update(overrides)
    return JoinCandidate(**base)


def test_chooser_prefers_copartitioned_when_aligned():
    costs = CostModel()
    path = choose_join_path(
        _candidate(partition_key_join=True, copartitioned=True), costs
    )
    assert path.strategy == "copartitioned"
    assert any("central" in reason for reason in path.rejected)


def test_chooser_rejects_copartitioned_without_alignment():
    costs = CostModel()
    path = choose_join_path(
        _candidate(partition_key_join=False, copartitioned=False,
                   right_rows=30), costs
    )
    assert path.strategy != "copartitioned"
    assert any(
        "co-partitioned: join key is not the partition key" in reason
        for reason in path.rejected
    )


def test_chooser_rejects_copartitioned_when_placement_differs():
    costs = CostModel()
    path = choose_join_path(
        _candidate(partition_key_join=True, copartitioned=False), costs
    )
    assert path.strategy != "copartitioned"
    assert any("placement" in reason for reason in path.rejected)


def test_chooser_picks_broadcast_for_small_build_side():
    costs = CostModel()
    path = choose_join_path(
        _candidate(right_rows=20, left_rows=100_000), costs
    )
    assert path.strategy == "broadcast"


def test_chooser_rejects_index_nested_loop_for_left_join():
    costs = CostModel()
    path = choose_join_path(
        _candidate(kind="LEFT", index_kind="hash"), costs
    )
    assert path.strategy != "index-nested-loop"
    assert any(
        "index-nested-loop: LEFT join needs the full build side"
        in reason for reason in path.rejected
    )


def test_chooser_rejects_index_nested_loop_without_index():
    costs = CostModel()
    path = choose_join_path(_candidate(index_kind=None), costs)
    assert any(
        "index-nested-loop: no hash/sorted index" in reason
        for reason in path.rejected
    )


def test_chooser_falls_back_to_central_when_distribution_loses():
    # A tiny statement: fixed stage costs dominate, central wins.
    costs = CostModel()
    path = choose_join_path(
        _candidate(left_rows=1, right_rows=1, node_count=64), costs
    )
    assert path.strategy in ("central", "broadcast", "shuffle")
    describe = path.describe()
    assert "est." in describe and "central" in describe


def test_chooser_estimate_source_is_reported():
    costs = CostModel()
    path = choose_join_path(
        _candidate(right_rows=10, estimate_source="sketch"), costs
    )
    assert "from sketch" in path.describe()


def test_explain_renders_join_strategies():
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed=41)
    service = QueryService(env, distributed_joins=True)
    text = service.explain(
        'SELECT o.partitionKey, s.status FROM "orders" AS o '
        'JOIN "states" AS s USING (partitionKey) ORDER BY o.partitionKey'
    )
    assert "join [states]: co-partitioned hash join" in text
    assert "rejected" in text
    disabled = QueryService(env, distributed_joins=False)
    assert "joins: central (distributed joins disabled)" in disabled.explain(
        'SELECT o.partitionKey, s.status FROM "orders" AS o '
        'JOIN "states" AS s USING (partitionKey)'
    )
