"""Property tests for APPROX query answering.

The subsystem's contract: every sketch-answered result is within its
*reported* ``error_bound`` of the exact answer at the declared
confidence — live and snapshot, with and without pushdown, and under
seeded chaos kills.  All workloads are fixed-seed, so the probabilistic
bounds are checked reproducibly, not flakily.  Count-min is one-sided
by construction (``exact <= estimate <= exact + bound`` always), which
is asserted as a hard property.

Rollback recovery rewrites live partitions wholesale, so the sketch
write path must stay coherent through failures exactly like the index
write path (PR 5's property, extended to sketches).
"""

import random

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import (
    ClusterConfig,
    CostModel,
    QueryRetryPolicy,
    SketchSpec,
)
from repro.errors import QueryError
from repro.query import QueryService
from repro.state import FullSnapshotTable
from repro.state.live import LiveStateTable

from ..conftest import build_average_job, make_squery_backend

KEYS = 3_000

#: (approx sql, exact sql, output column, mode)
QUERIES = [
    ('SELECT APPROX COUNT(*) AS n FROM "data" WHERE v = 17',
     'SELECT COUNT(*) AS n FROM "data" WHERE v = 17',
     "n", "count_eq"),
    ('SELECT APPROX COUNT(DISTINCT zone) AS d FROM "data"',
     'SELECT COUNT(DISTINCT zone) AS d FROM "data"',
     "d", "distinct"),
    ('SELECT APPROX SUM(x) AS s FROM "data"',
     'SELECT SUM(x) AS s FROM "data"',
     "s", "sum"),
    ('SELECT APPROX AVG(x) AS a FROM "data"',
     'SELECT AVG(x) AS a FROM "data"',
     "a", "avg"),
]


def populate(env, seed, keys=KEYS):
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    rng = random.Random(seed)
    for key in range(keys):
        imap.put(key, {
            "v": rng.randrange(0, 50),
            "zone": f"zone-{rng.randrange(0, 120)}",
            "x": rng.uniform(0.0, 100.0),
        })
    # Small reservoirs force genuine sampling (~60 rows per partition
    # vs 16 slots), so the CLT bound is exercised, not vacuous.
    env.store.create_sketch("data", "v", "countmin")
    env.store.create_sketch("data", "zone", "hll")
    env.store.create_sketch("data", "x", "reservoir", capacity=16,
                            confidence=0.99)


def sketch_cluster():
    return ClusterConfig(nodes=4, processing_workers_per_node=1,
                         partition_count=48)


def assert_within_bound(mode, approx_row, column, exact_value, sql):
    estimate = approx_row[column]
    bound = approx_row["error_bound"]
    confidence = approx_row["confidence"]
    assert 0.0 < confidence <= 1.0, sql
    if mode == "count_eq":
        # One-sided: collisions only ever add.
        assert exact_value <= estimate <= exact_value + bound, sql
    else:
        slack = 1e-9 * max(abs(exact_value), 1.0)  # float merge order
        assert abs(estimate - exact_value) <= bound + slack, sql


@pytest.mark.parametrize("seed", [1, 17, 42])
@pytest.mark.parametrize("pushdown", [True, False])
def test_live_answers_within_reported_bound(seed, pushdown):
    env = Environment(sketch_cluster())
    populate(env, seed)
    approx = QueryService(env, pushdown=pushdown, sketches=True)
    exact = QueryService(env, pushdown=pushdown, sketches=False)
    for approx_sql, exact_sql, column, mode in QUERIES:
        lhs = approx.execute(approx_sql)
        rhs = exact.execute(exact_sql)
        # Guard against vacuous passes: the sketch path must fire.
        assert lhs.approx_answered, approx_sql
        assert lhs.sketch_probes > 0 and lhs.entries_scanned == 0
        assert lhs.result.columns == [column, "error_bound",
                                      "confidence"]
        assert_within_bound(mode, lhs.result.rows[0], column,
                            rhs.result.rows[0][column], approx_sql)
    assert approx.approx_queries_answered_total == len(QUERIES)


def test_sketches_off_falls_back_to_exact_with_zero_bounds():
    env = Environment(sketch_cluster())
    populate(env, seed=7)
    off = QueryService(env, sketches=False)
    exact = QueryService(env, sketches=False)
    for approx_sql, exact_sql, column, _mode in QUERIES:
        lhs = off.execute(approx_sql)
        rhs = exact.execute(exact_sql)
        assert not lhs.approx_answered
        assert lhs.result.columns == [column, "error_bound",
                                      "confidence"]
        row = lhs.result.rows[0]
        assert row["error_bound"] == 0.0 and row["confidence"] == 1.0
        assert row[column] == rhs.result.rows[0][column], approx_sql


def test_mutations_keep_live_answers_within_bound():
    env = Environment(sketch_cluster())
    populate(env, seed=11)
    imap = env.store.get_map("data")
    rng = random.Random(99)
    approx = QueryService(env, sketches=True)
    exact = QueryService(env, sketches=False)
    for round_no in range(6):
        for _ in range(80):
            key = rng.randrange(0, KEYS + 400)
            if rng.random() < 0.25 and imap.contains(key):
                imap.delete(key)
            else:
                imap.put(key, {
                    "v": rng.randrange(0, 50),
                    "zone": f"zone-{rng.randrange(0, 120)}",
                    "x": rng.uniform(0.0, 100.0),
                })
        approx_sql, exact_sql, column, mode = \
            QUERIES[round_no % len(QUERIES)]
        lhs = approx.execute(approx_sql)
        rhs = exact.execute(exact_sql)
        assert lhs.approx_answered, approx_sql
        assert_within_bound(mode, lhs.result.rows[0], column,
                            rhs.result.rows[0][column], approx_sql)
    live = env.store.get_live_table("data")
    assert live.sketch_coherence_errors() == []


def test_snapshot_answers_within_bound_and_pin_by_ssid():
    env = Environment(sketch_cluster())
    table = FullSnapshotTable("snap", 8, lambda i: i % 4)
    env.store.register_snapshot_table("snap", table)
    env.store.create_sketch("snap", "v", "countmin")
    env.store.create_sketch("snap", "zone", "hll")
    rng = random.Random(23)
    for ssid in (1, 2):
        env.store.begin_snapshot(ssid)
        for instance in range(8):
            table.write_instance(ssid, instance, {
                f"k{instance}-{j}": {
                    "v": rng.randrange(0, 50),
                    "zone": f"zone-{rng.randrange(0, 40)}",
                }
                for j in range(300)
            })
        env.store.commit_snapshot(ssid)
    approx = QueryService(env, sketches=True)
    exact = QueryService(env, sketches=False)
    for ssid in (1, 2):
        for sql_template, column, mode in (
            ('SELECT{} COUNT(*) AS n FROM "snap" '
             "WHERE v = 17 AND ssid = {}", "n", "count_eq"),
            ('SELECT{} COUNT(DISTINCT zone) AS d FROM "snap" '
             "WHERE ssid = {}", "d", "distinct"),
        ):
            approx_sql = sql_template.format(" APPROX", ssid)
            exact_sql = sql_template.format("", ssid)
            lhs = approx.execute(approx_sql)
            rhs = exact.execute(exact_sql)
            assert lhs.approx_answered and lhs.snapshot_id == ssid
            assert_within_bound(mode, lhs.result.rows[0], column,
                                rhs.result.rows[0][column], approx_sql)
    for ssid in (1, 2):
        assert table.sketch_ready(ssid)
        assert table.sketch_coherence_errors(ssid) == []


#: Slow scans widen the mid-scan failure window and make the sketch
#: path a clear win, so chaos exercises sketch-answered queries.
SLOW_SCANS = CostModel(scan_entry_ms=0.05,
                       vectorized_scan_entry_ms=0.05)
TIMEOUT_MS = 2_000.0


@pytest.mark.parametrize("seed", [5, 23])
def test_chaos_kills_keep_answers_within_bound(seed):
    env = Environment(sketch_cluster(), costs=SLOW_SCANS)
    populate(env, seed, keys=900)
    approx = QueryService(env, sketches=True,
                          retry_policy=QueryRetryPolicy(
                              query_timeout_ms=TIMEOUT_MS))
    exact = QueryService(env, sketches=False,
                         retry_policy=QueryRetryPolicy(
                             query_timeout_ms=TIMEOUT_MS))
    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=2_500.0, kills=2,
                      restart_after_ms=300.0)

    pairs = []
    executions = []

    def fire(index: int) -> None:
        approx_sql, exact_sql, column, mode = \
            QUERIES[index % len(QUERIES)]
        try:
            pair = (approx.submit(approx_sql), exact.submit(exact_sql))
        except QueryError:
            return  # "no surviving nodes" is a legal rejection
        pairs.append((approx_sql, column, mode, *pair))
        executions.extend(pair)

    for index in range(16):
        env.sim.schedule_at(10.0 + index * 150.0, fire, index)

    env.run_until(2_500.0 + TIMEOUT_MS + 1_000.0)

    assert chaos.kills_executed >= 1
    assert pairs, "workload generated no query pairs"
    # assert_invariants includes sketch/store coherence after the
    # kill-and-restart partition reshuffles.
    assert_invariants(env, executions)
    compared = 0
    for approx_sql, column, mode, lhs, rhs in pairs:
        assert lhs.done and rhs.done
        if lhs.error is not None or rhs.error is not None:
            continue  # aborted by chaos; completion is all we require
        # The live table is quiescent, so the sketch answer and the
        # exact scan observed the same rows regardless of retries.
        assert_within_bound(mode, lhs.result.rows[0], column,
                            rhs.result.rows[0][column], approx_sql)
        compared += 1
    assert compared > 0, "no pair completed cleanly under chaos"


@pytest.mark.parametrize("kill_at_ms", [900, 1_234])
def test_rollback_recovery_keeps_sketches_coherent(kill_at_ms):
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(
        env,
        sketches=(SketchSpec("average", "total", "countmin"),
                  SketchSpec("average", "total", "reservoir")),
    )
    job = build_average_job(env, backend=backend, rate=2000, keys=50,
                            limit_per_instance=800,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(kill_at_ms)
    env.cluster.kill_node(2)
    env.run_until(30_000)
    assert job.all_sources_exhausted()
    assert job.metrics.recoveries == 1

    # Recovery rewrote live partitions from the rolled-back snapshot;
    # the incremental sketch maintenance must have followed every step.
    live = env.store.get_live_table("average")
    assert live.sketch_count == 2
    assert live.sketch_coherence_errors() == []
    snap = env.store.get_snapshot_table("snapshot_average")
    for ssid in env.store.available_ssids():
        if not snap.has_snapshot(ssid):
            continue
        assert snap.sketch_ready(ssid)
        assert snap.sketch_coherence_errors(ssid) == []
    assert_invariants(env)

    # The job is quiescent: the approximate SUM must cover the exact
    # one within its reported bound on both table families.
    for table in ("average", "snapshot_average"):
        lhs = QueryService(env, sketches=True).execute(
            f'SELECT APPROX SUM(total) AS t FROM "{table}"'
        )
        rhs = QueryService(env, sketches=False).execute(
            f'SELECT SUM(total) AS t FROM "{table}"'
        )
        assert_within_bound("sum", lhs.result.rows[0], "t",
                            rhs.result.rows[0]["t"], table)
