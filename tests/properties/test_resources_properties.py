"""Property-based tests for simulation resources."""

from hypothesis import given, settings, strategies as st

from repro.simtime import Server, Simulator, WorkerPool

settings.register_profile("repro-res", max_examples=60, deadline=None)
settings.load_profile("repro-res")

durations = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1, max_size=30,
)


@given(durations)
def test_server_completion_times_are_cumulative(jobs):
    sim = Simulator()
    server = Server(sim)
    finishes = [server.submit(duration) for duration in jobs]
    expected = []
    acc = 0.0
    for duration in jobs:
        acc += duration
        expected.append(acc)
    assert finishes == expected


@given(durations, st.integers(min_value=1, max_value=8))
def test_pool_conservation_of_work(jobs, workers):
    """Total busy time equals the sum of durations, and the last
    completion is at least total/workers (no free lunch) and at most
    the serial total (no lost capacity for a single key)."""
    sim = Simulator()
    pool = WorkerPool(sim, workers)
    finishes = [pool.submit(i, d) for i, d in enumerate(jobs)]
    total = sum(jobs)
    assert pool.total_busy_ms == sum(jobs)
    assert max(finishes) >= total / workers - 1e-9
    assert max(finishes) <= total + 1e-9


@given(durations)
def test_pool_single_key_serialises_exactly(jobs):
    sim = Simulator()
    pool = WorkerPool(sim, workers=4)
    finishes = [pool.submit("same", d) for d in jobs]
    acc = 0.0
    for duration, finish in zip(jobs, finishes):
        acc += duration
        assert abs(finish - acc) < 1e-9


@given(durations, st.integers(min_value=1, max_value=4))
def test_pool_completions_monotone_per_key(jobs, workers):
    sim = Simulator()
    pool = WorkerPool(sim, workers)
    per_key = {}
    for index, duration in enumerate(jobs):
        key = index % 3
        per_key.setdefault(key, []).append(pool.submit(key, duration))
    for finishes in per_key.values():
        assert finishes == sorted(finishes)


@given(durations)
def test_callbacks_fire_exactly_once_each(jobs):
    sim = Simulator()
    server = Server(sim)
    fired = []
    for index, duration in enumerate(jobs):
        server.submit(duration, fired.append, index)
    sim.run()
    assert sorted(fired) == list(range(len(jobs)))
