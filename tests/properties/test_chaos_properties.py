"""Seeded chaos property test: random kills/restarts under query load.

For each fixed seed, a four-node cluster runs the standard average job
while the harness injects random node kills (each later restarted) and
a mixed stream of live, snapshot, and repeatable-read queries fires
throughout.  Whatever interleaving the seed produces, the end state
must satisfy the chaos invariants: every query terminated (result or
clean error) within the watchdog bound, the lock table drained, and no
in-flight bookkeeping survived.

The seeds are fixed — not drawn per run — so CI is deterministic and a
failure reproduces exactly.
"""

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import ClusterConfig, CostModel, QueryRetryPolicy
from repro.errors import QueryError
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

QUERY_TIMEOUT_MS = 2_000.0

SQL_MIX = [
    'SELECT COUNT(*) AS n FROM "average"',
    'SELECT key, count FROM "average" WHERE count > 1',
    'SELECT COUNT(*) AS n FROM "snapshot_average"',
    'SELECT * FROM "average" WHERE key = 3',
]


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_random_chaos_preserves_invariants(seed):
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=2),
        costs=CostModel(scan_entry_ms=0.02,
                        vectorized_scan_entry_ms=0.02),
    )
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=300,
                            parallelism=4, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_500)  # at least one committed snapshot

    services = [
        QueryService(env, retry_policy=QueryRetryPolicy(
            query_timeout_ms=QUERY_TIMEOUT_MS)),
        QueryService(env, repeatable_read=True,
                     retry_policy=QueryRetryPolicy(
                         query_timeout_ms=QUERY_TIMEOUT_MS)),
    ]

    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=4_000.0, kills=3, restart_after_ms=400.0)

    executions = []

    def fire(index: int) -> None:
        service = services[index % len(services)]
        sql = SQL_MIX[index % len(SQL_MIX)]
        try:
            executions.append(service.submit(sql))
        except QueryError:
            pass  # "no surviving nodes" is a legal rejection

    for index in range(24):
        env.sim.schedule_at(1_500.0 + index * 100.0, fire, index)

    # Run past the chaos horizon plus a full watchdog period: by then
    # every query must have reached a terminal state.
    env.run_until(4_000.0 + QUERY_TIMEOUT_MS + 1_000.0)

    assert executions, "workload generated no queries"
    assert chaos.kills_executed >= 1
    assert_invariants(env, executions)

    for execution in executions:
        assert execution.done
        assert execution.latency_ms <= QUERY_TIMEOUT_MS + 1e-6
        if execution.error is not None:
            assert isinstance(execution.error, QueryError)
