"""Property-based tests for the lock manager: safety (one holder per
key) and liveness (every waiter eventually granted) under arbitrary
acquire/release schedules."""

from hypothesis import given, settings, strategies as st

from repro.kvstore import LockManager

settings.register_profile("repro-locks", max_examples=80, deadline=None)
settings.load_profile("repro-locks")

#: A schedule: sequence of (key, owner) acquire attempts.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=6)),
    max_size=40,
)


@given(schedules)
def test_single_holder_and_fifo_grants(schedule):
    locks = LockManager()
    granted = []
    holders = {}

    def make_cb(key, owner):
        def cb():
            granted.append((key, owner))
            holders[key] = owner
        return cb

    queued = []
    for key, owner in schedule:
        if locks.acquire(key, owner, granted=make_cb(key, owner)):
            holders[key] = owner
        else:
            queued.append((key, owner))

    # Release everything in grant order until all waiters served.
    for _ in range(len(schedule) * 2):
        active = [(k, h) for k, h in holders.items() if locks.is_locked(k)]
        if not active:
            break
        key, holder = active[0]
        locks.release(key, holder)
        if not locks.is_locked(key):
            del holders[key]

    # Liveness: every queued waiter was eventually granted.
    for item in queued:
        assert item in granted
    # Safety: nothing is left locked.
    for key, _ in schedule:
        assert not locks.is_locked(key)


@given(schedules)
def test_acquisition_accounting(schedule):
    locks = LockManager()
    immediate = 0
    for key, owner in schedule:
        if locks.try_acquire(key, (key, owner, object())):
            immediate += 1
    assert locks.acquisitions == immediate
    # Exactly the distinct keys are locked.
    assert sum(
        1 for key in dict.fromkeys(k for k, _ in schedule)
        if locks.is_locked(key)
    ) == immediate
