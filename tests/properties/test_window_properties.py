"""Property-based tests for window operators: emitted windows plus the
open window always account for every record exactly once."""

from hypothesis import given, settings, strategies as st

from repro.dataflow.operators import Emitter
from repro.dataflow.records import Record
from repro.dataflow.windows import (
    SessionWindowOperator,
    SlidingCountWindowOperator,
    TumblingWindowOperator,
)

settings.register_profile("repro-win", max_examples=60, deadline=None)
settings.load_profile("repro-win")

#: (key, value, time-delta) traces; deltas accumulate so event times are
#: monotone per trace (sources emit in order).
traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    ),
    max_size=50,
)


def feed(operator, trace):
    out = Emitter()
    emitted = []
    now = 0.0
    for key, value, delta in trace:
        now += delta
        operator.process(Record(key, value, created_ms=now), out)
        emitted.extend(r.value for r in out.drain())
    return emitted


def total_add(acc, value):
    count, total = acc or (0, 0)
    return count + 1, total + value


@given(traces)
def test_tumbling_windows_partition_records(trace):
    operator = TumblingWindowOperator(100.0, total_add)
    emitted = feed(operator, trace)
    closed_count = sum(result.count for result in emitted)
    open_count = sum(
        state.count for _, state in operator.state.items()
    )
    assert closed_count + open_count == len(trace)
    closed_sum = sum(result.value[1] for result in emitted)
    open_sum = sum(
        state.accumulator[1] for _, state in operator.state.items()
    )
    assert closed_sum + open_sum == sum(v for _, v, _ in trace)


@given(traces)
def test_tumbling_windows_ordered_per_key(trace):
    operator = TumblingWindowOperator(100.0, total_add)
    emitted = feed(operator, trace)
    per_key: dict = {}
    for result in emitted:
        per_key.setdefault(result.key, []).append(result.window_start)
    for starts in per_key.values():
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)


@given(traces)
def test_session_windows_account_for_all_records(trace):
    operator = SessionWindowOperator(50.0, total_add)
    emitted = feed(operator, trace)
    closed = sum(result.count for result in emitted)
    open_count = sum(
        state.count for _, state in operator.state.items()
    )
    assert closed + open_count == len(trace)


@given(traces)
def test_session_bounds_contain_gap_rule(trace):
    operator = SessionWindowOperator(50.0, total_add)
    emitted = feed(operator, trace)
    for result in emitted:
        assert result.window_end >= result.window_start


@given(traces, st.integers(min_value=1, max_value=5))
def test_sliding_count_window_matches_reference(trace, n):
    operator = SlidingCountWindowOperator(n, lambda k, vs: list(vs))
    emitted = feed(operator, trace)
    reference: dict = {}
    expected = []
    for key, value, _ in trace:
        window = reference.setdefault(key, [])
        window.append(value)
        del window[:-n]
        expected.append(list(window))
    assert emitted == expected
