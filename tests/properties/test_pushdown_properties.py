"""Property tests for distributed pushdown: equivalence and retries.

Pushdown is a pure optimisation, so for any data and any supported
query the on/off results must be identical — including under node
kills and restarts, where per-table attempt tokens must keep partial
aggregates from ever being double-counted.

Integer-only values keep aggregate merges exact: float SUM/AVG merge
order could otherwise introduce rounding noise that has nothing to do
with correctness.
"""

import random

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import ClusterConfig, CostModel, QueryRetryPolicy
from repro.errors import QueryError
from repro.query import QueryService
from repro.state.live import LiveStateTable

QUERIES = [
    'SELECT key, v FROM "data" WHERE v < 10 ORDER BY key',
    'SELECT g, SUM(v) AS s, COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi '
    'FROM "data" GROUP BY g ORDER BY g',
    'SELECT COUNT(*) AS n FROM "data" WHERE g = 3 AND v > 50',
    'SELECT AVG(v) AS a FROM "data"',
    'SELECT g, COUNT(*) AS c FROM "data" WHERE v % 2 = 0 GROUP BY g '
    "HAVING COUNT(*) > 2 ORDER BY g",
    'SELECT v FROM "data" WHERE key IN (1, 5, 9, 700)',
    'SELECT COUNT(*) AS n FROM "data" WHERE key BETWEEN 100 AND 220',
]


def populate(env, seed, keys=600):
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    rng = random.Random(seed)
    for key in range(keys):
        imap.put(key, {
            "v": rng.randrange(0, 200),
            "g": rng.randrange(0, 6),
            "pad": rng.randrange(0, 10**6),
        })


@pytest.mark.parametrize("seed", [1, 17, 42])
def test_random_data_on_off_equivalence(seed):
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed)
    on = QueryService(env, pushdown=True)
    off = QueryService(env, pushdown=False)
    for sql in QUERIES:
        lhs = on.execute(sql)
        rhs = off.execute(sql)
        assert lhs.result.columns == rhs.result.columns, sql
        assert lhs.result.rows == rhs.result.rows, sql


#: Slow scans widen the mid-scan window failure injection lands in
#: (both scan paths, so the window is wide whichever gate is active).
SLOW_SCANS = CostModel(scan_entry_ms=0.05,
                       vectorized_scan_entry_ms=0.05)
TIMEOUT_MS = 2_000.0


@pytest.mark.parametrize("seed", [5, 23])
def test_chaos_kills_preserve_on_off_equivalence(seed):
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_SCANS,
    )
    populate(env, seed)
    services = {
        True: QueryService(env, pushdown=True,
                           retry_policy=QueryRetryPolicy(
                               query_timeout_ms=TIMEOUT_MS)),
        False: QueryService(env, pushdown=False,
                            retry_policy=QueryRetryPolicy(
                                query_timeout_ms=TIMEOUT_MS)),
    }
    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=2_500.0, kills=2,
                      restart_after_ms=300.0)

    pairs = []
    executions = []

    def fire(sql: str) -> None:
        try:
            pair = (services[True].submit(sql),
                    services[False].submit(sql))
        except QueryError:
            return  # "no surviving nodes" is a legal rejection
        pairs.append((sql, *pair))
        executions.extend(pair)

    for index in range(18):
        sql = QUERIES[index % len(QUERIES)]
        env.sim.schedule_at(10.0 + index * 150.0, fire, sql)

    env.run_until(2_500.0 + TIMEOUT_MS + 1_000.0)

    assert chaos.kills_executed >= 1
    assert pairs, "workload generated no query pairs"
    assert_invariants(env, executions)
    compared = 0
    for sql, on, off in pairs:
        assert on.done and off.done
        if on.error is not None or off.error is not None:
            continue  # aborted by chaos; completion is all we require
        # The live table is quiescent (no job mutates it), so both
        # executions observed the same rows regardless of timing and
        # retries — results must be identical.
        assert on.result.columns == off.result.columns, sql
        assert on.result.rows == off.result.rows, sql
        compared += 1
    assert compared > 0, "no pair completed cleanly under chaos"


@pytest.mark.parametrize("kill_after_ms", [2.0, 4.0, 6.0])
def test_mid_scan_kill_does_not_double_count_partials(kill_after_ms):
    # A fresh cluster per offset: restarting a failed node hands its
    # partitions to the survivors, so a reused victim would have nothing
    # to scan and the kill would not exercise the retry path at all.
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_SCANS,
    )
    populate(env, seed=9)
    service = QueryService(env)
    sql = ('SELECT g, SUM(v) AS s, COUNT(*) AS c FROM "data" '
           "GROUP BY g ORDER BY g")
    expected = service.execute(sql).result.rows

    execution = service.submit(sql)
    env.run_for(kill_after_ms)  # planning done, scans in flight
    assert not execution.done
    victim = next(
        node for node in env.cluster.surviving_node_ids()
        if node != execution.entry_node
    )
    env.cluster.fail_node(victim)
    env.run_for(2_000)
    assert execution.done
    assert execution.error is None
    assert execution.retries == 1
    # Attempt tokens discarded the dead node's shipped partials, so
    # no group was counted twice across the retry.
    assert execution.result.rows == expected


def test_point_gets_survive_owner_death():
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_SCANS,
    )
    populate(env, seed=13)
    service = QueryService(env)
    sql = 'SELECT key, v FROM "data" WHERE key IN (1, 50, 99, 420)'
    expected = service.execute(sql).result.rows
    assert len(expected) == 4

    execution = service.submit(sql)
    env.run_for(0.5)
    victim = next(
        node for node in env.cluster.surviving_node_ids()
        if node != execution.entry_node
    )
    env.cluster.fail_node(victim)
    env.run_for(2_000)
    assert execution.done
    if execution.error is None:  # retried onto surviving replicas
        assert execution.result.rows == expected
        assert execution.retries >= 0
    env.cluster.restart_node(victim)
