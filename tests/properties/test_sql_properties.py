"""Property-based tests for the SQL engine."""

from hypothesis import given, settings, strategies as st

from repro.sql import EvalContext, execute_select, parse
from repro.sql.planner import DictCatalog, ListTable

settings.register_profile("repro", max_examples=60, deadline=None)
settings.load_profile("repro")

row_values = st.one_of(
    st.integers(min_value=-1_000, max_value=1_000),
    st.text(alphabet="abcxyz", max_size=6),
    st.none(),
)

rows_strategy = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(min_value=0, max_value=20),
        "v": st.integers(min_value=-100, max_value=100),
        "tag": st.sampled_from(["red", "green", "blue"]),
        "maybe": row_values,
    }),
    max_size=40,
)


def run(sql, rows, now_ms=0.0):
    catalog = DictCatalog({"t": ListTable("t", tuple(rows))})
    return execute_select(parse(sql), catalog, EvalContext(now_ms))


@given(rows_strategy)
def test_count_star_equals_row_count(rows):
    result = run("SELECT COUNT(*) AS n FROM t", rows)
    assert result.rows[0]["n"] == len(rows)


@given(rows_strategy)
def test_where_partitions_rows(rows):
    above = run("SELECT COUNT(*) AS n FROM t WHERE v >= 0", rows)
    below = run("SELECT COUNT(*) AS n FROM t WHERE v < 0", rows)
    assert above.rows[0]["n"] + below.rows[0]["n"] == len(rows)


@given(rows_strategy)
def test_group_by_counts_sum_to_total(rows):
    grouped = run("SELECT tag, COUNT(*) AS n FROM t GROUP BY tag", rows)
    assert sum(row["n"] for row in grouped.rows) == len(rows)
    tags = [row["tag"] for row in grouped.rows]
    assert len(tags) == len(set(tags))


@given(rows_strategy)
def test_sum_matches_python(rows):
    result = run("SELECT SUM(v) AS s FROM t", rows)
    expected = sum(r["v"] for r in rows) if rows else None
    assert result.rows[0]["s"] == expected


@given(rows_strategy)
def test_min_max_bound_every_row(rows):
    result = run("SELECT MIN(v) AS lo, MAX(v) AS hi FROM t", rows).rows[0]
    if not rows:
        assert result["lo"] is None and result["hi"] is None
    else:
        values = [r["v"] for r in rows]
        assert result["lo"] == min(values)
        assert result["hi"] == max(values)


@given(rows_strategy)
def test_order_by_sorts(rows):
    result = run("SELECT v FROM t ORDER BY v", rows)
    values = result.column("v")
    assert values == sorted(values)


@given(rows_strategy, st.integers(min_value=0, max_value=10))
def test_limit_truncates(rows, limit):
    result = run(f"SELECT v FROM t LIMIT {limit}", rows)
    assert len(result) == min(limit, len(rows))


@given(rows_strategy)
def test_distinct_removes_duplicates_only(rows):
    result = run("SELECT DISTINCT tag FROM t", rows)
    expected = {r["tag"] for r in rows}
    assert set(result.column("tag")) == expected
    assert len(result) == len(expected)


@given(rows_strategy)
def test_self_join_on_key_at_least_row_count(rows):
    catalog = DictCatalog({
        "a": ListTable("a", tuple(rows)),
        "b": ListTable("b", tuple(rows)),
    })
    result = execute_select(
        parse("SELECT COUNT(*) AS n FROM a JOIN b USING(k)"), catalog,
        EvalContext(),
    )
    # Every row matches at least itself.
    assert result.rows[0]["n"] >= len(rows)


numeric_rows = st.lists(
    st.fixed_dictionaries({
        "maybe": st.one_of(
            st.none(), st.integers(min_value=-50, max_value=50)
        ),
    }),
    max_size=40,
)


@given(numeric_rows)
def test_null_never_satisfies_comparison(rows):
    result = run("SELECT COUNT(*) AS n FROM t "
                 "WHERE maybe > 0 OR maybe <= 0", rows)
    non_null_numbers = sum(
        1 for r in rows if isinstance(r["maybe"], int)
    )
    assert result.rows[0]["n"] == non_null_numbers


@given(rows_strategy)
def test_aggregate_with_where_consistent(rows):
    total = run("SELECT COUNT(*) AS n FROM t WHERE tag = 'red'", rows)
    grouped = run("SELECT tag, COUNT(*) AS n FROM t GROUP BY tag", rows)
    red = next((r["n"] for r in grouped.rows if r["tag"] == "red"), 0)
    assert total.rows[0]["n"] == red


@given(rows_strategy, rows_strategy)
def test_union_all_length_is_sum(rows_a, rows_b):
    catalog = DictCatalog({
        "a": ListTable("a", tuple(rows_a)),
        "b": ListTable("b", tuple(rows_b)),
    })
    result = execute_select(
        parse("SELECT k FROM a UNION ALL SELECT k FROM b"), catalog,
        EvalContext(),
    )
    assert len(result) == len(rows_a) + len(rows_b)


@given(rows_strategy, rows_strategy)
def test_union_distinct_is_set_union(rows_a, rows_b):
    catalog = DictCatalog({
        "a": ListTable("a", tuple(rows_a)),
        "b": ListTable("b", tuple(rows_b)),
    })
    result = execute_select(
        parse("SELECT k FROM a UNION SELECT k FROM b"), catalog,
        EvalContext(),
    )
    expected = {r["k"] for r in rows_a} | {r["k"] for r in rows_b}
    assert set(result.column("k")) == expected
    assert len(result) == len(expected)


@given(rows_strategy, st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=5))
def test_limit_offset_slice_semantics(rows, limit, offset):
    ordered = run("SELECT v FROM t ORDER BY v", rows).column("v")
    window = run(
        f"SELECT v FROM t ORDER BY v LIMIT {limit} OFFSET {offset}",
        rows,
    ).column("v")
    assert window == ordered[offset:offset + limit]
