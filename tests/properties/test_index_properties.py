"""Property tests for index-backed scans: equivalence and coherence.

Secondary indexes are a pure access-path optimisation, so for any data
and any supported query the index-on/index-off results must be
bit-identical — live and snapshot, with and without pushdown, and
under seeded chaos kills.  Rollback recovery rewrites live partitions
wholesale, so the write path must keep every index coherent through
failures too.

Integer-only values keep aggregate merges exact: float SUM/AVG merge
order could otherwise introduce rounding noise that has nothing to do
with correctness.
"""

import random

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import (
    ClusterConfig,
    CostModel,
    IndexSpec,
    QueryRetryPolicy,
)
from repro.errors import QueryError
from repro.query import QueryService
from repro.state.live import LiveStateTable

from ..conftest import build_average_job, make_squery_backend

QUERIES = [
    'SELECT key, v FROM "data" WHERE v = 17 ORDER BY key',
    'SELECT COUNT(*) AS n FROM "data" WHERE v IN (5, 17, 100)',
    'SELECT key FROM "data" WHERE s LIKE \'s-0%\' ORDER BY key',
    'SELECT key, s FROM "data" WHERE s LIKE \'s-17\' ORDER BY key',
    'SELECT g, SUM(v) AS t, COUNT(*) AS c FROM "data" WHERE v < 40 '
    "GROUP BY g ORDER BY g",
    'SELECT COUNT(*) AS n FROM "data" '
    "WHERE s BETWEEN 's-10' AND 's-19'",
    'SELECT g, COUNT(*) AS c FROM "data" WHERE v = 17 OR v = 100 '
    "GROUP BY g ORDER BY g",
    'SELECT v FROM "data" WHERE key IN (1, 5, 9, 700)',
    'SELECT COUNT(*) AS n FROM "data" WHERE v = 17 AND g = 3',
]


def populate(env, seed, keys=900):
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    rng = random.Random(seed)
    for key in range(keys):
        imap.put(key, {
            "v": rng.randrange(0, 200),
            "g": rng.randrange(0, 6),
            "s": f"s-{rng.randrange(0, 40):02d}",
            "pad": rng.randrange(0, 10**6),
        })
    env.store.create_index("data", "v", "hash")
    env.store.create_index("data", "s", "sorted")


def indexed_cluster():
    # Few enough partitions that fixed probe costs stay in proportion
    # to the table, so selective predicates genuinely take the index.
    return ClusterConfig(nodes=4, processing_workers_per_node=1,
                         partition_count=48)


@pytest.mark.parametrize("seed", [1, 17, 42])
@pytest.mark.parametrize("pushdown", [True, False])
def test_random_data_on_off_equivalence(seed, pushdown):
    env = Environment(indexed_cluster())
    populate(env, seed)
    on = QueryService(env, pushdown=pushdown, indexes=True)
    off = QueryService(env, pushdown=pushdown, indexes=False)
    for sql in QUERIES:
        lhs = on.execute(sql)
        rhs = off.execute(sql)
        assert lhs.result.columns == rhs.result.columns, sql
        assert lhs.result.rows == rhs.result.rows, sql


def test_selective_probes_actually_use_the_index():
    # Guard against the equivalence above passing vacuously: on this
    # data shape the chooser must take the index for the equality probe.
    env = Environment(indexed_cluster())
    populate(env, seed=7)
    service = QueryService(env, indexes=True)
    execution = service.execute(
        'SELECT key, v FROM "data" WHERE v = 17 ORDER BY key'
    )
    assert execution.index_probes > 0
    assert execution.entries_scanned < 900


def test_writes_between_queries_keep_results_equivalent():
    env = Environment(indexed_cluster())
    populate(env, seed=11)
    imap = env.store.get_map("data")
    rng = random.Random(99)
    on = QueryService(env, indexes=True)
    off = QueryService(env, indexes=False)
    for round_no in range(8):
        # Interleave overwrites, inserts, and deletes with queries.
        for _ in range(40):
            key = rng.randrange(0, 1100)
            if rng.random() < 0.2 and imap.contains(key):
                imap.delete(key)
            else:
                imap.put(key, {
                    "v": rng.randrange(0, 200),
                    "g": rng.randrange(0, 6),
                    "s": f"s-{rng.randrange(0, 40):02d}",
                    "pad": round_no,
                })
        sql = QUERIES[round_no % len(QUERIES)]
        assert on.execute(sql).result.rows == \
            off.execute(sql).result.rows, sql
    table = env.store.get_live_table("data")
    assert table.index_coherence_errors() == []


#: Slow scans widen the mid-scan window failure injection lands in —
#: and make every selective index path a clear win, so the chaos run
#: exercises index-resolved fragments under kills.
SLOW_SCANS = CostModel(scan_entry_ms=0.05,
                       vectorized_scan_entry_ms=0.05)
TIMEOUT_MS = 2_000.0


@pytest.mark.parametrize("seed", [5, 23])
def test_chaos_kills_preserve_on_off_equivalence(seed):
    env = Environment(indexed_cluster(), costs=SLOW_SCANS)
    populate(env, seed)
    services = {
        True: QueryService(env, indexes=True,
                           retry_policy=QueryRetryPolicy(
                               query_timeout_ms=TIMEOUT_MS)),
        False: QueryService(env, indexes=False,
                            retry_policy=QueryRetryPolicy(
                                query_timeout_ms=TIMEOUT_MS)),
    }
    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=2_500.0, kills=2,
                      restart_after_ms=300.0)

    pairs = []
    executions = []

    def fire(sql: str) -> None:
        try:
            pair = (services[True].submit(sql),
                    services[False].submit(sql))
        except QueryError:
            return  # "no surviving nodes" is a legal rejection
        pairs.append((sql, *pair))
        executions.extend(pair)

    for index in range(18):
        sql = QUERIES[index % len(QUERIES)]
        env.sim.schedule_at(10.0 + index * 150.0, fire, sql)

    env.run_until(2_500.0 + TIMEOUT_MS + 1_000.0)

    assert chaos.kills_executed >= 1
    assert pairs, "workload generated no query pairs"
    # assert_invariants includes index/store coherence after the
    # kill-and-restart partition reshuffles.
    assert_invariants(env, executions)
    compared = 0
    for sql, on, off in pairs:
        assert on.done and off.done
        if on.error is not None or off.error is not None:
            continue  # aborted by chaos; completion is all we require
        # The live table is quiescent (no job mutates it), so both
        # executions observed the same rows regardless of timing and
        # retries — results must be identical.
        assert on.result.columns == off.result.columns, sql
        assert on.result.rows == off.result.rows, sql
        compared += 1
    assert compared > 0, "no pair completed cleanly under chaos"


@pytest.mark.parametrize("kill_at_ms", [900, 1_234])
def test_rollback_recovery_keeps_indexes_coherent(kill_at_ms):
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(
        env, indexes=(IndexSpec("average", "total", "hash"),)
    )
    job = build_average_job(env, backend=backend, rate=2000, keys=50,
                            limit_per_instance=800,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(kill_at_ms)
    env.cluster.kill_node(2)
    env.run_until(30_000)
    assert job.all_sources_exhausted()
    assert job.metrics.recoveries == 1

    # Recovery rewrote live partitions from the rolled-back snapshot;
    # the incremental maintenance must have followed every step.
    live = env.store.get_live_table("average")
    assert live.index_coherence_errors() == []
    snap = env.store.get_snapshot_table("snapshot_average")
    for ssid in env.store.available_ssids():
        if not snap.has_snapshot(ssid):
            continue
        assert snap.index_ready(ssid)
        assert snap.index_coherence_errors(ssid) == []
    assert_invariants(env)

    # The job is quiescent: index on/off equivalence on both families.
    for sql in (
        'SELECT key, count, total FROM "average" ORDER BY key',
        'SELECT COUNT(*) AS n, SUM(total) AS t FROM "average" '
        "WHERE total > 0",
        'SELECT key, count, total FROM "snapshot_average" ORDER BY key',
    ):
        on = QueryService(env, indexes=True).execute(sql)
        off = QueryService(env, indexes=False).execute(sql)
        assert on.result.rows == off.result.rows, sql
