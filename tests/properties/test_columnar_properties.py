"""Property tests for the vectorized columnar scan path.

Vectorization is a pure execution-strategy change, so for any data and
any supported query the ``vectorized=True`` and ``vectorized=False``
results must be bit-identical — NULL-heavy, mixed-type, and LIKE-heavy
workloads alike, composed with every other ablation gate (pushdown,
indexes, sketches), on snapshot tables, and under seeded chaos kills.
Errors count too: a pushed predicate that fails must surface the same
message whichever scan path hit it.

Integer-only values keep aggregate merges exact: float SUM/AVG merge
order could otherwise introduce rounding noise that has nothing to do
with correctness.
"""

import random

import pytest

from repro import Environment
from repro.chaos import ChaosHarness, assert_invariants
from repro.config import ClusterConfig, CostModel, QueryRetryPolicy
from repro.errors import QueryError, SqlExecutionError
from repro.query import QueryService
from repro.state.live import LiveStateTable

from ..conftest import build_average_job, make_squery_backend

#: NULL-heavy, LIKE-heavy, and aggregate shapes; three-valued logic,
#: dynamic patterns, CASE, and NULL group keys all get exercised.
QUERIES = [
    'SELECT key, v FROM "data" WHERE v < 10 ORDER BY key',
    'SELECT key FROM "data" WHERE v IS NULL ORDER BY key',
    'SELECT key FROM "data" WHERE v IS NOT NULL AND v % 3 = 0 '
    "ORDER BY key",
    'SELECT COUNT(*) AS n FROM "data" WHERE v IN (1, 5, NULL)',
    'SELECT key FROM "data" WHERE s LIKE \'s-0%\' ORDER BY key',
    'SELECT key FROM "data" WHERE s LIKE \'s-_7\' ORDER BY key',
    'SELECT key FROM "data" WHERE s NOT LIKE \'s-1%\' AND v < 30 '
    "ORDER BY key",
    'SELECT key FROM "data" WHERE tag LIKE p ORDER BY key',
    'SELECT tag, COUNT(*) AS c FROM "data" GROUP BY tag ORDER BY c, tag',
    'SELECT g, SUM(v) AS s, COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi '
    'FROM "data" WHERE v IS NOT NULL GROUP BY g ORDER BY g',
    'SELECT AVG(v) AS a FROM "data" WHERE COALESCE(v, 0) > 20',
    'SELECT key, CASE WHEN v < 50 THEN \'low\' WHEN v < 150 THEN '
    "'mid' ELSE 'high' END AS band FROM \"data\" WHERE v IS NOT NULL "
    "ORDER BY key",
    'SELECT g, COUNT(*) AS c FROM "data" WHERE v BETWEEN 20 AND 120 '
    "GROUP BY g HAVING COUNT(*) > 2 ORDER BY g",
    'SELECT v FROM "data" WHERE key IN (1, 5, 9, 700)',
]

TAGS = ("alpha", "beta", "gamma", None)


def populate(env, seed, keys=600):
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    rng = random.Random(seed)
    for key in range(keys):
        imap.put(key, {
            # NULL-heavy: ~1 in 5 values is a stored NULL.
            "v": None if rng.random() < 0.2 else rng.randrange(0, 200),
            "g": rng.randrange(0, 6),
            "s": f"s-{rng.randrange(0, 40):02d}",
            "tag": TAGS[rng.randrange(0, len(TAGS))],
            "p": rng.choice(("a%", "%a", "b_ta", "%")),
            "pad": rng.randrange(0, 10**6),
        })


def assert_identical(on, off, sql):
    assert on.result.columns == off.result.columns, sql
    assert on.result.rows == off.result.rows, sql
    assert on.bytes_shipped == off.bytes_shipped, sql


@pytest.mark.parametrize("seed", [1, 17, 42])
@pytest.mark.parametrize("pushdown", [True, False])
def test_random_data_on_off_equivalence(seed, pushdown):
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed)
    on = QueryService(env, pushdown=pushdown, vectorized=True)
    off = QueryService(env, pushdown=pushdown, vectorized=False)
    for sql in QUERIES:
        assert_identical(on.execute(sql), off.execute(sql), sql)


@pytest.mark.parametrize("seed", [3, 29])
def test_composed_with_index_gate(seed):
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1,
                                    partition_count=48))
    populate(env, seed)
    env.store.create_index("data", "v", "hash")
    env.store.create_index("data", "s", "sorted")
    for indexes in (True, False):
        on = QueryService(env, indexes=indexes, vectorized=True)
        off = QueryService(env, indexes=indexes, vectorized=False)
        for sql in QUERIES:
            assert_identical(on.execute(sql), off.execute(sql),
                             (sql, indexes))


def test_composed_with_sketch_gate():
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=1))
    populate(env, seed=11)
    for sql in (
        'SELECT APPROX COUNT(*) AS n FROM "data" WHERE v = 17',
        'SELECT APPROX SUM(v) AS s FROM "data"',
    ):
        on = QueryService(env, sketches=True, vectorized=True)
        off = QueryService(env, sketches=True, vectorized=False)
        lhs, rhs = on.execute(sql), off.execute(sql)
        # Sketch answers are approximate but deterministic; the scan
        # path feeding them must not change a single byte.
        assert lhs.result.rows == rhs.result.rows, sql


def test_mixed_type_errors_identical_across_paths_and_central():
    # A poisoned row makes the pushed conjunct raise mid-scan; the
    # message must be verbatim-identical however the scan executes.
    def error_of(**service_kwargs):
        env = Environment(ClusterConfig(nodes=4,
                                        processing_workers_per_node=1))
        populate(env, seed=7)
        env.store.get_map("data").put(9999, {
            "v": "poison", "g": 0, "s": "s-00", "tag": None, "p": "%",
            "pad": 0,
        })
        service = QueryService(env, **service_kwargs)
        with pytest.raises(SqlExecutionError) as excinfo:
            service.execute('SELECT key FROM "data" WHERE v < 10')
        assert env.store.locks.held_count == 0
        return str(excinfo.value)

    on = error_of(vectorized=True)
    off = error_of(vectorized=False)
    central = error_of(pushdown=False)
    assert on == off == central
    assert "cannot compare str with int" in on


def test_snapshot_tables_equivalent_across_scan_paths():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=50,
                            limit_per_instance=800,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(30_000)
    assert job.all_sources_exhausted()
    assert env.store.available_ssids(), "no snapshot completed"

    for sql in (
        'SELECT key, count, total FROM "snapshot_average" '
        "WHERE count > 3 ORDER BY key",
        'SELECT COUNT(*) AS n, SUM(count) AS c '
        'FROM "snapshot_average" WHERE total >= 0',
        'SELECT key, count, total FROM "average" ORDER BY key',
    ):
        on = QueryService(env, vectorized=True).execute(sql)
        off = QueryService(env, vectorized=False).execute(sql)
        assert_identical(on, off, sql)
    assert_invariants(env)


#: Slow scans widen the mid-scan window failure injection lands in
#: (both scan paths, so the window is wide whichever gate is active).
SLOW_SCANS = CostModel(scan_entry_ms=0.05,
                       vectorized_scan_entry_ms=0.05)
TIMEOUT_MS = 2_000.0


@pytest.mark.parametrize("seed", [5, 23])
def test_chaos_kills_preserve_on_off_equivalence(seed):
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_SCANS,
    )
    populate(env, seed)
    services = {
        True: QueryService(env, vectorized=True,
                           retry_policy=QueryRetryPolicy(
                               query_timeout_ms=TIMEOUT_MS)),
        False: QueryService(env, vectorized=False,
                            retry_policy=QueryRetryPolicy(
                                query_timeout_ms=TIMEOUT_MS)),
    }
    chaos = ChaosHarness(env, seed=seed)
    chaos.plan_random(horizon_ms=2_500.0, kills=2,
                      restart_after_ms=300.0)

    pairs = []
    executions = []

    def fire(sql: str) -> None:
        try:
            pair = (services[True].submit(sql),
                    services[False].submit(sql))
        except QueryError:
            return  # "no surviving nodes" is a legal rejection
        pairs.append((sql, *pair))
        executions.extend(pair)

    for index in range(18):
        sql = QUERIES[index % len(QUERIES)]
        env.sim.schedule_at(10.0 + index * 150.0, fire, sql)

    env.run_until(2_500.0 + TIMEOUT_MS + 1_000.0)

    assert chaos.kills_executed >= 1
    assert pairs, "workload generated no query pairs"
    assert_invariants(env, executions)
    compared = 0
    for sql, on, off in pairs:
        assert on.done and off.done
        if on.error is not None or off.error is not None:
            continue  # aborted by chaos; completion is all we require
        # The live table is quiescent (no job mutates it), so both
        # executions observed the same rows regardless of timing and
        # retries — results must be identical.
        assert on.result.columns == off.result.columns, sql
        assert on.result.rows == off.result.rows, sql
        compared += 1
    assert compared > 0, "no pair completed cleanly under chaos"


@pytest.mark.parametrize("kill_after_ms", [2.0, 4.0])
def test_mid_scan_kill_matches_unkilled_vectorized_result(kill_after_ms):
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=1),
        costs=SLOW_SCANS,
    )
    populate(env, seed=9)
    service = QueryService(env, vectorized=True)
    sql = ('SELECT g, SUM(v) AS s, COUNT(*) AS c FROM "data" '
           "WHERE v IS NOT NULL GROUP BY g ORDER BY g")
    expected = service.execute(sql).result.rows

    execution = service.submit(sql)
    env.run_for(kill_after_ms)  # planning done, batch scans in flight
    assert not execution.done
    victim = next(
        node for node in env.cluster.surviving_node_ids()
        if node != execution.entry_node
    )
    env.cluster.fail_node(victim)
    env.run_for(2_000)
    assert execution.done
    assert execution.error is None
    assert execution.retries == 1
    # Attempt tokens discarded the dead node's shipped partials, so
    # no batch was counted twice across the retry.
    assert execution.result.rows == expected
