"""Tests for the NEXMark workload and query-6 job."""

from repro import ClusterConfig, Environment
from repro.query import QueryService
from repro.workloads.nexmark import (
    AuctionClosedSource,
    BidSource,
    PersonSource,
    build_query6_job,
    make_q6_operator,
)
from repro.workloads.nexmark.model import SellerPrices

from ..conftest import make_squery_backend


def test_sources_are_deterministic():
    source = AuctionClosedSource(1000.0, sellers=100)
    assert source.generate(0, 5) == source.generate(0, 5)
    assert source.generate(0, 5) != source.generate(0, 6)
    assert source.generate(1, 5) != source.generate(0, 5)


def test_seller_ids_within_universe():
    source = AuctionClosedSource(1000.0, sellers=50)
    for seq in range(500):
        key, event = source.generate(0, seq)
        assert 0 <= key < 50
        assert event.seller_id == key
        assert event.final_price > 0


def test_limit_exhausts_source():
    source = AuctionClosedSource(1000.0, sellers=10, limit_per_instance=3)
    assert source.generate(0, 2) is not None
    assert source.generate(0, 3) is None


def test_rate_split_across_instances():
    source = AuctionClosedSource(1000.0)
    assert source.rate_per_instance(4) == 250.0


def test_bid_and_person_sources_generate():
    bids = BidSource(100.0, auctions=10)
    key, bid = bids.generate(0, 1)
    assert key == bid.auction_id
    people = PersonSource(100.0, population=10)
    key, person = people.generate(0, 1)
    assert key == person.person_id
    assert person.name.startswith("person-")


def test_seller_prices_window():
    state = SellerPrices()
    for price in range(1, 15):
        state = state.with_price(float(price), window=10)
    assert len(state.prices) == 10
    assert state.prices == tuple(float(p) for p in range(5, 15))
    assert state.average == sum(range(5, 15)) / 10
    assert state.closed_auctions == 14


def test_q6_operator_keeps_last_10_average():
    from repro.dataflow.operators import Emitter
    from repro.dataflow.records import Record
    from repro.workloads.nexmark.model import AuctionClosed

    operator = make_q6_operator()
    out = Emitter()
    for i in range(12):
        event = AuctionClosed(auction_id=i, seller_id=1,
                              final_price=float(i))
        operator.process(Record(1, event, 0.0), out)
    state = operator.state.get(1)
    assert state.prices == tuple(float(i) for i in range(2, 12))
    outputs = out.drain()
    assert outputs[-1].value == sum(range(2, 12)) / 10


def test_query6_job_end_to_end():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_query6_job(env, backend, rate_per_s=2000, sellers=50,
                           checkpoint_interval_ms=500, parallelism=3)
    job.start()
    env.run_until(2_300)
    state = job.operator_state("q6")
    assert 0 < len(state) <= 50
    service = QueryService(env)
    live = service.execute(
        'SELECT COUNT(*) AS n, AVG(average) AS price FROM "q6"'
    ).result.rows[0]
    assert live["n"] == len(state)
    assert live["price"] > 0
    snap = service.execute(
        'SELECT COUNT(*) AS n FROM "snapshot_q6"'
    ).result.rows[0]
    assert 0 < snap["n"] <= live["n"]


def test_query6_state_bounded_by_sellers():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    job = build_query6_job(env, rate_per_s=5000, sellers=20,
                           parallelism=3)
    job.start()
    env.run_until(5_000)
    assert len(job.operator_state("q6")) == 20
