"""Tests for the additional NEXMark pipelines (queries 1, 2, windows)."""

import pytest

from repro import ClusterConfig, Environment
from repro.query import QueryService
from repro.workloads.nexmark import (
    Bid,
    build_query1_job,
    build_query2_job,
    build_windowed_price_job,
    convert_bid,
)

from ..conftest import make_squery_backend


def fresh_env():
    return Environment(ClusterConfig(nodes=3,
                                     processing_workers_per_node=2))


def test_convert_bid_applies_rate():
    bid = Bid(auction_id=1, bidder_id=2, price=100.0)
    converted = convert_bid(bid)
    assert converted.price == pytest.approx(90.8)
    assert converted.auction_id == 1
    assert converted.bidder_id == 2


def test_query1_job_converts_every_bid():
    env = fresh_env()
    job = build_query1_job(env, rate_per_s=3000, parallelism=3)
    job.start()
    env.run_until(2_000)
    sinks = job.instances_of("out")
    assert sum(i.operator.received for i in sinks) > 1000
    assert job.coordinator.completed >= 1  # stateless jobs checkpoint too


def test_query2_job_filters_by_modulo():
    env = fresh_env()
    received = []

    job = build_query2_job(env, rate_per_s=5000, auctions=1000,
                           modulo=10, parallelism=3)
    # Wrap the sink operators to capture outputs.
    for instance in job.instances_of("out"):
        instance.operator._callback = lambda r: received.append(r.value)
    job.start()
    env.run_until(2_000)
    assert received
    assert all(bid.auction_id % 10 == 0 for bid in received)


def test_windowed_price_job_state_queryable():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_windowed_price_job(env, backend, rate_per_s=4000,
                                   auctions=50, window_ms=500,
                                   parallelism=3)
    job.start()
    env.run_until(2_300)
    service = QueryService(env)
    live = service.execute(
        'SELECT COUNT(*) AS n, MAX(count) AS deepest FROM "bidwindow"'
    ).result.rows[0]
    assert 0 < live["n"] <= 50
    assert live["deepest"] >= 1
    # Closed windows were emitted downstream.
    assert job.sink_received("out") > 0


def test_windowed_job_snapshot_reflects_open_windows():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_windowed_price_job(env, backend, rate_per_s=4000,
                                   auctions=20, window_ms=400,
                                   parallelism=3)
    job.start()
    env.run_until(2_300)
    service = QueryService(env)
    snap = service.execute(
        'SELECT COUNT(*) AS n FROM "snapshot_bidwindow"'
    ).result.rows[0]
    assert 0 < snap["n"] <= 20
