"""Tests for the Q-commerce workload generators and job."""

from repro import ClusterConfig, Environment
from repro.workloads.qcommerce import (
    ORDER_STATES,
    OrderInfoSource,
    OrderStatusSource,
    RiderLocationSource,
    build_qcommerce_job,
    order_info_for,
    order_status_for,
    rider_location_for,
)

from ..conftest import make_squery_backend


def test_key_ownership_partitioned_per_instance():
    source = OrderStatusSource(1000.0, universe=100, parallelism=4)
    owned = {i: set() for i in range(4)}
    for instance in range(4):
        for seq in range(100):
            key, _ = source.generate(instance, seq)
            owned[instance].add(key)
    all_keys = set()
    for instance, keys in owned.items():
        assert all(key % 4 == instance for key in keys)
        all_keys |= keys
    assert all_keys == set(range(100))


def test_rounds_advance_state_machine_in_order():
    source = OrderStatusSource(1000.0, universe=8, parallelism=1)
    key_states = {}
    for seq in range(8 * len(ORDER_STATES)):
        key, status = source.generate(0, seq)
        key_states.setdefault(key, []).append(status.orderState)
    for states in key_states.values():
        # Each order walks the machine in order, starting from its own
        # phase offset (staggered lifecycles).
        start = ORDER_STATES.index(states[0])
        expected = [
            ORDER_STATES[(start + step) % len(ORDER_STATES)]
            for step in range(len(states))
        ]
        assert states == expected
    # Phases differ across orders, so the population spreads over the
    # state machine instead of moving in lockstep.
    assert len({states[0] for states in key_states.values()}) > 1


def test_late_fraction_controls_deadlines():
    source = OrderStatusSource(1000.0, universe=100, parallelism=1,
                               late_fraction=0.5)
    late = sum(
        1 for seq in range(1000)
        if source.generate(0, seq)[1].lateTimestamp < 0
    )
    assert 400 < late < 600
    never_late = OrderStatusSource(1000.0, universe=100, parallelism=1,
                                   late_fraction=0.0)
    assert all(
        never_late.generate(0, seq)[1].lateTimestamp > 0
        for seq in range(100)
    )


def test_more_instances_than_keys_idle_gracefully():
    source = OrderInfoSource(1000.0, universe=2, parallelism=4)
    assert source.generate(3, 0) is None
    assert source.generate(0, 0) is not None
    assert source.rate_per_instance(4) == 500.0  # split over active two


def test_order_info_deterministic_per_order():
    assert order_info_for(5) == order_info_for(5)
    info = order_info_for(5)
    assert info.deliveryZone.startswith("zone-")
    assert info.vendorCategory


def test_order_status_builder():
    status = order_status_for(1, 3, late=True)
    assert status.orderState == ORDER_STATES[3]
    assert status.lateTimestamp < 0


def test_rider_location_builder():
    loc = rider_location_for(2, 7)
    assert 52.0 <= loc.latitude <= 53.0
    assert 4.3 <= loc.longitude <= 5.3
    assert loc.updatedTimestamp == 7.0


def test_randomized_mode_remains_deterministic():
    source = RiderLocationSource(1000.0, universe=50, parallelism=2,
                                 randomized=True)
    assert source.generate(0, 9) == source.generate(0, 9)
    keys = {source.generate(0, seq)[0] for seq in range(200)}
    assert all(key % 2 == 0 for key in keys)


def test_randomized_deltas_overlap():
    """Randomised key selection revisits keys across rounds (unlike the
    cyclic walk), which is what builds overlapping incremental deltas."""
    source = OrderStatusSource(1000.0, universe=100, parallelism=1,
                               randomized=True)
    first_round = [source.generate(0, seq)[0] for seq in range(50)]
    assert len(set(first_round)) < 50  # repeats within a half round


def test_qcommerce_job_builds_three_tables():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_qcommerce_job(env, backend, orders=60, riders=10,
                              events_per_s=2000,
                              checkpoint_interval_ms=500, parallelism=3)
    job.start()
    env.run_until(2_300)
    for table in ("orderinfo", "orderstate", "riderlocation"):
        assert env.store.has_live_table(table)
        assert env.store.has_snapshot_table(f"snapshot_{table}")
    assert len(job.operator_state("orderinfo")) > 0
    assert len(job.operator_state("orderstate")) > 0
    assert len(job.operator_state("riderlocation")) > 0


def test_qcommerce_state_objects_match_builders():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    job = build_qcommerce_job(env, orders=30, riders=10,
                              events_per_s=3000, parallelism=3)
    job.start()
    env.run_until(3_000)
    info_state = job.operator_state("orderinfo")
    for order_id, info in info_state.items():
        assert info == order_info_for(order_id)
