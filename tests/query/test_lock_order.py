"""Regression tests for canonical lock-acquisition order.

Repeatable-read shards used to lock keys in row-shipment order; two
concurrent queries whose shards landed in different orders could each
hold some keys while queued FIFO behind the other's — a hold-and-wait
cycle.  ``_lock_rows`` now issues requests in sorted key order.
"""

import pytest

from repro import Environment
from repro.config import ClusterConfig
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend


@pytest.fixture
def running_env():
    env = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2)
    )
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, keys=40)
    job.start()
    env.run_until(1_500)
    return env


def test_lock_rows_acquires_in_sorted_key_order(running_env, monkeypatch):
    env = running_env
    batches = []
    original = QueryService._lock_rows

    def spying_lock_rows(self, execution, table_name, rows, then):
        locks = self.store.locks
        recorded = []
        orig_acquire = locks.acquire

        def recording_acquire(key, owner, granted=None):
            recorded.append(key)
            return orig_acquire(key, owner, granted=granted)

        locks.acquire = recording_acquire
        try:
            original(self, execution, table_name, rows, then)
        finally:
            locks.acquire = orig_acquire
        batches.append(recorded)

    monkeypatch.setattr(QueryService, "_lock_rows", spying_lock_rows)
    service = QueryService(env, repeatable_read=True)
    execution = service.execute('SELECT COUNT(*) AS n FROM "average"')
    assert execution.error is None
    assert batches and any(len(batch) > 1 for batch in batches)
    for batch in batches:
        assert batch == sorted(batch, key=repr)
    # With 40 keys, repr order differs from arrival (numeric) order —
    # at least one batch must have been genuinely reordered.
    assert any(
        [key[1] for key in batch]
        != sorted(key[1] for key in batch)
        for batch in batches if len(batch) > 1
    )


def test_concurrent_repeatable_read_scans_do_not_deadlock(running_env):
    env = running_env
    service = QueryService(env, repeatable_read=True)
    executions = [
        service.submit('SELECT COUNT(*) AS n FROM "average"')
        for _ in range(4)
    ]
    env.run_for(5_000)
    assert all(e.done and e.error is None for e in executions)
    assert env.sanitizers is None or env.sanitizers.lockdep_violations == 0
