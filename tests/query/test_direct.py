"""Tests for the direct object interface."""

import pytest

from repro.errors import QueryError, SnapshotNotFoundError
from repro.query import DirectObjectInterface

from ..conftest import build_average_job, make_squery_backend


@pytest.fixture
def running(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_250)
    return job, backend


def test_live_get_returns_state_objects(env, running):
    doi = DirectObjectInterface(env)
    query = doi.submit_get("average", [0, 1, 2])
    env.run_for(100)
    assert query.done
    assert set(query.values) == {0, 1, 2}
    assert all(v.count > 0 for v in query.values.values())


def test_missing_keys_omitted(env, running):
    doi = DirectObjectInterface(env)
    query = doi.submit_get("average", [0, 12345])
    env.run_for(100)
    assert set(query.values) == {0}


def test_snapshot_get_explicit_id(env, running):
    doi = DirectObjectInterface(env)
    ssid = env.store.committed_ssid
    query = doi.submit_get("snapshot_average", [0, 1], snapshot_id=ssid)
    env.run_for(100)
    assert set(query.values) == {0, 1}


def test_snapshot_get_latest_sentinel(env, running):
    doi = DirectObjectInterface(env)
    query = doi.submit_get("snapshot_average", [0], snapshot_id=-1)
    env.run_for(100)
    assert query.error is None
    assert 0 in query.values


def test_snapshot_get_before_commit_errors(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    job.start()
    env.run_until(50)
    doi = DirectObjectInterface(env)
    query = doi.submit_get("snapshot_average", [0], snapshot_id=-1)
    env.run_for(100)
    assert isinstance(query.error, SnapshotNotFoundError)


def test_latency_grows_with_key_count(env, running):
    doi = DirectObjectInterface(env)
    one = doi.submit_get("average", [0])
    many = doi.submit_get("average", list(range(20)))
    env.run_for(200)
    assert many.latency_ms > one.latency_ms


def test_latency_sublinear_in_keys(env, running):
    """Batching economies of scale: 16 keys cost less than 16x one key
    (the mechanism behind Fig. 14's power law)."""
    doi = DirectObjectInterface(env)
    one = doi.submit_get("average", [0])
    sixteen = doi.submit_get("average", list(range(16)))
    env.run_for(200)
    assert sixteen.latency_ms < 16 * one.latency_ms


def test_latency_raises_while_running(env, running):
    doi = DirectObjectInterface(env)
    query = doi.submit_get("average", [0])
    with pytest.raises(QueryError):
        _ = query.latency_ms


def test_on_done_callback(env, running):
    doi = DirectObjectInterface(env)
    seen = []
    doi.submit_get("average", [0], on_done=seen.append)
    env.run_for(100)
    assert len(seen) == 1
    assert seen[0].done
