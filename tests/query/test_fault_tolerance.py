"""Tests for the failure-aware query path.

A node death during a query must never hang the handle: lost scan
shards are rescheduled onto survivors within the retry budget, the
death of the entry node aborts immediately, and a watchdog timeout
backstops everything else.
"""

import pytest

from repro import Environment
from repro.config import ClusterConfig, CostModel, QueryRetryPolicy
from repro.errors import (
    ConfigurationError,
    QueryAbortedError,
    QueryError,
    QueryTimeoutError,
)
from repro.query import QueryService
from repro.query.service import QueryExecution

from ..conftest import build_average_job, make_squery_backend

#: Slow per-entry scans: a 250-key table takes several virtual ms per
#: node, giving failure injection a wide mid-scan window to land in.
#: Both scan paths are slowed so the window holds under either gate.
SLOW_SCANS = CostModel(scan_entry_ms=0.05,
                       vectorized_scan_entry_ms=0.05)


@pytest.fixture
def slow_env():
    return Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        costs=SLOW_SCANS,
    )


@pytest.fixture
def running_job(slow_env):
    backend = make_squery_backend(slow_env)
    job = build_average_job(slow_env, backend=backend, rate=4000, keys=250,
                            checkpoint_interval_ms=500)
    job.start()
    slow_env.run_until(2_250)  # several checkpoints committed
    return job


def non_entry_survivor(env, execution: QueryExecution) -> int:
    return next(
        n for n in env.cluster.surviving_node_ids()
        if n != execution.entry_node
    )


def test_mid_scan_kill_reschedules_and_completes(slow_env, running_job):
    service = QueryService(slow_env)
    execution = service.submit('SELECT COUNT(*) AS n FROM "average"')
    slow_env.run_for(2.0)  # past planning, scans now in flight
    assert not execution.done
    victim = non_entry_survivor(slow_env, execution)
    slow_env.cluster.fail_node(victim)
    slow_env.run_for(1_000)
    assert execution.done
    assert execution.error is None
    assert execution.retries == 1
    assert service.query_retries == 1
    assert service.query_aborts == 0
    assert service.inflight_queries == 0


def test_snapshot_query_identical_across_kill_and_recovery(
        slow_env, running_job):
    from repro.chaos import snapshot_fingerprint

    service = QueryService(slow_env)
    ssid = slow_env.store.committed_ssid
    sql = f'SELECT key, count, total FROM "snapshot_average" ' \
          f"WHERE ssid = {ssid}"
    before = service.execute(sql)

    execution = service.submit(sql)
    slow_env.run_for(2.0)
    victim = non_entry_survivor(slow_env, execution)
    slow_env.cluster.fail_node(victim)
    slow_env.run_for(1_000)
    assert execution.error is None
    assert execution.retries == 1

    slow_env.cluster.restart_node(victim)
    after = service.execute(sql)

    fp = snapshot_fingerprint(before.result)
    assert snapshot_fingerprint(execution.result) == fp
    assert snapshot_fingerprint(after.result) == fp


def test_entry_node_death_aborts_immediately(slow_env, running_job):
    service = QueryService(slow_env)
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    slow_env.run_for(2.0)
    submitted_at = slow_env.now
    slow_env.cluster.fail_node(execution.entry_node)
    assert execution.done  # synchronously with the failure event
    assert isinstance(execution.error, QueryAbortedError)
    assert execution.completed_ms == submitted_at
    assert service.query_aborts == 1
    assert service.inflight_queries == 0


def test_retry_budget_exhaustion_aborts(slow_env, running_job):
    service = QueryService(
        slow_env, retry_policy=QueryRetryPolicy(max_retries=0)
    )
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    slow_env.run_for(2.0)
    slow_env.cluster.fail_node(non_entry_survivor(slow_env, execution))
    slow_env.run_for(1_000)
    assert isinstance(execution.error, QueryAbortedError)
    assert execution.retries == 0
    assert service.query_retries == 0
    assert service.query_aborts == 1


def test_second_failure_exhausts_single_retry(slow_env, running_job):
    service = QueryService(
        slow_env, retry_policy=QueryRetryPolicy(max_retries=1,
                                                retry_backoff_ms=5.0)
    )
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    slow_env.run_for(2.0)
    slow_env.cluster.fail_node(non_entry_survivor(slow_env, execution))
    slow_env.run_for(10.0)  # re-dispatched onto survivors by now
    if not execution.done:
        slow_env.cluster.fail_node(
            non_entry_survivor(slow_env, execution)
        )
    slow_env.run_for(1_000)
    assert execution.done
    # Either the retry completed before the second kill or the second
    # kill exhausted the budget; both end in a terminal state.
    assert execution.error is None or isinstance(
        execution.error, QueryAbortedError
    )
    assert service.inflight_queries == 0


def test_watchdog_timeout_bounds_every_query(slow_env, running_job):
    service = QueryService(
        slow_env, retry_policy=QueryRetryPolicy(query_timeout_ms=0.5)
    )
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    slow_env.run_for(10.0)
    assert isinstance(execution.error, QueryTimeoutError)
    assert execution.latency_ms == pytest.approx(0.5)
    assert service.query_timeouts == 1
    assert service.query_aborts == 1
    assert service.inflight_queries == 0


def test_no_surviving_nodes_raises_query_error(slow_env, running_job):
    for node in slow_env.cluster.nodes:
        node.alive = False
    service = QueryService(slow_env)
    with pytest.raises(QueryError, match="no surviving nodes"):
        service.submit('SELECT COUNT(*) FROM "average"')


def test_live_query_spanning_rollback_is_flagged(slow_env, running_job):
    service = QueryService(slow_env)
    live = service.submit('SELECT COUNT(*) FROM "average"')
    ssid = slow_env.store.committed_ssid
    snap = service.submit(
        f'SELECT COUNT(*) FROM "snapshot_average" WHERE ssid = {ssid}'
    )
    slow_env.run_for(2.0)
    slow_env.cluster.fail_node(non_entry_survivor(slow_env, live))
    slow_env.run_for(1_000)
    assert live.error is None
    assert live.observed_rollback  # fuzzy view spans the epoch boundary
    if snap.error is None:
        assert not snap.observed_rollback  # snapshots are immune


def test_query_after_restart_uses_rejoined_node(slow_env, running_job):
    cluster = slow_env.cluster
    cluster.fail_node(2)
    slow_env.run_for(500)
    cluster.restart_node(2)
    service = QueryService(slow_env)
    # Entry rotation cycles over all alive nodes, including node 2.
    entries = {service.submit('SELECT 1 FROM "average"').entry_node
               for _ in range(3)}
    assert entries == {0, 1, 2}
    slow_env.run_for(1_000)
    assert service.inflight_queries == 0


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        QueryRetryPolicy(max_retries=-1).validate()
    with pytest.raises(ConfigurationError):
        QueryRetryPolicy(retry_backoff_ms=-0.1).validate()
    with pytest.raises(ConfigurationError):
        QueryRetryPolicy(query_timeout_ms=0).validate()


# -- scan billing (regression: final partial chunk was billed in full) ----


def test_scan_bills_exactly_the_entries_scanned(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=250)
    job.start()
    env.run_until(1_500)
    service = QueryService(env)
    execution = service.execute('SELECT COUNT(*) AS n FROM "average"')
    assert execution.result.rows[0]["n"] == 250
    # chunk size 256 vs shards of ~83 entries: every shard ends in a
    # partial chunk, which must be billed pro rata, not rounded up.
    assert execution.entries_billed == execution.entries_scanned == 250


# -- lock hygiene (repeatable read) ---------------------------------------


def test_repeatable_read_point_lookup_releases_locks(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=20)
    job.start()
    env.run_until(1_500)
    service = QueryService(env, repeatable_read=True)
    execution = service.execute('SELECT * FROM "average" WHERE key = 1')
    assert execution.error is None
    assert len(execution.result) == 1
    assert env.store.locks.held_count == 0
    assert env.store.locks.waiting_count == 0


def test_contended_lock_blocks_instead_of_being_dropped(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=20,
                            limit_per_instance=500)
    job.start()
    env.run_until(3_000)  # sources exhausted: no writer lock traffic
    locks = env.store.locks
    contentions_before = locks.contentions
    assert locks.try_acquire(("average", 1), "external-holder")

    service = QueryService(env, repeatable_read=True)
    # lint: allow(blocking-under-lock) the lock is held by a phantom
    # external owner on purpose: this test exists to drive the query
    # into the contended FIFO wait path.
    execution = service.submit('SELECT * FROM "average" WHERE key = 1')
    env.run_for(1_000)
    # The query queues FIFO behind the holder instead of skipping the
    # lock (the old behaviour silently dropped contended keys).
    assert not execution.done
    assert locks.contentions == contentions_before + 1
    assert locks.waiting_count == 1

    locks.release(("average", 1), "external-holder")
    env.run_for(1_000)
    assert execution.done
    assert execution.error is None
    assert locks.held_count == 0
    assert locks.waiting_count == 0


def test_aborted_query_returns_contended_lock(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=20,
                            limit_per_instance=500)
    job.start()
    env.run_until(3_000)
    locks = env.store.locks
    assert locks.try_acquire(("average", 1), "external-holder")

    service = QueryService(
        env, repeatable_read=True,
        retry_policy=QueryRetryPolicy(query_timeout_ms=50.0),
    )
    # lint: allow(blocking-under-lock) phantom external holder again:
    # the point is to time the query out while it waits on the lock.
    execution = service.submit('SELECT * FROM "average" WHERE key = 1')
    env.run_for(1_000)  # watchdog fires while still waiting on the lock
    assert isinstance(execution.error, QueryTimeoutError)

    # The late grant hands the lock to the dead query, which gives it
    # straight back: nothing leaks, no waiters strand.
    locks.release(("average", 1), "external-holder")
    assert locks.held_count == 0
    assert locks.waiting_count == 0


def test_two_repeatable_read_point_queries_serialise(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=20)
    job.start()
    env.run_until(1_500)
    service = QueryService(env, repeatable_read=True)
    first = service.submit('SELECT * FROM "average" WHERE key = 1')
    second = service.submit('SELECT * FROM "average" WHERE key = 1')
    env.run_for(2_000)
    assert first.error is None and second.error is None
    assert env.store.locks.held_count == 0
    assert env.store.locks.waiting_count == 0


# -- network channel hygiene ----------------------------------------------


def test_query_channels_close_at_completion(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000, keys=40)
    job.start()
    env.run_until(1_500)
    service = QueryService(env)
    service.execute('SELECT COUNT(*) FROM "average"')  # warm-up
    baseline = env.cluster.network.open_channels
    for _ in range(10):
        service.execute('SELECT COUNT(*) FROM "average"')
    # Every query closed its per-shard result channels on completion;
    # the floor table does not grow with the number of queries ever run.
    assert env.cluster.network.open_channels <= baseline
