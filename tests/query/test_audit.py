"""Tests for the auditing / subject-access API (§III)."""

import pytest

from repro import ClusterConfig, Environment
from repro.errors import QueryError
from repro.query import StateAuditor
from repro.workloads.qcommerce import build_qcommerce_job

from ..conftest import build_average_job, make_squery_backend


@pytest.fixture
def qcommerce_env():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env, retained_snapshots=3)
    job = build_qcommerce_job(env, backend, orders=60, riders=12,
                              events_per_s=4000,
                              checkpoint_interval_ms=500, parallelism=3)
    job.start()
    env.run_until(2_700)
    return env, backend, job


def test_subject_access_covers_all_operators(qcommerce_env):
    env, backend, job = qcommerce_env
    auditor = StateAuditor(env)
    order_id = 7
    report = auditor.submit_subject_access(order_id)
    env.run_for(200)
    assert report.done
    # The order appears in both order operators...
    holding = report.tables_holding_data()
    assert "orderinfo" in holding
    assert "orderstate" in holding
    # ...with its live value and historical snapshot versions.
    info = report.tables["orderinfo"]
    assert info.live_value is not None
    assert len(info.versions) >= 2
    assert set(info.versions) <= set(env.store.available_ssids())


def test_subject_access_unknown_key_reports_absence(qcommerce_env):
    env, *_ = qcommerce_env
    auditor = StateAuditor(env)
    report = auditor.submit_subject_access(999_999)
    env.run_for(200)
    assert report.done
    assert report.tables_holding_data() == []


def test_subject_access_latency_positive(qcommerce_env):
    env, *_ = qcommerce_env
    auditor = StateAuditor(env)
    report = auditor.submit_subject_access(1)
    with pytest.raises(QueryError):
        _ = report.latency_ms
    env.run_for(200)
    assert report.latency_ms > 0


def test_history_shows_state_evolution(env):
    backend = make_squery_backend(env, retained_snapshots=4)
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(3_000)
    auditor = StateAuditor(env)
    report = auditor.submit_history("average", 3)
    env.run_for(200)
    audit = report.tables["average"]
    assert len(audit.versions) == 4
    counts = [audit.versions[s].count
              for s in sorted(audit.versions)]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
    assert audit.live_value.count >= counts[-1]


def test_history_accepts_snapshot_prefixed_name(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_200)
    auditor = StateAuditor(env)
    report = auditor.submit_history("snapshot_average", 0)
    env.run_for(200)
    assert report.done


def test_history_unknown_table_rejected(env):
    auditor = StateAuditor(env)
    with pytest.raises(QueryError):
        auditor.submit_history("nope", 1)


def test_on_done_callback(qcommerce_env):
    env, *_ = qcommerce_env
    auditor = StateAuditor(env)
    seen = []
    auditor.submit_subject_access(1, on_done=seen.append)
    env.run_for(200)
    assert len(seen) == 1
    assert auditor.audits_executed >= 1


def test_audit_pool_keys_are_monotonic_not_recycled(env):
    """Pool jobs are keyed by a monotonic audit id: ``id(report)``
    would let CPython recycle the address of a dead report into a new
    one, colliding two unrelated audits on the per-key FIFO."""
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000,
                            limit_per_instance=300)
    job.start()
    env.run_until(1_500)
    auditor = StateAuditor(env)
    seen = []
    for _ in range(5):
        report = auditor.submit_subject_access(3)
        seen.append(report.aid)
        env.run_for(200)
        assert report.done
        del report  # free the address: id() reuse would now be possible
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)
