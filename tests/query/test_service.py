"""Tests for the SQL query service."""

import pytest

from repro.errors import (
    NoCommittedSnapshotError,
    QueryError,
    SnapshotNotFoundError,
)
from repro.query import QueryService
from repro.state import IsolationLevel

from ..conftest import build_average_job, make_squery_backend


@pytest.fixture
def running_job(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_250)  # several checkpoints committed
    return job, backend


def test_live_query_counts_current_state(env, running_job):
    job, _ = running_job
    service = QueryService(env)
    result = service.execute('SELECT COUNT(*) AS n FROM "average"')
    assert result.result.rows[0]["n"] == 20
    assert result.isolation is IsolationLevel.READ_UNCOMMITTED
    assert result.snapshot_id is None


def test_snapshot_query_uses_latest_committed(env, running_job):
    job, _ = running_job
    service = QueryService(env)
    execution = service.execute(
        'SELECT COUNT(*) AS n FROM "snapshot_average"'
    )
    assert execution.snapshot_id == env.store.committed_ssid
    assert execution.isolation is IsolationLevel.SERIALIZABLE
    assert execution.result.rows[0]["n"] == 20


def test_snapshot_query_with_explicit_id(env, running_job):
    service = QueryService(env)
    older = env.store.available_ssids()[0]
    execution = service.execute(
        'SELECT COUNT(*) FROM "snapshot_average"', snapshot_id=older
    )
    assert execution.snapshot_id == older


def test_ssid_filter_in_where_clause_selects_version(env, running_job):
    """The paper's Fig. 4 query style: WHERE ssid=N pins the version."""
    service = QueryService(env)
    older = env.store.available_ssids()[0]
    execution = service.execute(
        f'SELECT COUNT(*) AS n, MAX(ssid) AS s FROM "snapshot_average" '
        f"WHERE ssid={older}"
    )
    assert execution.snapshot_id == older
    assert execution.result.rows[0]["s"] == older


def test_unavailable_snapshot_id_fails(env, running_job):
    service = QueryService(env)
    execution = service.submit('SELECT COUNT(*) FROM "snapshot_average"',
                               snapshot_id=999)
    env.run_for(1_000)
    assert isinstance(execution.error, SnapshotNotFoundError)


def test_snapshot_query_before_first_checkpoint_fails(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    job.start()
    env.run_until(100)  # nothing committed yet
    service = QueryService(env)
    execution = service.submit('SELECT COUNT(*) FROM "snapshot_average"')
    env.run_for(500)
    assert isinstance(execution.error, NoCommittedSnapshotError)


def test_unknown_table_rejected_at_submit(env, running_job):
    service = QueryService(env)
    with pytest.raises(QueryError):
        service.submit("SELECT * FROM nope")


def test_query_latency_positive_and_ordered(env, running_job):
    service = QueryService(env)
    execution = service.execute('SELECT COUNT(*) FROM "average"')
    assert execution.latency_ms > 0
    assert execution.completed_ms > execution.submitted_ms


def test_latency_unavailable_while_running(env, running_job):
    service = QueryService(env)
    execution = service.submit('SELECT COUNT(*) FROM "average"')
    with pytest.raises(QueryError):
        _ = execution.latency_ms


def test_join_live_with_snapshot(env, running_job):
    service = QueryService(env)
    execution = service.execute(
        'SELECT COUNT(*) AS n FROM "average" '
        'JOIN "snapshot_average" USING(partitionKey)'
    )
    assert execution.result.rows[0]["n"] == 20


def test_group_by_aggregation_over_state(env, running_job):
    service = QueryService(env)
    execution = service.execute(
        'SELECT partitionKey % 2 AS bucket, SUM(count) AS c '
        'FROM "average" GROUP BY partitionKey % 2 ORDER BY bucket'
    )
    assert len(execution.result) == 2


def test_snapshot_results_stable_while_live_moves(env, running_job):
    """Serialisable snapshot reads: the same snapshot id returns the
    same result even after more processing (Fig. 6)."""
    service = QueryService(env)
    ssid = env.store.committed_ssid
    first = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=ssid
    ).result.rows[0]["s"]
    env.run_for(400)  # more records processed, same snapshot targeted
    second = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=ssid
    ).result.rows[0]["s"]
    assert first == second


def test_live_results_advance_with_processing(env, running_job):
    service = QueryService(env)
    first = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    env.run_for(500)
    second = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    assert second > first


def test_materialize_false_models_costs_without_rows(env, running_job):
    # Pushdown off: load mode models the legacy ship-everything costs,
    # so the materialised run must match them exactly.  (With pushdown
    # on, COUNT(*) ships one partial group per node instead.)
    service = QueryService(env, pushdown=False)
    real = service.execute('SELECT COUNT(*) FROM "snapshot_average"')
    load = service.submit('SELECT COUNT(*) FROM "snapshot_average"',
                          materialize=False)
    env.run_for(1_000)
    assert load.done
    assert load.result is None
    assert load.error is None
    assert load.rows_shipped == real.rows_shipped
    assert load.entries_scanned == real.entries_scanned


def test_queries_round_robin_entry_nodes(env, running_job):
    service = QueryService(env)
    before = [node.query_pool.jobs_served for node in env.cluster.nodes]
    for _ in range(6):
        service.execute('SELECT COUNT(*) FROM "average"')
    after = [node.query_pool.jobs_served for node in env.cluster.nodes]
    assert all(b > a for a, b in zip(before, after))


def test_sql_error_surfaces_on_handle(env, running_job):
    service = QueryService(env)
    execution = service.submit('SELECT nope FROM "average"')
    env.run_for(1_000)
    assert execution.done
    assert execution.error is not None


def test_repeatable_read_releases_locks_at_end(env, running_job):
    service = QueryService(env, repeatable_read=True)
    execution = service.execute('SELECT COUNT(*) FROM "average"')
    assert execution.isolation is IsolationLevel.REPEATABLE_READ
    assert not env.store.locks.is_locked(("average", 0))


def test_concurrent_queries_complete(env, running_job):
    service = QueryService(env)
    executions = [
        service.submit('SELECT COUNT(*) AS n FROM "snapshot_average"')
        for _ in range(10)
    ]
    env.run_for(2_000)
    assert all(e.done and e.error is None for e in executions)
    assert service.queries_executed >= 10


def test_all_versions_query_tags_rows_with_ssid(env, running_job):
    """Multi-version result sets (§VI-A): rows from every retained
    version, each carrying its snapshot id."""
    service = QueryService(env)
    execution = service.submit(
        'SELECT ssid, COUNT(*) AS n FROM "snapshot_average" '
        "GROUP BY ssid ORDER BY ssid",
        all_versions=True,
    )
    env.run_for(1_000)
    assert execution.error is None
    rows = execution.result.rows
    # Retention may rotate after the query; compare against the version
    # set the query resolved at execution time.
    assert execution.snapshot_versions is not None
    assert len(execution.snapshot_versions) == 2  # keep-2 retention
    assert [row["ssid"] for row in rows] == execution.snapshot_versions
    assert all(row["n"] == 20 for row in rows)


def test_all_versions_before_commit_fails(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    job.start()
    env.run_until(50)
    service = QueryService(env)
    execution = service.submit(
        'SELECT COUNT(*) FROM "snapshot_average"', all_versions=True
    )
    env.run_for(500)
    assert isinstance(execution.error, NoCommittedSnapshotError)


def test_all_versions_scans_cost_more_than_single(env, running_job):
    service = QueryService(env)
    single = service.submit('SELECT COUNT(*) FROM "snapshot_average"',
                            materialize=False)
    multi = service.submit('SELECT COUNT(*) FROM "snapshot_average"',
                           materialize=False, all_versions=True)
    env.run_for(1_000)
    assert multi.entries_scanned > single.entries_scanned
    assert multi.rows_shipped > single.rows_shipped


def test_all_versions_difference_between_snapshots(env, running_job):
    """The §III debugging use case: see how state mutates over time by
    comparing versions inside one query."""
    service = QueryService(env)
    execution = service.submit(
        'SELECT ssid, SUM(count) AS s FROM "snapshot_average" '
        "GROUP BY ssid ORDER BY ssid",
        all_versions=True,
    )
    env.run_for(1_000)
    sums = [row["s"] for row in execution.result.rows]
    assert sums == sorted(sums)
    assert sums[-1] > sums[0]


def test_union_of_live_and_snapshot_views(env, running_job):
    """UNION ALL combines the live and snapshot views of the same
    operator in a single statement, labelling each side."""
    service = QueryService(env)
    execution = service.execute(
        "SELECT 'live' AS src, SUM(count) AS s FROM \"average\" "
        "UNION ALL "
        "SELECT 'snapshot', SUM(count) FROM \"snapshot_average\""
    )
    rows = {row["src"]: row["s"] for row in execution.result.rows}
    assert set(rows) == {"live", "snapshot"}
    assert rows["live"] >= rows["snapshot"] > 0
    # A union touching snapshot tables is still serialisable overall.
    assert execution.snapshot_id == env.store.committed_ssid


def test_repeatable_read_defers_stream_updates_mid_query(env, running_job):
    """End-to-end §VII repeatable read: while a query holds its key
    locks, the stream's mirror writes queue behind them and apply only
    after the query releases — observable as lock contention."""
    service = QueryService(env, repeatable_read=True)
    before = env.store.locks.contentions
    for _ in range(5):
        execution = service.execute('SELECT SUM(count) FROM "average"')
        assert execution.error is None
    after = env.store.locks.contentions
    assert after > before
    # Nothing stays locked once the queries finish...
    assert not any(
        env.store.locks.is_locked(("average", key)) for key in range(20)
    )
    # ...and the deferred updates did land: processing kept going.
    env.run_for(300)
    moving = service.execute('SELECT SUM(count) AS s FROM "average"')
    assert moving.result.rows[0]["s"] > 0


def test_point_lookup_pushdown_returns_correct_row(env, running_job):
    """Fig. 4's ``WHERE key = K`` pattern resolves as a point lookup
    with identical results to the scan path."""
    from repro.query.service import NO_POINT_KEY

    service = QueryService(env)
    point = service.execute(
        'SELECT count, total FROM "average" WHERE key = 3'
    )
    assert point.point_key == 3
    scan = service.execute(
        'SELECT count, total FROM "average" WHERE partitionKey % 100 = 3'
    )
    assert scan.point_key is NO_POINT_KEY
    # Counts advance between the two queries, so compare shape + key.
    assert len(point.result) == 1
    assert len(scan.result) == 1
    assert point.result.columns == scan.result.columns


def test_point_lookup_much_faster_than_scan(env, running_job):
    service = QueryService(env)
    point = service.execute(
        'SELECT count FROM "snapshot_average" WHERE partitionKey = 3'
    )
    scan = service.execute('SELECT count FROM "snapshot_average"')
    assert point.latency_ms < scan.latency_ms
    assert point.entries_scanned == 1
    assert scan.entries_scanned == 20


def test_point_lookup_snapshot_with_ssid_filter(env, running_job):
    """The paper's exact Fig. 4 query — ssid AND key pinned — is a
    single-key, single-version lookup."""
    service = QueryService(env)
    ssid = env.store.available_ssids()[0]
    execution = service.execute(
        f'SELECT count, total FROM "snapshot_average" '
        f"WHERE ssid={ssid} AND key=2"
    )
    assert execution.snapshot_id == ssid
    assert execution.point_key == 2
    assert len(execution.result) == 1
    assert execution.result.rows[0]["count"] > 0


def test_point_lookup_missing_key_empty_result(env, running_job):
    service = QueryService(env)
    execution = service.execute(
        'SELECT count FROM "average" WHERE key = 999999'
    )
    assert execution.result.rows == []


def test_point_lookup_respects_residual_predicates(env, running_job):
    service = QueryService(env)
    execution = service.execute(
        'SELECT count FROM "average" WHERE key = 3 AND count > 99999999'
    )
    assert execution.result.rows == []


def test_no_pushdown_for_joins(env, running_job):
    from repro.query.service import NO_POINT_KEY

    service = QueryService(env)
    execution = service.execute(
        'SELECT COUNT(*) FROM "average" '
        'JOIN "snapshot_average" USING(partitionKey) '
        "WHERE key = 3"
    )
    assert execution.point_key is NO_POINT_KEY
    assert execution.result.rows[0]["COUNT(*)"] == 1


def test_point_lookup_works_after_failure(env, running_job):
    env.cluster.kill_node(2)
    env.run_until(env.now + 1_500)
    service = QueryService(env)
    execution = service.execute(
        'SELECT count FROM "average" WHERE key = 3'
    )
    assert execution.error is None
    assert len(execution.result) == 1
