"""Service-level tests for distributed query execution (pushdown).

The distributed plan must be invisible in results — pushdown on and off
produce identical rows for every query shape — while shipping strictly
less over the network and pruning partitions the key predicates prove
empty.
"""

import pytest

from repro import Environment
from repro.config import ClusterConfig
from repro.observability import collect_report, format_report
from repro.query import QueryService
from repro.state.live import LiveStateTable

from ..conftest import build_average_job, make_squery_backend

NODES = 5
KEYS = 1_000


@pytest.fixture
def wide_env():
    """Five nodes, one wide live table, no job (deterministic data)."""
    env = Environment(
        ClusterConfig(nodes=NODES, processing_workers_per_node=1)
    )
    imap = env.store.create_map("metrics")
    env.store.register_live_table("metrics", LiveStateTable(imap))
    for key in range(KEYS):
        imap.put(key, {
            "value": key % 50,
            "weight": key % 7,
            "label": f"item-{key % 3}",
            "pad1": key, "pad2": key * 2, "pad3": key * 3,
        })
    return env


@pytest.fixture
def snapshot_env(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_250)
    return env


EQUIVALENCE_SQL = [
    'SELECT key, value FROM "metrics" WHERE value < 3 ORDER BY key',
    'SELECT * FROM "metrics" WHERE value = 7 AND weight = 2',
    'SELECT weight, SUM(value) AS s, COUNT(*) AS c FROM "metrics" '
    "GROUP BY weight HAVING COUNT(*) > 10 ORDER BY weight",
    'SELECT COUNT(*) AS n FROM "metrics"',
    'SELECT MIN(value) AS lo, MAX(value) AS hi, AVG(weight) AS w '
    'FROM "metrics" WHERE key >= 100',
    'SELECT DISTINCT weight FROM "metrics" WHERE value < 5 '
    "ORDER BY weight",
    'SELECT label, COUNT(DISTINCT value) AS dv FROM "metrics" '
    "GROUP BY label ORDER BY label",
    'SELECT key FROM "metrics" WHERE label LIKE \'item-1%\' '
    "ORDER BY key LIMIT 7 OFFSET 2",
    'SELECT a.key, b.weight FROM "metrics" AS a '
    'JOIN "metrics" AS b ON a.key = b.key '
    "WHERE a.value < 2 ORDER BY a.key",
    'SELECT key, CASE WHEN value < 25 THEN 0 ELSE 1 END AS bucket '
    'FROM "metrics" WHERE key BETWEEN 10 AND 40 ORDER BY key',
    'SELECT COUNT(*) AS n FROM "metrics" WHERE key IN (1, 2, 3, 999)',
]


@pytest.mark.parametrize("sql", EQUIVALENCE_SQL)
def test_pushdown_on_off_results_identical(wide_env, sql):
    on = QueryService(wide_env, pushdown=True).execute(sql)
    off = QueryService(wide_env, pushdown=False).execute(sql)
    assert on.result.columns == off.result.columns
    assert on.result.rows == off.result.rows


def test_selective_scan_ships_fewer_rows_and_bytes(wide_env):
    sql = 'SELECT key, value FROM "metrics" WHERE value = 0'
    on = QueryService(wide_env, pushdown=True).execute(sql)
    off = QueryService(wide_env, pushdown=False).execute(sql)
    assert on.result.rows == off.result.rows
    assert on.rows_shipped == KEYS // 50
    assert off.rows_shipped == KEYS
    assert on.bytes_shipped * 5 <= off.bytes_shipped
    # Every entry is still scanned — pushdown saves shipping, not reads.
    assert on.entries_scanned == off.entries_scanned == KEYS


def test_group_by_ships_partial_states_not_rows(wide_env):
    sql = ('SELECT weight, SUM(value) AS s FROM "metrics" '
           "GROUP BY weight")
    on = QueryService(wide_env, pushdown=True).execute(sql)
    # At most one group state per (group, node).
    assert on.rows_shipped <= 7 * NODES
    assert len(on.result.rows) == 7


def test_multi_point_get_via_in_list(wide_env):
    service = QueryService(wide_env)
    execution = service.execute(
        'SELECT value FROM "metrics" WHERE key IN (3, 77, 500)'
    )
    assert execution.point_keys == (3, 77, 500)
    assert execution.entries_scanned == 3
    assert sorted(row["value"] for row in execution.result.rows) == \
        sorted([3 % 50, 77 % 50, 500 % 50])


def test_multi_point_get_via_or_equalities(wide_env):
    service = QueryService(wide_env)
    execution = service.execute(
        'SELECT value FROM "metrics" WHERE key = 5 OR key = 999'
    )
    assert execution.point_keys == (5, 999)
    assert execution.entries_scanned == 2
    assert len(execution.result.rows) == 2


def test_single_key_point_lookup_unchanged(wide_env):
    service = QueryService(wide_env)
    execution = service.execute(
        'SELECT value FROM "metrics" WHERE key = 42'
    )
    assert execution.point_key == 42
    assert execution.point_keys == (42,)
    assert execution.entries_scanned == 1


def test_large_in_list_prunes_partitions_instead(wide_env):
    # 65 keys exceed the multi-point budget: the query scans, but the
    # key-set filter prunes every partition that can't hold them.
    keys = ", ".join(str(k) for k in range(65))
    service = QueryService(wide_env)
    execution = service.execute(
        f'SELECT COUNT(*) AS n FROM "metrics" WHERE key IN ({keys})'
    )
    assert execution.point_keys is None
    assert execution.result.rows[0]["n"] == 65
    assert execution.partitions_pruned > 0
    assert execution.entries_scanned < KEYS


def test_snapshot_range_scan_uses_zone_map_pruning(snapshot_env):
    # The job uses 20 keys, so every partition's (min, max) zone map
    # lies below 1000 and the range predicate prunes all of them.
    sql = 'SELECT COUNT(*) AS n FROM "snapshot_average" WHERE key > 1000'
    execution = QueryService(snapshot_env).execute(sql)
    baseline = QueryService(snapshot_env, pushdown=False).execute(sql)
    assert execution.result.rows == baseline.result.rows
    assert execution.result.rows[0]["n"] == 0
    assert execution.partitions_pruned > 0
    assert execution.entries_scanned == 0
    assert baseline.entries_scanned > 0


def test_snapshot_queries_identical_on_off(snapshot_env):
    ssid = snapshot_env.store.committed_ssid
    for sql in (
        'SELECT key, count, total FROM "snapshot_average" ORDER BY key',
        'SELECT COUNT(*) AS n, SUM(count) AS s FROM "snapshot_average"',
        f'SELECT key FROM "snapshot_average" WHERE ssid = {ssid} '
        "ORDER BY key",
    ):
        on = QueryService(snapshot_env, pushdown=True).execute(sql)
        off = QueryService(snapshot_env, pushdown=False).execute(sql)
        assert on.result.rows == off.result.rows


def test_all_versions_stays_on_legacy_path(snapshot_env):
    on = QueryService(snapshot_env, pushdown=True)
    execution = on.submit(
        'SELECT COUNT(*) AS n FROM "snapshot_average"', all_versions=True
    )
    snapshot_env.run_for(1_000)
    assert execution.done and execution.error is None
    assert execution.partitions_pruned == 0


def test_repeatable_read_locks_only_surviving_rows(wide_env):
    sql = 'SELECT key FROM "metrics" WHERE value = 0'
    on_env_locks = wide_env.store.locks
    before = on_env_locks.acquisitions
    QueryService(wide_env, repeatable_read=True,
                 pushdown=True).execute(sql)
    on_acquired = on_env_locks.acquisitions - before
    before = on_env_locks.acquisitions
    QueryService(wide_env, repeatable_read=True,
                 pushdown=False).execute(sql)
    off_acquired = on_env_locks.acquisitions - before
    assert on_acquired == KEYS // 50  # only rows passing the predicate
    assert off_acquired == KEYS


def test_counters_roll_up_into_cluster_report(wide_env):
    service = QueryService(wide_env)
    service.execute('SELECT key FROM "metrics" WHERE value = 0')
    keys = ", ".join(str(k) for k in range(65))
    service.execute(
        f'SELECT COUNT(*) AS n FROM "metrics" WHERE key IN ({keys})'
    )
    assert service.rows_shipped_total > 0
    assert service.bytes_shipped_total > 0
    assert service.partitions_pruned_total > 0
    report = collect_report(wide_env)
    assert report.query_rows_shipped == service.rows_shipped_total
    assert report.query_bytes_shipped == service.bytes_shipped_total
    assert report.query_partitions_pruned == \
        service.partitions_pruned_total
    assert "partitions pruned" in format_report(report)


def test_explain_shows_distributed_strategy(wide_env):
    service = QueryService(wide_env)
    plan = service.explain(
        'SELECT weight, SUM(value) AS s FROM "metrics" '
        "WHERE pad1 > 3 GROUP BY weight"
    )
    assert "pushed filter" in plan
    assert "partial aggregate" in plan
    point = service.explain(
        'SELECT value FROM "metrics" WHERE key IN (1, 2)'
    )
    assert "point lookup: 2 key(s)" in point
    assert "key filter" in point
    off = QueryService(wide_env, pushdown=False).explain(
        'SELECT COUNT(*) FROM "metrics"'
    )
    assert "ship all rows" in off


def test_cost_model_flag_controls_default(wide_env):
    assert QueryService(wide_env).pushdown_enabled is True
    assert QueryService(wide_env,
                        pushdown=False).pushdown_enabled is False
