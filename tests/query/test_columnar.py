"""Tests for the vectorized columnar scan path in the query service.

Covers the ``vectorized=`` ablation gate, the new execution counters
and their report rollup, the zero-entry shard fast path (which must
neither bill a chunk nor occupy a store server), and scan-side error
shipping (errors surface on the handle with every lock released, on
both scan paths).
"""

import pytest

from repro.config import ClusterConfig, CostModel
from repro.env import Environment
from repro.errors import SqlExecutionError
from repro.observability import collect_report, format_report
from repro.query.service import QueryService
from repro.state.live import LiveStateTable

NODES = 3


def build_env(keys=120, costs=None):
    env = Environment(
        ClusterConfig(nodes=NODES, processing_workers_per_node=1),
        costs=costs,
    )
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    for key in range(keys):
        imap.put(key, {"v": key % 10, "g": key % 4,
                       "s": f"s-{key % 5}"})
    return env


def store_jobs_served(env) -> int:
    return sum(server.jobs_served
               for node in env.cluster.nodes
               for server in node.store_servers)


# -- the ablation gate -------------------------------------------------------


def test_gate_defaults_to_cost_model():
    env = build_env()
    assert QueryService(env).vectorized_enabled is True
    assert QueryService(env, vectorized=False).vectorized_enabled is False
    off_costs = CostModel(vectorized_enabled=False)
    env2 = build_env(costs=off_costs)
    assert QueryService(env2).vectorized_enabled is False
    assert QueryService(env2, vectorized=True).vectorized_enabled is True


def test_explain_names_the_scan_mode():
    env = build_env()
    on = QueryService(env, vectorized=True)
    off = QueryService(env, vectorized=False)
    sql = 'SELECT v FROM "data" WHERE v < 3'
    assert "vectorized" in on.explain(sql)
    assert "interpreted" in off.explain(sql)


# -- counters and report rollup ----------------------------------------------


def test_vectorized_execution_counts_batches_and_compiles():
    env = build_env()
    service = QueryService(env, vectorized=True)
    execution = service.execute(
        'SELECT g, COUNT(*) AS c FROM "data" WHERE v < 8 GROUP BY g'
    )
    assert execution.error is None
    assert execution.batches_evaluated > 0
    assert execution.predicates_compiled + execution.compile_cache_hits > 0
    assert execution.scan_ms_billed > 0
    assert service.batches_evaluated_total == execution.batches_evaluated


def test_interpreted_execution_never_touches_the_compiled_path():
    env = build_env()
    service = QueryService(env, vectorized=False)
    execution = service.execute('SELECT v FROM "data" WHERE v < 3')
    assert execution.error is None
    assert execution.batches_evaluated == 0
    assert execution.predicates_compiled == 0
    assert execution.compile_cache_hits == 0
    assert execution.scan_ms_billed > 0  # interpreted scans still bill


def test_report_rolls_up_columnar_counters():
    env = build_env()
    service = QueryService(env, vectorized=True)
    service.execute('SELECT COUNT(*) AS c FROM "data" WHERE v < 9')
    report = collect_report(env)
    assert report.batches_evaluated >= service.batches_evaluated_total > 0
    assert "columnar:" in format_report(report)


def test_vectorized_scan_bills_less_than_interpreted():
    results = {}
    for vectorized in (True, False):
        env = build_env(keys=400)
        service = QueryService(env, vectorized=vectorized)
        execution = service.execute(
            'SELECT COUNT(*) AS c FROM "data" WHERE v < 9'
        )
        results[vectorized] = execution
    on, off = results[True], results[False]
    assert on.result.rows == off.result.rows
    assert off.scan_ms_billed >= on.scan_ms_billed * 2.0
    assert on.latency_ms < off.latency_ms


# -- zero-entry shards (regression) ------------------------------------------


def test_empty_table_bills_nothing_and_submits_no_store_jobs():
    env = Environment(
        ClusterConfig(nodes=NODES, processing_workers_per_node=1)
    )
    imap = env.store.create_map("data")
    env.store.register_live_table("data", LiveStateTable(imap))
    service = QueryService(env)
    before = store_jobs_served(env)
    execution = service.execute('SELECT v FROM "data" WHERE v < 3')
    assert execution.error is None
    assert execution.result.rows == []
    # A shard with zero entries must neither bill a chunk nor occupy a
    # store server (it used to submit a full-chunk job regardless).
    assert execution.entries_billed == 0
    assert execution.scan_ms_billed == 0
    assert execution.batches_evaluated == 0
    assert store_jobs_served(env) == before


def test_contradictory_key_filter_bills_nothing():
    env = build_env()
    service = QueryService(env)
    before = store_jobs_served(env)
    execution = service.execute(
        'SELECT v FROM "data" WHERE key = 1 AND key = 2'
    )
    assert execution.error is None
    assert execution.result.rows == []
    assert execution.entries_billed == 0
    assert store_jobs_served(env) == before


def test_key_range_bills_identically_across_scan_paths():
    # The billed-entry count is a pure function of shard candidate
    # selection — identical whichever scan path executes the rest.
    billed = {}
    for vectorized in (True, False):
        env = build_env()
        service = QueryService(env, vectorized=vectorized)
        execution = service.execute(
            'SELECT v FROM "data" WHERE key BETWEEN 0 AND 3 '
            "ORDER BY key"
        )
        assert execution.error is None
        assert [row["v"] for row in execution.result.rows] == [0, 1, 2, 3]
        billed[vectorized] = execution.entries_billed
    assert billed[True] == billed[False]
    assert billed[True] > 0


# -- scan-side errors --------------------------------------------------------


@pytest.mark.parametrize("vectorized", [True, False])
def test_pushed_predicate_error_surfaces_and_releases_locks(vectorized):
    env = build_env()
    env.store.get_map("data").put(999, {"v": "poison", "g": 0,
                                        "s": "s-0"})
    service = QueryService(env, vectorized=vectorized)
    execution = service.submit('SELECT v FROM "data" WHERE v < 3')
    env.run_for(5_000)
    assert execution.done
    assert isinstance(execution.error, SqlExecutionError)
    assert "cannot compare" in str(execution.error)
    assert env.store.locks.held_count == 0


def error_of(env, sql, **service_kwargs):
    service = QueryService(env, **service_kwargs)
    with pytest.raises(SqlExecutionError) as excinfo:
        service.execute(sql)
    return str(excinfo.value)


def test_error_message_identical_across_scan_paths_and_central():
    envs = {v: build_env() for v in (True, False)}
    for env in envs.values():
        env.store.get_map("data").put(999, {"v": "poison", "g": 0,
                                            "s": "s-0"})
    sql = 'SELECT v FROM "data" WHERE v < 3'
    on = error_of(envs[True], sql, vectorized=True)
    off = error_of(envs[False], sql, vectorized=False)
    central = error_of(envs[False], sql, pushdown=False)
    assert on == off == central
    assert "cannot compare" in on
