"""Service-level tests for index-backed scans.

Secondary indexes are an access-path optimisation and nothing else:
index-on and index-off runs must return bit-identical rows while the
indexed run touches (scans, locks, bills) an order of magnitude fewer
rows for selective predicates.
"""

import pytest

from repro import Environment
from repro.config import ClusterConfig, CostModel, IndexSpec
from repro.observability import collect_report, format_report
from repro.query import QueryService
from repro.state.live import LiveStateTable

from ..conftest import build_average_job, make_squery_backend

NODES = 5
KEYS = 5_000
#: Fewer partitions than the 271 default: per-partition probes carry a
#: fixed cost, so selective predicates over a small table only beat the
#: scan when the partition count is in proportion to the data.
PARTITIONS = 64


@pytest.fixture
def indexed_env():
    """Five nodes, one wide live table with hash + sorted indexes."""
    env = Environment(
        ClusterConfig(nodes=NODES, processing_workers_per_node=1,
                      partition_count=PARTITIONS)
    )
    imap = env.store.create_map("metrics")
    env.store.register_live_table("metrics", LiveStateTable(imap))
    for key in range(KEYS):
        imap.put(key, {
            "value": key % 50,
            "weight": key % 7,
            "label": f"item-{key % 3}",
            "pad1": key, "pad2": key * 2, "pad3": key * 3,
        })
    env.store.create_index("metrics", "value", "hash")
    env.store.create_index("metrics", "label", "sorted")
    return env


EQUIVALENCE_SQL = [
    'SELECT key, value FROM "metrics" WHERE value = 7 ORDER BY key',
    'SELECT * FROM "metrics" WHERE value IN (1, 2, 3)',
    'SELECT key FROM "metrics" WHERE value = 7 AND weight = 2',
    'SELECT key FROM "metrics" WHERE label LIKE \'item-1%\' '
    "ORDER BY key LIMIT 7 OFFSET 2",
    'SELECT label, COUNT(*) AS n FROM "metrics" WHERE value = 0 '
    "GROUP BY label ORDER BY label",
    'SELECT COUNT(*) AS n FROM "metrics" WHERE value BETWEEN 10 AND 12',
    'SELECT DISTINCT weight FROM "metrics" WHERE value < 5 '
    "ORDER BY weight",
    'SELECT MIN(pad1) AS lo, MAX(pad2) AS hi FROM "metrics" '
    "WHERE value = 49",
    'SELECT key FROM "metrics" WHERE value = 7 AND key < 600 '
    "ORDER BY key",
    'SELECT COUNT(*) AS n FROM "metrics"',
]


@pytest.mark.parametrize("sql", EQUIVALENCE_SQL)
def test_index_on_off_results_identical(indexed_env, sql):
    on = QueryService(indexed_env, indexes=True).execute(sql)
    off = QueryService(indexed_env, indexes=False).execute(sql)
    assert on.result.columns == off.result.columns
    assert on.result.rows == off.result.rows


@pytest.mark.parametrize("sql", EQUIVALENCE_SQL)
def test_index_on_off_identical_without_pushdown(indexed_env, sql):
    # Indexes ride on scan fragments; with pushdown off there is no
    # fragment and the service must quietly scan.
    on = QueryService(indexed_env, pushdown=False,
                      indexes=True).execute(sql)
    off = QueryService(indexed_env, pushdown=False,
                       indexes=False).execute(sql)
    assert on.result.rows == off.result.rows
    assert on.index_probes == 0


def test_selective_equality_scans_10x_fewer_rows(indexed_env):
    sql = 'SELECT key, value FROM "metrics" WHERE value = 7'
    on = QueryService(indexed_env, indexes=True).execute(sql)
    off = QueryService(indexed_env, indexes=False).execute(sql)
    assert on.result.rows == off.result.rows
    assert off.entries_scanned == KEYS
    assert on.entries_scanned == KEYS // 50  # exact candidates
    assert on.entries_scanned * 10 <= off.entries_scanned
    assert on.index_probes > 0
    assert on.index_rows_read == KEYS // 50
    assert on.rows_skipped_by_index == KEYS - KEYS // 50
    # Touching fewer rows is also faster in simulated time.
    assert on.latency_ms < off.latency_ms


def test_like_prefix_uses_sorted_index(indexed_env):
    sql = 'SELECT key FROM "metrics" WHERE label LIKE \'item-1%\''
    on = QueryService(indexed_env, indexes=True).execute(sql)
    off = QueryService(indexed_env, indexes=False).execute(sql)
    assert on.result.rows == off.result.rows
    matches = sum(1 for key in range(KEYS) if key % 3 == 1)
    assert on.entries_scanned == matches
    assert off.entries_scanned == KEYS
    assert on.index_probes > 0


def test_in_list_probes_each_value(indexed_env):
    sql = 'SELECT COUNT(*) AS n FROM "metrics" WHERE value IN (1, 2, 3)'
    on = QueryService(indexed_env, indexes=True).execute(sql)
    assert on.result.rows[0]["n"] == 3 * KEYS // 50
    assert on.entries_scanned == 3 * KEYS // 50
    assert on.index_probes > 0


def test_non_selective_predicate_stays_full_scan(indexed_env):
    # value < 500 keeps every row: the chooser must price the index out.
    sql = 'SELECT COUNT(*) AS n FROM "metrics" WHERE value < 500'
    on = QueryService(indexed_env, indexes=True).execute(sql)
    assert on.index_probes == 0
    assert on.entries_scanned == KEYS


def test_unindexed_column_stays_full_scan(indexed_env):
    sql = 'SELECT COUNT(*) AS n FROM "metrics" WHERE weight = 2'
    on = QueryService(indexed_env, indexes=True).execute(sql)
    assert on.index_probes == 0
    assert on.entries_scanned == KEYS


def test_index_composes_with_partition_pruning(indexed_env):
    # 65 keys exceed the multi-point budget, so the key set prunes
    # partitions first; the index then resolves candidates only within
    # the surviving ones.  The keys are drawn from a handful of
    # partitions so the pruning actually bites.
    from repro.cluster.partition import stable_hash
    keys = [k for k in range(KEYS)
            if stable_hash(k) % PARTITIONS < 8][:65]
    assert len(keys) == 65
    in_list = ", ".join(str(k) for k in keys)
    sql = ('SELECT COUNT(*) AS n FROM "metrics" WHERE value = 7 '
           f"AND key IN ({in_list})")
    on = QueryService(indexed_env, indexes=True).execute(sql)
    off = QueryService(indexed_env, indexes=False).execute(sql)
    assert on.result.rows == off.result.rows
    assert on.partitions_pruned > 0
    assert on.index_probes > 0
    assert on.entries_scanned < off.entries_scanned


def test_repeatable_read_locks_only_index_candidates(indexed_env):
    sql = 'SELECT key FROM "metrics" WHERE value = 7'
    locks = indexed_env.store.locks
    before = locks.acquisitions
    QueryService(indexed_env, repeatable_read=True,
                 indexes=True).execute(sql)
    acquired = locks.acquisitions - before
    assert acquired == KEYS // 50  # candidates, not the whole table


def test_counters_roll_up_into_cluster_report(indexed_env):
    service = QueryService(indexed_env, indexes=True)
    service.execute('SELECT key FROM "metrics" WHERE value = 7')
    assert service.index_probes_total > 0
    assert service.index_rows_read_total == KEYS // 50
    assert service.rows_skipped_by_index_total == KEYS - KEYS // 50
    report = collect_report(indexed_env)
    assert report.index_probes == service.index_probes_total
    assert report.index_rows_read == service.index_rows_read_total
    assert report.rows_skipped_by_index == \
        service.rows_skipped_by_index_total
    # Write-path maintenance billed: 1000 puts x 2 indexes (+ builds).
    assert report.index_maintenance_ops >= 2 * KEYS
    assert report.index_maintenance_cost > 0
    rendered = format_report(report)
    assert "indexes:" in rendered
    assert "maintenance ops" in rendered


def test_explain_shows_chosen_access_path(indexed_env):
    service = QueryService(indexed_env, indexes=True)
    plan = service.explain(
        'SELECT key FROM "metrics" WHERE value = 7'
    )
    assert "access path [metrics]: index probe on 'value'" in plan
    ranged = service.explain(
        'SELECT key FROM "metrics" WHERE label LIKE \'item-1%\''
    )
    assert "access path [metrics]: index range on 'label'" in ranged
    full = service.explain(
        'SELECT COUNT(*) AS n FROM "metrics" WHERE weight = 2'
    )
    assert "access path [metrics]: full scan" in full
    disabled = QueryService(indexed_env, indexes=False).explain(
        'SELECT key FROM "metrics" WHERE value = 7'
    )
    assert "full scan (indexes disabled)" in disabled


def test_cost_model_flag_controls_default(indexed_env):
    assert QueryService(indexed_env).index_enabled is True
    assert QueryService(indexed_env,
                        indexes=False).index_enabled is False
    frugal = Environment(
        ClusterConfig(nodes=2, processing_workers_per_node=1),
        costs=CostModel(index_enabled=False),
    )
    assert QueryService(frugal).index_enabled is False


# -- snapshot tables ---------------------------------------------------------


@pytest.fixture
def snapshot_env(env):
    backend = make_squery_backend(
        env, indexes=(IndexSpec("average", "total", "hash"),)
    )
    # Enough keys that a selective probe beats scanning a snapshot
    # instance (the per-partition probe cost is fixed).
    job = build_average_job(env, backend=backend, rate=2000, keys=200,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_250)
    return env


def test_declared_index_reaches_both_table_families(snapshot_env):
    live = snapshot_env.store.get_live_table("average")
    snap = snapshot_env.store.get_snapshot_table("snapshot_average")
    assert [d.column for d in live.index_defs()] == ["total"]
    assert [d.column for d in snap.index_defs()] == ["total"]
    ssid = snapshot_env.store.committed_ssid
    assert ssid is not None
    assert snap.index_ready(ssid)


def test_snapshot_index_scan_identical_and_cheaper(snapshot_env):
    probe_value = QueryService(snapshot_env).execute(
        'SELECT total FROM "snapshot_average" ORDER BY key LIMIT 1'
    ).result.rows[0]["total"]
    sql = (f'SELECT key, count, total FROM "snapshot_average" '
           f"WHERE total = {probe_value} ORDER BY key")
    on = QueryService(snapshot_env, indexes=True).execute(sql)
    off = QueryService(snapshot_env, indexes=False).execute(sql)
    assert on.result.rows == off.result.rows
    assert on.result.rows  # the probed value exists
    assert on.index_probes > 0
    assert on.entries_scanned <= off.entries_scanned


def test_live_mirror_index_survives_job_writes(snapshot_env):
    # The job mutated "average" continuously; incremental maintenance
    # must have kept the live index coherent throughout.
    live = snapshot_env.store.get_live_table("average")
    assert live.index_coherence_errors() == []
    sql = 'SELECT key FROM "average" WHERE count > 0 ORDER BY key'
    on = QueryService(snapshot_env, indexes=True).execute(sql)
    off = QueryService(snapshot_env, indexes=False).execute(sql)
    assert on.result.rows == off.result.rows


def test_explain_snapshot_without_commit_reports_fallback(env):
    backend = make_squery_backend(
        env, indexes=(IndexSpec("average", "total", "hash"),)
    )
    job = build_average_job(env, backend=backend, rate=500, keys=10,
                            checkpoint_interval_ms=10_000)
    job.start()
    env.run_until(200)  # before the first snapshot commits
    plan = QueryService(env, indexes=True).explain(
        'SELECT key FROM "snapshot_average" WHERE count = 1'
    )
    assert "full scan (no committed snapshot)" in plan
