"""Tests for the isolation-level model (§VII)."""

from repro.state import IsolationLevel, isolation_of_query


def test_strength_ordering():
    levels = [
        IsolationLevel.READ_UNCOMMITTED,
        IsolationLevel.READ_COMMITTED,
        IsolationLevel.REPEATABLE_READ,
        IsolationLevel.SNAPSHOT,
        IsolationLevel.SERIALIZABLE,
    ]
    for weaker, stronger in zip(levels, levels[1:]):
        assert stronger.at_least(weaker)
        assert not weaker.at_least(stronger)


def test_every_level_at_least_itself():
    for level in IsolationLevel:
        assert level.at_least(level)


def test_snapshot_queries_are_serializable():
    """§VII-B: no write conflicts are possible (single-threaded operators
    on disjoint partitions), so snapshot isolation is serialisable."""
    level = isolation_of_query(targets_snapshot=True,
                               repeatable_read_locks=False)
    assert level is IsolationLevel.SERIALIZABLE
    assert level.at_least(IsolationLevel.SNAPSHOT)


def test_live_queries_default_read_uncommitted():
    level = isolation_of_query(targets_snapshot=False,
                               repeatable_read_locks=False)
    assert level is IsolationLevel.READ_UNCOMMITTED


def test_live_with_held_locks_is_repeatable_read():
    level = isolation_of_query(targets_snapshot=False,
                               repeatable_read_locks=True)
    assert level is IsolationLevel.REPEATABLE_READ


def test_live_without_failures_is_read_committed():
    level = isolation_of_query(targets_snapshot=False,
                               repeatable_read_locks=False,
                               assume_no_failures=True)
    assert level is IsolationLevel.READ_COMMITTED


def test_snapshot_trumps_lock_options():
    level = isolation_of_query(targets_snapshot=True,
                               repeatable_read_locks=True)
    assert level is IsolationLevel.SERIALIZABLE
