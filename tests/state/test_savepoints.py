"""Tests for snapshot export and job bootstrapping (savepoints)."""

import pytest

from repro import ClusterConfig, Environment
from repro.errors import DataflowError, SnapshotNotFoundError, StateError
from repro.query import QueryService
from repro.state.savepoints import bootstrap_job, export_snapshot

from ..conftest import build_average_job, make_squery_backend


def run_source_job(keys=12, limit=200):
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=keys,
                            limit_per_instance=limit,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(20_000)
    assert job.all_sources_exhausted()
    return env, backend, job


def test_export_contains_full_state():
    env, backend, job = run_source_job()
    exported = export_snapshot(backend)
    assert set(exported) == {"average"}
    state = exported["average"]
    assert set(state) == set(range(12))
    assert sum(s.count for s in state.values()) == 600


def test_export_specific_ssid_differs_from_latest():
    env, backend, job = run_source_job()
    older, newest = env.store.available_ssids()[0], \
        env.store.available_ssids()[-1]
    del newest
    old_export = export_snapshot(backend, ssid=older)
    latest_export = export_snapshot(backend)
    old_total = sum(s.count for s in old_export["average"].values())
    new_total = sum(s.count for s in latest_export["average"].values())
    assert old_total <= new_total


def test_export_without_commit_raises():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    build_average_job(env, backend=backend)
    with pytest.raises(StateError):
        export_snapshot(backend)


def test_export_unknown_ssid_raises():
    env, backend, job = run_source_job()
    with pytest.raises(SnapshotNotFoundError):
        export_snapshot(backend, ssid=99_999)


def test_bootstrap_new_job_continues_from_export():
    _, old_backend, _ = run_source_job()
    exported = export_snapshot(old_backend)

    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=12,
                            limit_per_instance=100,
                            checkpoint_interval_ms=400)
    bootstrap_job(job, exported)
    job.start()
    env.run_until(20_000)
    service = QueryService(env)
    total = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    # 600 imported + 3 instances x 100 fresh records.
    assert total == 900


def test_bootstrap_supports_rescaling():
    """The new job can run at a different parallelism."""
    _, old_backend, _ = run_source_job()
    exported = export_snapshot(old_backend)

    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000, keys=12,
                            parallelism=2, limit_per_instance=0)
    bootstrap_job(job, exported)
    merged = job.operator_state("average")
    assert sum(s.count for s in merged.values()) == 600
    # Keys landed on the instance the NEW routing owns.
    from repro.cluster.partition import stable_hash

    for index, instance in enumerate(job.instances_of("average")):
        for key, _ in instance.operator.state.items():
            assert stable_hash(key) % 2 == index


def test_bootstrap_after_start_rejected():
    env, backend, job = run_source_job()
    with pytest.raises(DataflowError):
        bootstrap_job(job, {"average": {}})


def test_bootstrap_unknown_vertex_strictness():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    with pytest.raises(DataflowError):
        bootstrap_job(job, {"ghost": {1: 2}})
    bootstrap_job(job, {"ghost": {1: 2}}, strict=False)  # ignored


def test_bootstrapped_state_checkpointed_by_new_job():
    _, old_backend, _ = run_source_job()
    exported = export_snapshot(old_backend)
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=500, keys=12,
                            checkpoint_interval_ms=400)
    bootstrap_job(job, exported)
    job.start()
    env.run_until(1_000)
    # The first checkpoint of the new job includes the imported state.
    table = backend.snapshot_table("average")
    committed = env.store.committed_ssid
    assert table.snapshot_size(committed) == 12
