"""Tests for the S-QUERY backend (manager)."""

import pytest

from repro.config import SQueryConfig
from repro.state import SQueryBackend

from ..conftest import build_average_job, make_squery_backend


def test_registration_creates_tables(env):
    backend = make_squery_backend(env)
    backend.register_vertex("My Operator", 2, lambda i: i % 2, True)
    assert env.store.has_live_table("myoperator")
    assert env.store.has_snapshot_table("snapshot_myoperator")


def test_stateless_vertex_gets_no_tables(env):
    backend = make_squery_backend(env)
    backend.register_vertex("mapper", 2, lambda i: 0, False)
    assert not env.store.has_live_table("mapper")
    assert not env.store.has_snapshot_table("snapshot_mapper")


def test_live_only_configuration(env):
    backend = make_squery_backend(env, snapshot_state=False)
    backend.register_vertex("op", 2, lambda i: 0, True)
    assert env.store.has_live_table("op")
    assert not env.store.has_snapshot_table("snapshot_op")
    assert backend.live_update_cost("op") > 0


def test_snapshot_only_configuration(env):
    backend = make_squery_backend(env, live_state=False)
    backend.register_vertex("op", 2, lambda i: 0, True)
    assert not env.store.has_live_table("op")
    assert env.store.has_snapshot_table("snapshot_op")
    assert backend.live_update_cost("op") == 0.0


def test_live_update_mirrored_to_store(env):
    backend = make_squery_backend(env)
    backend.register_vertex("op", 2, lambda i: 0, True)
    backend.on_state_update("op", "k", {"v": 1})
    assert backend.live_table("op").get("k") == {"v": 1}
    backend.on_state_update("op", "k", None)
    assert backend.live_table("op").get("k") is None
    assert backend.live_updates_mirrored == 2


def test_colocation_disabled_raises_mirror_cost(env):
    local = make_squery_backend(env)
    local.register_vertex("op", 2, lambda i: 0, True)
    remote = SQueryBackend(env.cluster, env.store, SQueryConfig(
        colocate_state=False
    ))
    remote.register_vertex("op2", 2, lambda i: 0, True)
    assert remote.live_update_cost("op2") > local.live_update_cost("op")


def test_snapshot_write_lands_in_table(env):
    backend = make_squery_backend(env)
    backend.register_vertex("op", 2, lambda i: 0, True)
    done = []
    backend.write_snapshot("op", 0, 0, 1, {"a": 1}, set(),
                           lambda: done.append(True))
    env.sim.run()
    assert done == [True]
    table = backend.snapshot_table("op")
    assert table.instance_state(1, 0) == {"a": 1}


def test_restore_refreshes_live_partition(env):
    backend = make_squery_backend(env)
    backend.register_vertex("op", 2, lambda i: 0, True)
    backend.write_snapshot("op", 0, 0, 1, {"a": "snap"}, set(),
                           lambda: None)
    env.sim.run()
    # Live state has drifted past the snapshot.
    live = backend.live_table("op")
    live.apply_update("a", "dirty")
    state = backend.restore_instance_state("op", 0, 1)
    assert state == {"a": "snap"}
    assert live.get("a") == "snap"


def test_incremental_flag_requires_snapshot_state(env):
    backend = make_squery_backend(env, snapshot_state=False,
                                  incremental=True)
    assert backend.incremental is False


def test_incremental_mode_writes_deltas(env):
    backend = make_squery_backend(env, incremental=True)
    backend.register_vertex("op", 1, lambda i: 0, True)
    backend.write_snapshot("op", 0, 0, 1, {"a": 1, "b": 1}, set(),
                           lambda: None)
    backend.write_snapshot("op", 0, 0, 2, {"a": 2}, {"b"}, lambda: None)
    env.sim.run()
    table = backend.snapshot_table("op")
    assert table.instance_state(2, 0) == {"a": 2}
    assert table.instance_state(1, 0) == {"a": 1, "b": 1}


def test_snapshot_disabled_falls_back_to_blobs(env):
    backend = make_squery_backend(env, snapshot_state=False)
    backend.register_vertex("op", 1, lambda i: 0, True)
    backend.write_snapshot("op", 0, 0, 1, {"a": 1}, set(), lambda: None)
    env.sim.run()
    assert backend.restore_instance_state("op", 0, 1) == {"a": 1}


def test_drop_snapshot_cascades_to_tables(env):
    backend = make_squery_backend(env)
    backend.register_vertex("op", 1, lambda i: 0, True)
    backend.write_snapshot("op", 0, 0, 1, {"a": 1}, set(), lambda: None)
    env.sim.run()
    backend.drop_snapshot(1)
    assert not backend.snapshot_table("op").has_snapshot(1)


def test_retained_snapshots_from_config(env):
    assert make_squery_backend(env).retained_snapshots == 2
    assert make_squery_backend(
        env, retained_snapshots=5
    ).retained_snapshots == 5


def test_repeatable_read_defers_update_until_lock_released(env):
    """Key-level locking: a mirror write waits for a query's lock."""
    backend = make_squery_backend(env)
    backend.register_vertex("op", 1, lambda i: 0, True)
    backend.on_state_update("op", "k", "v1")
    query = object()
    assert env.store.locks.try_acquire(("op", "k"), query)
    backend.on_state_update("op", "k", "v2")
    # The update is deferred while the query holds the lock.
    assert backend.live_table("op").get("k") == "v1"
    env.store.locks.release(("op", "k"), query)
    assert backend.live_table("op").get("k") == "v2"


def test_full_job_with_squery_backend_populates_both_tables(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_400)
    live = backend.live_table("average")
    assert len(live) > 0
    table = backend.snapshot_table("average")
    committed = env.store.committed_ssid
    assert committed is not None
    assert table.snapshot_size(committed) > 0
