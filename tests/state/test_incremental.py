"""Tests for incremental snapshot tables: backward reconstruction,
coverage-based early termination, tombstones, and pruning."""

import pytest

from repro.errors import SnapshotNotFoundError
from repro.state import IncrementalSnapshotTable


def make_table(parallelism=1, prune=8):
    return IncrementalSnapshotTable(
        "snapshot_op", parallelism, lambda i: 0, prune_chain_length=prune
    )


def test_single_delta_reconstruction():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 2})
    state, scanned = table.materialize_instance(1, 0)
    assert state == {"a": 1, "b": 2}
    assert scanned == 2


def test_newest_version_wins():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 1})
    table.write_instance(2, 0, {"a": 2})
    state, _ = table.materialize_instance(2, 0)
    assert state == {"a": 2, "b": 1}


def test_reconstruction_at_older_ssid_ignores_newer_deltas():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"a": 2})
    state, _ = table.materialize_instance(1, 0)
    assert state == {"a": 1}


def test_tombstone_hides_deleted_key():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 2})
    table.write_instance(2, 0, {}, deleted={"a"})
    state, _ = table.materialize_instance(2, 0)
    assert state == {"b": 2}
    # The older snapshot still shows the key.
    earlier, _ = table.materialize_instance(1, 0)
    assert earlier == {"a": 1, "b": 2}


def test_delete_then_reinsert():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {}, deleted={"a"})
    table.write_instance(3, 0, {"a": 3})
    assert table.materialize_instance(3, 0)[0] == {"a": 3}
    assert table.materialize_instance(2, 0)[0] == {}


def test_coverage_early_termination_bounds_scan():
    """When the newest delta covers every live key, reconstruction must
    not walk the whole chain."""
    table = make_table()
    keys = {f"k{i}": 0 for i in range(100)}
    for ssid in range(1, 11):
        table.write_instance(ssid, 0, {k: ssid for k in keys})
    state, scanned = table.materialize_instance(10, 0)
    assert all(v == 10 for v in state.values())
    assert scanned == 100  # one delta, not ten


def test_sparse_deltas_walk_backwards():
    table = make_table(prune=100)
    table.write_instance(1, 0, {f"k{i}": 1 for i in range(100)})
    for ssid in range(2, 8):
        table.write_instance(ssid, 0, {f"k{ssid}": ssid * 10})
    state, scanned = table.materialize_instance(7, 0)
    assert len(state) == 100
    assert state["k7"] == 70
    assert state["k99"] == 1
    # Walks all six small deltas plus the full first one.
    assert scanned == 100 + 6


def test_missing_snapshot_raises():
    table = make_table()
    with pytest.raises(SnapshotNotFoundError):
        table.materialize_instance(3, 0)


def test_unknown_instance_is_empty():
    table = make_table(parallelism=2)
    table.write_instance(1, 0, {"a": 1})
    assert table.materialize_instance(1, 1) == ({}, 0)


def test_materialize_merges_instances():
    table = IncrementalSnapshotTable("t", 2, lambda i: i)
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(1, 1, {"b": 2})
    state, _ = table.materialize(1)
    assert state == {"a": 1, "b": 2}


def test_rows_have_snapshot_schema():
    table = make_table()
    table.write_instance(4, 0, {"k": {"count": 1}})
    rows = list(table.rows_for_snapshot(4))
    assert rows == [
        {"partitionKey": "k", "key": "k", "ssid": 4, "count": 1},
    ]


def test_entries_on_node_reports_walk_cost():
    table = make_table(prune=100)
    table.write_instance(1, 0, {f"k{i}": 1 for i in range(50)})
    table.write_instance(2, 0, {"k0": 2})
    walk = table.entries_on_node(0, 2)
    rows = table.row_count_on_node(0, 2)
    assert walk == 51  # 1 delta entry + 50 base entries
    assert rows == 50


def test_pruning_compacts_long_chains():
    table = make_table(prune=3)
    table.write_instance(1, 0, {f"k{i}": 1 for i in range(20)})
    for ssid in range(2, 8):
        table.write_instance(ssid, 0, {"k1": ssid})
    assert table.chain_length(0) == 7
    assert table.maybe_prune(7)
    assert table.chain_length(0) == 0  # base at 7, nothing above
    state, scanned = table.materialize_instance(7, 0)
    assert state["k1"] == 7
    assert len(state) == 20
    assert scanned == 20  # reads the base only
    assert table.compactions == 1


def test_pruning_preserves_later_deltas():
    table = make_table(prune=2)
    table.write_instance(1, 0, {"a": 1, "b": 1})
    table.write_instance(2, 0, {"a": 2})
    table.write_instance(3, 0, {"b": 3})
    table.write_instance(4, 0, {"a": 4})
    # Compact up to ssid 3 (e.g. retention keeps 3 and 4).
    assert table.maybe_prune(3)
    assert table.materialize_instance(3, 0)[0] == {"a": 2, "b": 3}
    assert table.materialize_instance(4, 0)[0] == {"a": 4, "b": 3}


def test_prune_below_threshold_is_noop():
    table = make_table(prune=10)
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"a": 2})
    assert not table.maybe_prune(2)
    assert table.compactions == 0


def test_prune_boundary_exact_length_is_noop():
    """A chain of *exactly* prune_chain_length deltas must not fold:
    the bound is strict-greater, so folding starts at bound + 1."""
    bound = 4
    table = make_table(prune=bound)
    for ssid in range(1, bound + 1):
        table.write_instance(ssid, 0, {"a": ssid})
    assert table.chain_length(0) == bound
    assert not table.maybe_prune(bound)
    assert table.compactions == 0
    assert table.chain_length(0) == bound  # chain untouched

    # One more delta crosses the bound: now the fold happens.
    table.write_instance(bound + 1, 0, {"a": bound + 1})
    assert table.chain_length(0) == bound + 1
    assert table.maybe_prune(bound + 1)
    assert table.compactions == 1
    assert table.chain_length(0) == 0  # folded into a base
    state, scanned = table.materialize_instance(bound + 1, 0)
    assert state == {"a": bound + 1}
    assert scanned == 1  # base read only, no chain walk


def test_tombstone_then_reinsert_survives_fold():
    """Folding a chain that contains delete-then-reinsert history must
    keep the reinserted value (and only it) in the new base."""
    table = make_table(prune=2)
    table.write_instance(1, 0, {"a": 1, "b": 1})
    table.write_instance(2, 0, {}, deleted={"a"})
    table.write_instance(3, 0, {"a": 30})
    assert table.maybe_prune(3)
    state, scanned = table.materialize_instance(3, 0)
    assert state == {"a": 30, "b": 1}
    assert scanned == 2  # the folded base holds exactly the live keys
    # The fold must not resurrect tombstoned history: a key deleted and
    # NOT reinserted stays gone after compaction too.
    table.write_instance(4, 0, {}, deleted={"b"})
    table.write_instance(5, 0, {"c": 5})
    table.write_instance(6, 0, {"c": 6})
    assert table.maybe_prune(6)
    assert table.materialize_instance(6, 0)[0] == {"a": 30, "c": 6}


def test_drop_snapshot_is_deferred():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"b": 2})
    table.drop_snapshot(1)  # must NOT break reconstruction through 1
    assert table.materialize_instance(2, 0)[0] == {"a": 1, "b": 2}


def test_total_entries_counts_all_versions():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 1})
    table.write_instance(2, 0, {"a": 2})
    assert table.total_entries() == 3


def test_cache_consistent_with_fresh_walk():
    table = make_table(prune=100)
    for ssid in range(1, 6):
        table.write_instance(ssid, 0, {f"k{ssid}": ssid, "shared": ssid})
    first = table.materialize_instance(5, 0)
    second = table.materialize_instance(5, 0)  # cached
    assert first == second


def test_cache_result_is_isolated_copy():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    state, _ = table.materialize_instance(1, 0)
    state["a"] = 999
    assert table.materialize_instance(1, 0)[0] == {"a": 1}
