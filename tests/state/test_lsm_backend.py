"""Tests for the LSM-backed incremental snapshot tables (§VI-B)."""

import pytest

from repro.errors import SnapshotNotFoundError
from repro.state.lsm_backend import LsmSnapshotTable

from ..conftest import build_average_job, make_squery_backend


def make_table(parallelism=1, **kwargs):
    return LsmSnapshotTable("snapshot_op", parallelism, lambda i: 0,
                            **kwargs)


def test_roundtrip_single_delta():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 2})
    state, scanned = table.materialize_instance(1, 0)
    assert state == {"a": 1, "b": 2}
    assert scanned >= 2


def test_versions_reconstruct_independently():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 1})
    table.write_instance(2, 0, {"a": 2})
    assert table.instance_state(1, 0) == {"a": 1, "b": 1}
    assert table.instance_state(2, 0) == {"a": 2, "b": 1}
    assert table.available_ssids() == [1, 2]


def test_tombstones_hide_deleted_keys():
    table = make_table()
    table.write_instance(1, 0, {"a": 1, "b": 2})
    table.write_instance(2, 0, {}, deleted={"a"})
    assert table.instance_state(2, 0) == {"b": 2}
    assert table.instance_state(1, 0) == {"a": 1, "b": 2}


def test_rows_have_snapshot_schema():
    table = make_table()
    table.write_instance(3, 0, {"k": {"count": 1}})
    rows = list(table.rows_for_snapshot(3))
    assert rows == [
        {"partitionKey": "k", "key": "k", "ssid": 3, "count": 1},
    ]


def test_missing_snapshot_raises():
    table = make_table()
    with pytest.raises(SnapshotNotFoundError):
        table.materialize_instance(9, 0)
    with pytest.raises(SnapshotNotFoundError):
        table.entries_on_node(0, 9)


def test_drop_snapshot_advances_watermark_and_gc():
    table = make_table(l0_compaction_threshold=1)
    for ssid in range(1, 8):
        table.write_instance(ssid, 0, {"k": ssid})
    before = table.total_entries()
    for old in range(1, 6):
        table.drop_snapshot(old)
    table.compact_all()
    assert table.total_entries() < before
    assert table.instance_state(7, 0) == {"k": 7}
    assert table.instance_state(6, 0) == {"k": 6}


def test_compaction_bounds_reconstruction_cost():
    """The §VI-B claim: with compaction + GC the scan cost stays near
    the live key count no matter how many checkpoints have passed;
    without, it grows with history."""
    keys = {f"k{i}": 0 for i in range(50)}
    table = make_table(l0_compaction_threshold=2)
    for ssid in range(1, 41):
        table.write_instance(ssid, 0, {k: ssid for k in keys})
        if ssid > 2:
            table.drop_snapshot(ssid - 2)  # keep-2 retention
    cost = table.entries_on_node(0, 40)
    # Bounded: within a small multiple of the live key count, despite
    # 40 checkpoints x 50 keys = 2000 versions written.
    assert cost <= len(keys) * 8


def test_entries_on_node_respects_placement():
    table = LsmSnapshotTable("t", 2, lambda i: i)
    table.write_instance(1, 0, {f"a{i}": i for i in range(5)})
    table.write_instance(1, 1, {f"b{i}": i for i in range(3)})
    assert table.entries_on_node(0, 1) >= 5
    assert table.row_count_on_node(1, 1) == 3
    keys0 = {row["key"] for row in table.rows_on_node(0, 1)}
    assert keys0 == {f"a{i}" for i in range(5)}


def test_multi_version_rows():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"a": 2})
    rows = list(table.rows_all_versions_on_node(0, [1, 2]))
    assert [(r["ssid"], r["value"]) for r in rows] == [(1, 1), (2, 2)]


def test_maybe_prune_is_noop():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    assert table.maybe_prune(1) is False


def test_job_with_lsm_backend_end_to_end(env):
    backend = make_squery_backend(env, incremental=True,
                                  incremental_backend="lsm")
    job = build_average_job(env, backend=backend, rate=2000, keys=12,
                            limit_per_instance=250,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(30_000)
    from repro.query import QueryService

    service = QueryService(env)
    result = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"'
    ).result
    assert result.rows[0]["s"] == 750


def test_lsm_and_chain_backends_answer_identically(env):
    answers = {}
    for backend_kind in ("chain", "lsm"):
        from repro import ClusterConfig, Environment

        local_env = Environment(
            ClusterConfig(nodes=3, processing_workers_per_node=2)
        )
        backend = make_squery_backend(
            local_env, incremental=True,
            incremental_backend=backend_kind,
        )
        job = build_average_job(local_env, backend=backend, rate=2000,
                                keys=10, limit_per_instance=200,
                                checkpoint_interval_ms=400)
        job.start()
        local_env.run_until(30_000)
        from repro.query import QueryService

        service = QueryService(local_env)
        result = service.execute(
            'SELECT partitionKey, count, total FROM "snapshot_average" '
            "ORDER BY partitionKey"
        ).result
        answers[backend_kind] = result.tuples()
    assert answers["chain"] == answers["lsm"]


def test_recovery_restores_from_lsm_table(env):
    backend = make_squery_backend(env, incremental=True,
                                  incremental_backend="lsm")
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            limit_per_instance=300,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(1_500)
    env.cluster.kill_node(2)
    env.run_until(30_000)
    state = job.operator_state("average")
    assert sum(s.count for s in state.values()) == 900


def test_point_rows_and_owner(env):
    table = make_table(parallelism=1)
    table.write_instance(1, 0, {"a": {"v": 1}})
    table.write_instance(2, 0, {"a": {"v": 2}})
    assert table.owner_node_of("a") == 0
    assert table.point_rows("a", 1) == [
        {"partitionKey": "a", "key": "a", "ssid": 1, "v": 1},
    ]
    assert table.point_rows("a", 2)[0]["v"] == 2
    assert table.point_rows("missing", 2) == []
    with pytest.raises(SnapshotNotFoundError):
        table.point_rows("a", 9)


def test_point_lookup_query_with_lsm_backend(env):
    from repro.query import QueryService

    backend = make_squery_backend(env, incremental=True,
                                  incremental_backend="lsm")
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(1_300)
    service = QueryService(env)
    execution = service.execute(
        'SELECT count FROM "snapshot_average" WHERE key = 4'
    )
    assert execution.point_key == 4
    assert len(execution.result) == 1
