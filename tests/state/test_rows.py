"""Tests for row shaping (Tables I and II)."""

from collections import namedtuple
from dataclasses import dataclass

from repro.state.rows import (
    live_row,
    sanitize_table_name,
    snapshot_row,
    snapshot_table_name,
    value_to_columns,
)


@dataclass
class Point:
    x: int
    y: int


def test_dataclass_fields_become_columns():
    assert value_to_columns(Point(1, 2)) == {"x": 1, "y": 2}


def test_dict_passthrough_copied():
    source = {"a": 1}
    columns = value_to_columns(source)
    assert columns == {"a": 1}
    columns["a"] = 2
    assert source["a"] == 1


def test_namedtuple_fields():
    Pair = namedtuple("Pair", ["left", "right"])
    assert value_to_columns(Pair(1, 2)) == {"left": 1, "right": 2}


def test_scalar_becomes_value_column():
    assert value_to_columns(42) == {"value": 42}
    assert value_to_columns("text") == {"value": "text"}


def test_live_row_table_one_schema():
    row = live_row(7, Point(1, 2))
    assert row == {"partitionKey": 7, "key": 7, "x": 1, "y": 2}


def test_snapshot_row_table_two_schema():
    row = snapshot_row(7, 9, Point(1, 2))
    assert row == {"partitionKey": 7, "key": 7, "ssid": 9, "x": 1, "y": 2}


def test_key_fields_override_value_collisions():
    # A state object with a 'key' field must not mask the partition key.
    row = live_row(7, {"key": "inner", "other": 1})
    assert row["key"] == 7
    assert row["partitionKey"] == 7
    assert row["other"] == 1


def test_sanitize_table_name_matches_paper_convention():
    # The paper: operator "stateful map" -> table "statefulmap".
    assert sanitize_table_name("stateful map") == "statefulmap"
    assert sanitize_table_name("Average") == "average"


def test_snapshot_table_name():
    assert snapshot_table_name("stateful map") == "snapshot_statefulmap"
