"""Tests for full snapshot tables (Table II semantics)."""

import pytest

from repro.errors import SnapshotNotFoundError
from repro.state import FullSnapshotTable


def make_table(parallelism=2, nodes=2):
    return FullSnapshotTable("snapshot_op", parallelism,
                             lambda i: i % nodes)


def test_write_and_read_instance_state():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(1, 1, {"b": 2})
    assert table.instance_state(1, 0) == {"a": 1}
    assert table.instance_state(1, 1) == {"b": 2}
    assert table.instance_state(1, 5) == {}  # unknown instance: empty


def test_rows_carry_key_and_ssid():
    table = make_table()
    table.write_instance(9, 0, {"a": {"count": 3}})
    rows = list(table.rows_for_snapshot(9))
    assert rows == [
        {"partitionKey": "a", "key": "a", "ssid": 9, "count": 3},
    ]


def test_versions_are_independent():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"a": 99})
    assert table.instance_state(1, 0) == {"a": 1}
    assert table.instance_state(2, 0) == {"a": 99}
    assert table.available_ssids() == [1, 2]


def test_rows_all_versions_tagged():
    table = make_table()
    table.write_instance(1, 0, {"a": 1})
    table.write_instance(2, 0, {"a": 2})
    ssids = sorted(row["ssid"] for row in table.rows_all_versions())
    assert ssids == [1, 2]


def test_missing_snapshot_raises():
    table = make_table()
    with pytest.raises(SnapshotNotFoundError):
        list(table.rows_for_snapshot(5))
    with pytest.raises(SnapshotNotFoundError):
        table.instance_state(5, 0)
    with pytest.raises(SnapshotNotFoundError):
        table.entries_on_node(0, 5)


def test_drop_snapshot_constant_memory():
    """Keep-2 retention means total entries stay bounded (§VI-A)."""
    table = make_table()
    for ssid in range(1, 20):
        table.write_instance(ssid, 0, {k: ssid for k in range(100)})
        if ssid > 2:
            table.drop_snapshot(ssid - 2)
    assert table.total_entries() == 200
    assert table.available_ssids() == [18, 19]


def test_drop_missing_snapshot_is_noop():
    make_table().drop_snapshot(42)


def test_rows_on_node_respects_placement():
    table = make_table(parallelism=4, nodes=2)
    for instance in range(4):
        table.write_instance(1, instance, {f"k{instance}": instance})
    node0_keys = {row["key"] for row in table.rows_on_node(0, 1)}
    node1_keys = {row["key"] for row in table.rows_on_node(1, 1)}
    assert node0_keys == {"k0", "k2"}
    assert node1_keys == {"k1", "k3"}


def test_entries_and_row_counts():
    table = make_table(parallelism=2, nodes=2)
    table.write_instance(1, 0, {k: k for k in range(10)})
    table.write_instance(1, 1, {k: k for k in range(5)})
    assert table.entries_on_node(0, 1) == 10
    assert table.entries_on_node(1, 1) == 5
    assert table.row_count_on_node(0, 1) == 10
    assert table.snapshot_size(1) == 15


def test_write_is_copy():
    table = make_table()
    payload = {"a": 1}
    table.write_instance(1, 0, payload)
    payload["a"] = 2
    assert table.instance_state(1, 0) == {"a": 1}


def test_placement_follows_reassignment():
    assignment = {0: 0, 1: 1}
    table = FullSnapshotTable("t", 2, assignment.__getitem__)
    table.write_instance(1, 1, {"x": 1})
    assert table.entries_on_node(1, 1) == 1
    assignment[1] = 0  # instance rescheduled
    assert table.entries_on_node(1, 1) == 0
    assert table.entries_on_node(0, 1) == 1


def test_point_rows_full_table():
    table = make_table(parallelism=2, nodes=2)
    table.write_instance(1, 0, {2: {"v": 20}})
    table.write_instance(1, 1, {3: {"v": 30}})
    assert table.owner_node_of(2) == 0
    assert table.owner_node_of(3) == 1
    assert table.point_rows(2, 1) == [
        {"partitionKey": 2, "key": 2, "ssid": 1, "v": 20},
    ]
    assert table.point_rows(999, 1) == []
