"""Tests for live-state tables (Table I semantics)."""

from repro.kvstore import IMap, InstancePlacement
from repro.state import LiveStateTable


def make_table(parallelism=2, nodes=2):
    placement = InstancePlacement(parallelism, lambda i: i % nodes, nodes)
    return LiveStateTable(IMap("average", placement))


def test_apply_update_upserts():
    table = make_table()
    table.apply_update("k", {"count": 1})
    assert table.get("k") == {"count": 1}
    table.apply_update("k", {"count": 2})
    assert table.get("k") == {"count": 2}
    assert len(table) == 1


def test_apply_update_none_deletes():
    table = make_table()
    table.apply_update("k", {"count": 1})
    table.apply_update("k", None)
    assert table.get("k") is None
    assert len(table) == 0


def test_rows_follow_table_one_schema():
    table = make_table()
    table.apply_update(5, {"count": 3, "total": 45})
    rows = list(table.rows())
    assert rows == [{
        "partitionKey": 5, "key": 5, "count": 3, "total": 45,
    }]


def test_rows_on_node_partitioned_by_instance_placement():
    table = make_table(parallelism=4, nodes=2)
    for key in range(40):
        table.apply_update(key, {"v": key})
    node0 = list(table.rows_on_node(0))
    node1 = list(table.rows_on_node(1))
    assert len(node0) + len(node1) == 40
    assert table.entries_on_node(0) == len(node0)
    assert table.row_count_on_node(1) == len(node1)


def test_replace_partition_refreshes_instance_state():
    table = make_table(parallelism=2)
    # Keys 0 and 2 hash to partition 0; key 1 to partition 1.
    table.apply_update(0, {"v": "old"})
    table.apply_update(2, {"v": "old"})
    table.apply_update(1, {"v": "other-instance"})
    table.replace_partition(0, {0: {"v": "restored"}})
    assert table.get(0) == {"v": "restored"}
    assert table.get(2) is None  # stale key cleared by rollback
    assert table.get(1) == {"v": "other-instance"}  # untouched


def test_name_follows_imap():
    assert make_table().name == "average"


def test_point_rows_and_owner_live():
    table = make_table(parallelism=2, nodes=2)
    table.apply_update(0, {"v": 1})
    assert table.owner_node_of(0) == 0
    assert table.point_rows(0) == [
        {"partitionKey": 0, "key": 0, "v": 1},
    ]
    assert table.point_rows(12345) == []
