"""Tests for active replication (§VII-B: read-committed live queries).

With a hot standby maintained synchronously from the update stream, a
node failure promotes the standby instead of rolling back to the last
checkpoint — so values that live queries already observed never
disappear.
"""

import pytest

from repro import ClusterConfig, Environment
from repro.errors import ConfigurationError, StateError
from repro.config import SQueryConfig
from repro.query import QueryService
from repro.state import IsolationLevel, SQueryBackend

from ..conftest import build_average_job, make_squery_backend


def ha_env():
    return Environment(ClusterConfig(nodes=3,
                                     processing_workers_per_node=2))


def ha_backend(env):
    return make_squery_backend(env, active_replication=True)


def test_config_requires_live_state():
    with pytest.raises(ConfigurationError):
        SQueryConfig(live_state=False, active_replication=True).validate()


def test_standby_mirrors_primary_state():
    env = ha_env()
    backend = ha_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_700)
    for instance in job.instances_of("average"):
        primary = dict(instance.operator.state.items())
        standby = backend.standby_state("average", instance.instance)
        assert standby == primary


def test_replication_cost_added_per_update():
    env = ha_env()
    plain = make_squery_backend(env)
    plain.register_vertex("a", 1, lambda i: 0, True)
    replicated = ha_backend(env)
    replicated.register_vertex("b", 1, lambda i: 0, True)
    assert (replicated.live_update_cost("b")
            > plain.live_update_cost("a"))


def test_standby_unavailable_without_replication():
    env = ha_env()
    backend = make_squery_backend(env)
    backend.register_vertex("op", 1, lambda i: 0, True)
    assert backend.provides_standby is False
    with pytest.raises(StateError):
        backend.standby_state("op", 0)


def test_failover_does_not_roll_back_live_state():
    """The Fig. 5 dirty read disappears under active replication: the
    live count never decreases across a failure."""
    env = ha_env()
    backend = ha_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_800)
    service = QueryService(env, ha_mode=True)
    before = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    env.cluster.kill_node(2)
    after = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    assert after >= before  # no rollback
    assert job.metrics.recoveries == 1


def test_rollback_happens_without_replication():
    """Control for the test above: with checkpoint rollback the live
    count does drop after a failure (the Fig. 5 behaviour)."""
    env = ha_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_800)
    service = QueryService(env)
    before = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    env.cluster.kill_node(2)
    after = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    assert after < before


def test_processing_continues_forward_after_failover():
    env = ha_env()
    backend = ha_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_800)
    sum_before = sum(
        s.count for s in job.operator_state("average").values()
    )
    env.cluster.kill_node(2)
    env.run_until(4_000)
    sum_after = sum(
        s.count for s in job.operator_state("average").values()
    )
    assert sum_after > sum_before
    # Checkpointing also resumed.
    assert env.store.committed_ssid >= 3


def test_ha_mode_live_queries_read_committed():
    env = ha_env()
    backend = ha_backend(env)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_200)
    service = QueryService(env, ha_mode=True)
    live = service.execute('SELECT COUNT(*) FROM "average"')
    assert live.isolation is IsolationLevel.READ_COMMITTED
    snap = service.execute('SELECT COUNT(*) FROM "snapshot_average"')
    assert snap.isolation is IsolationLevel.SERIALIZABLE


def test_displaced_instances_resume_with_standby_state():
    env = ha_env()
    backend = ha_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=30,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_600)
    # Snapshot the standby of the instance on node 2 before the failure.
    displaced = [i for i in job.instances_of("average")
                 if i.node_id == 2]
    expected = {
        i.instance: backend.standby_state("average", i.instance)
        for i in displaced
    }
    env.cluster.kill_node(2)
    for instance in displaced:
        assert instance.node_id != 2
        assert dict(instance.operator.state.items()) == \
            expected[instance.instance]
