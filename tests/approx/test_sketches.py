"""Per-sketch unit tests: mutation support, accuracy, determinism.

Each structure is exercised on seeded workloads and its estimate is
checked against the *guaranteed* bound (count-min is one-sided by
construction) or the declared-confidence bound (HLL / reservoir — the
workloads are fixed-seed, so a passing bound is reproducible, not
flaky).
"""

import random

from repro.approx.hashing import DEFAULT_SEED, HashFamily
from repro.approx.sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    Z_VALUES,
    hll_estimate,
    hll_relative_error,
)


def make_cm(width=512, depth=4, seed=DEFAULT_SEED):
    return CountMinSketch(width, depth, HashFamily(depth, seed))


class TestCountMin:
    def test_never_underestimates(self):
        cm = make_cm()
        rng = random.Random(11)
        truth: dict[int, int] = {}
        for _ in range(5000):
            v = rng.randrange(0, 300)
            truth[v] = truth.get(v, 0) + 1
            cm.insert(v)
        for value, count in truth.items():
            assert cm.estimate(value) >= count
            assert cm.estimate(value) <= count + cm.error_bound()

    def test_deletions_keep_counters_exact_sums(self):
        cm = make_cm()
        for _ in range(40):
            cm.insert("a")
        for _ in range(25):
            cm.remove("a")
        assert cm.total == 15
        assert cm.estimate("a") >= 15
        # Removing everything restores the empty sketch exactly.
        for _ in range(15):
            cm.remove("a")
        assert cm.total == 0
        assert all(c == 0 for row in cm.rows for c in row)
        assert cm.estimate("a") == 0

    def test_absent_value_bounded_by_collisions(self):
        cm = make_cm()
        for v in range(1000):
            cm.insert(v)
        assert cm.estimate("never-inserted") <= cm.error_bound()

    def test_confidence_follows_depth(self):
        assert make_cm(depth=1).confidence < make_cm(depth=4).confidence
        assert 0.98 < make_cm(depth=4).confidence < 1.0

    def test_deterministic_across_instances(self):
        a, b = make_cm(), make_cm()
        for v in range(200):
            a.insert(v)
            b.insert(v)
        assert a.rows == b.rows


class TestHyperLogLog:
    def test_estimate_within_declared_error(self):
        for true_n in (50, 500, 5000):
            hll = HyperLogLog(256, DEFAULT_SEED)
            for v in range(true_n):
                hll.insert(f"user-{v}")
            estimate = hll_estimate(hll.registers)
            bound = Z_VALUES[0.99] * hll_relative_error(256) * estimate
            assert abs(estimate - true_n) <= max(bound, 3.0), true_n

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(256, DEFAULT_SEED)
        for _ in range(10):
            for v in range(100):
                hll.insert(v)
        assert hll.distinct_tracked == 100
        assert abs(hll_estimate(hll.registers) - 100) <= 15

    def test_removal_marks_dirty_and_refresh_rebuilds(self):
        hll = HyperLogLog(64, DEFAULT_SEED)
        for v in range(200):
            hll.insert(v)
        before = list(hll.registers)
        hll.remove(7)  # multiplicity 1 -> 0: registers stale
        assert hll.dirty
        hll.refresh()
        assert not hll.dirty
        # Rebuilding from scratch over the surviving values gives the
        # identical registers: order independence.
        fresh = HyperLogLog(64, DEFAULT_SEED)
        for v in range(200):
            if v != 7:
                fresh.insert(v)
        assert hll.registers == fresh.registers
        assert before != hll.registers or 7 not in hll.counts()

    def test_removal_of_duplicate_keeps_registers_clean(self):
        hll = HyperLogLog(64, DEFAULT_SEED)
        hll.insert("x")
        hll.insert("x")
        hll.remove("x")
        assert not hll.dirty  # multiplicity 2 -> 1: still present
        assert hll.counts() == {"x": 1}


class TestReservoir:
    def test_small_stream_is_exact(self):
        res = ReservoirSample(64, seed=3)
        for v in range(50):
            res.insert(float(v))
        k, mean, _var = res.stats()
        assert k == 50 and res.n == 50
        assert mean == sum(range(50)) / 50

    def test_sample_is_deterministic(self):
        a, b = ReservoirSample(16, seed=9), ReservoirSample(16, seed=9)
        for v in range(1000):
            a.insert(float(v))
            b.insert(float(v))
        assert a.sample == b.sample
        assert len(a.sample) == 16

    def test_sample_mean_tracks_population(self):
        res = ReservoirSample(256, seed=5)
        rng = random.Random(5)
        values = [rng.uniform(0, 100) for _ in range(20_000)]
        for v in values:
            res.insert(v)
        _k, mean, var = res.stats()
        true_mean = sum(values) / len(values)
        # CLT interval at 99% over the sample of 256.
        half_width = Z_VALUES[0.99] * (var / 256) ** 0.5
        assert abs(mean - true_mean) <= half_width

    def test_removal_dirties_and_rebuild_restores(self):
        res = ReservoirSample(8, seed=1)
        for v in range(100):
            res.insert(float(v))
        res.remove(3.0)
        assert res.dirty and res.n == 99
        survivors = [float(v) for v in range(100) if v != 3]
        res.rebuild(survivors)
        assert not res.dirty and res.n == 99
        # Identical to a fresh run over the same stream: pure function
        # of (seed, stream).
        fresh = ReservoirSample(8, seed=1)
        for v in survivors:
            fresh.insert(v)
        assert res.sample == fresh.sample
