"""Seeded hash family: determinism, type separation, independence."""

import pytest

from repro.approx.hashing import (
    DEFAULT_SEED,
    HashFamily,
    canonical_bytes,
    hash64,
    is_sketchable,
)


def test_hash64_is_deterministic():
    values = [0, 1, -1, 2**40, 3.5, -0.0, "abc", "", True, False, None]
    first = [hash64(v) for v in values]
    second = [hash64(v) for v in values]
    assert first == second


def test_hash64_stays_in_64_bits():
    for value in (0, "x" * 1000, 2**200, -(2**200), 1e300):
        h = hash64(value)
        assert 0 <= h < 2**64


def test_type_tags_separate_colliding_reprs():
    # 1, True, 1.0 and "1" are distinct stream values and must not
    # collide by construction (only by 2^-64 chance).
    hashes = {hash64(v) for v in (1, True, 1.0, "1")}
    assert len(hashes) == 4
    tags = {canonical_bytes(v)[:1] for v in (1, True, 1.0, "1", None)}
    assert len(tags) == 5


def test_seed_changes_the_function():
    assert hash64("value", seed=1) != hash64("value", seed=2)
    assert hash64("value") == hash64("value", seed=DEFAULT_SEED)


def test_family_rows_are_distinct_functions():
    family = HashFamily(depth=4)
    rows = family.hashes("payload")
    assert len(rows) == 4
    assert len(set(rows)) == 4  # astronomically unlikely to collide
    again = family.hashes("payload")
    assert rows == again


def test_family_rows_spread_uniformly():
    # Bucket 4096 values into 64 buckets per row; no bucket should be
    # wildly over-represented if the row functions are decent.
    family = HashFamily(depth=2, seed=7)
    counts = [[0] * 64 for _ in range(2)]
    for value in range(4096):
        for row, h in enumerate(family.hashes(value)):
            counts[row][h % 64] += 1
    for row in counts:
        assert max(row) < 3 * (4096 // 64)


@pytest.mark.parametrize("value,ok", [
    (1, True), (1.5, True), ("s", True), (True, True),
    (None, False), ([1], False), ({"a": 1}, False), ((1,), False),
])
def test_sketchable_types(value, ok):
    assert is_sketchable(value) is ok
