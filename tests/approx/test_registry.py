"""Registry-level tests: maintenance hooks, soundness gating, freeze
semantics, and the coherence checker that backs the sanitizers."""

import pytest

from repro.approx.registry import SketchDef, SketchRegistry
from repro.errors import StoreError
from repro.kvstore.indexes import MISSING as _MISSING

PARTITIONS = 4


def make_registry(backing: dict[int, dict]):
    return SketchRegistry(
        PARTITIONS,
        lambda partition: backing.get(partition, {}).items(),
    )


def fill(backing: dict[int, dict], rows: int = 200):
    for i in range(rows):
        backing.setdefault(i % PARTITIONS, {})[f"k{i}"] = {
            "v": i % 10,
            "x": float(i),
        }


def all_partitions():
    return list(range(PARTITIONS))


class TestDefinitions:
    def test_validate_rejects_bad_parameters(self):
        with pytest.raises(StoreError):
            SketchDef("", "countmin").validate()
        with pytest.raises(StoreError):
            SketchDef("key", "countmin").validate()  # reserved
        with pytest.raises(StoreError):
            SketchDef("v", "bloom").validate()
        with pytest.raises(StoreError):
            SketchDef("v", "hll", registers=100).validate()
        with pytest.raises(StoreError):
            SketchDef("v", "reservoir", confidence=0.5).validate()

    def test_add_is_idempotent_but_rejects_mismatch(self):
        backing: dict[int, dict] = {}
        registry = make_registry(backing)
        definition = SketchDef("v", "countmin")
        assert registry.add_definition(definition) is definition \
            or registry.add_definition(definition) == definition
        with pytest.raises(StoreError):
            registry.add_definition(SketchDef("v", "countmin", width=64))


class TestMaintenance:
    def test_backfill_then_incremental_equals_rebuild(self):
        backing: dict[int, dict] = {}
        fill(backing, 100)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("v", "countmin"))
        registry.add_definition(SketchDef("v", "hll"))
        registry.add_definition(SketchDef("x", "reservoir"))
        # Mutate through the hooks, mirroring the backing dict exactly
        # the way IMap.put/delete does.
        for i in range(100, 160):
            partition = i % PARTITIONS
            row = {"v": i % 10, "x": float(i)}
            old = backing[partition].get(f"k{i}", None)
            registry.on_put(
                partition, f"k{i}",
                old if old is not None else _MISSING, row,
            )
            backing[partition][f"k{i}"] = row
        for i in range(0, 30):
            partition = i % PARTITIONS
            registry.on_remove(partition, f"k{i}",
                               backing[partition].pop(f"k{i}"))
        assert registry.coherence_errors() == []

    def test_overwrite_with_same_value_is_skipped(self):
        backing: dict[int, dict] = {}
        fill(backing, 40)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("v", "countmin"))
        ops = registry.maintenance_ops
        row = dict(backing[0]["k0"])
        registry.on_put(0, "k0", backing[0]["k0"], row)
        assert registry.maintenance_ops == ops  # column untouched

    def test_estimates_track_mutations(self):
        backing: dict[int, dict] = {}
        fill(backing, 200)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("v", "countmin"))
        registry.add_definition(SketchDef("v", "hll"))
        estimate, bound, confidence = registry.estimate(
            all_partitions(), "count_eq", "v", value=3
        )
        exact = sum(
            1 for p in backing.values()
            for row in p.values() if row["v"] == 3
        )
        assert exact <= estimate <= exact + bound
        assert confidence > 0.98
        distinct, d_bound, _ = registry.estimate(
            all_partitions(), "distinct", "v"
        )
        assert abs(distinct - 10) <= max(d_bound, 2)


class TestSoundnessGating:
    def test_missing_column_vetoes_the_partition(self):
        backing = {0: {"a": {"other": 1}}, 1: {"b": {"v": 2}}}
        registry = SketchRegistry(2, lambda p: backing.get(p, {}).items())
        registry.add_definition(SketchDef("v", "countmin"))
        assert registry.estimate([0, 1], "count_eq", "v", 2) is None
        # Untouched degraded partitions don't veto other partitions.
        assert registry.estimate([1], "count_eq", "v", 2) is not None

    def test_unsupported_value_vetoes(self):
        backing = {0: {"a": {"v": [1, 2]}}}
        registry = SketchRegistry(1, lambda p: backing.get(p, {}).items())
        registry.add_definition(SketchDef("v", "countmin"))
        assert registry.estimate([0], "count_eq", "v", 1) is None

    def test_non_numeric_vetoes_reservoir_only(self):
        backing = {0: {"a": {"v": "text"}, "b": {"v": "more"}}}
        registry = SketchRegistry(1, lambda p: backing.get(p, {}).items())
        registry.add_definition(SketchDef("v", "reservoir"))
        registry.add_definition(SketchDef("v", "hll"))
        assert registry.estimate([0], "sum", "v") is None
        assert registry.estimate([0], "distinct", "v") is not None

    def test_nulls_are_excluded_not_vetoing(self):
        backing = {0: {"a": {"v": None}, "b": {"v": 5}, "c": {"v": 5}}}
        registry = SketchRegistry(1, lambda p: backing.get(p, {}).items())
        registry.add_definition(SketchDef("v", "countmin"))
        registry.add_definition(SketchDef("v", "hll"))
        estimate, bound, _ = registry.estimate([0], "count_eq", "v", 5)
        assert 2 <= estimate <= 2 + bound
        distinct, _, _ = registry.estimate([0], "distinct", "v")
        assert distinct == 1

    def test_sum_avg_of_zero_rows_is_sql_null(self):
        backing = {0: {}}
        registry = SketchRegistry(1, lambda p: backing.get(p, {}).items())
        registry.add_definition(SketchDef("x", "reservoir"))
        estimate, bound, confidence = registry.estimate([0], "sum", "x")
        assert estimate is None and bound == 0.0
        assert confidence == 0.95


class TestFreeze:
    def test_frozen_registry_rejects_all_mutation(self):
        backing: dict[int, dict] = {}
        fill(backing, 20)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("v", "countmin"))
        registry.freeze()
        observed = []
        registry.on_frozen_mutation = observed.append
        with pytest.raises(StoreError):
            registry.on_put(0, "k", _MISSING, {"v": 1})
        with pytest.raises(StoreError):
            registry.on_remove(0, "k0", backing[0]["k0"])
        with pytest.raises(StoreError):
            registry.rebuild_partition(0)
        with pytest.raises(StoreError):
            registry.add_definition(SketchDef("v", "hll"))
        assert len(observed) == 4
        assert "frozen sketch registry" in observed[0]

    def test_frozen_dirty_sketch_refuses_instead_of_rebuilding(self):
        backing: dict[int, dict] = {}
        fill(backing, 40)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("x", "reservoir", capacity=4))
        # Dirty one partition's reservoir, then freeze: the lazy
        # rebuild is no longer allowed, so estimation must refuse.
        registry.on_remove(0, "k0", backing[0].pop("k0"))
        registry.freeze()
        assert registry.estimate(all_partitions(), "sum", "x") is None


class TestCoherence:
    def test_detects_tampered_counters(self):
        backing: dict[int, dict] = {}
        fill(backing, 60)
        registry = make_registry(backing)
        registry.add_definition(SketchDef("v", "countmin"))
        assert registry.coherence_errors() == []
        # Bypass the API: mutate the backing dict directly.
        backing[0]["rogue"] = {"v": 3}
        problems = registry.coherence_errors()
        assert problems and "countmin(v)" in problems[0]
