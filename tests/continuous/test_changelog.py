"""Unit tests for change capture: typed events and bounded logs."""

import pytest

from repro.continuous.changelog import (
    COMMIT,
    DELETE,
    PUT,
    ROLLBACK,
    UPDATE,
    ChangeLog,
    ChangeRecorder,
)


def make_recorder(capacity=16):
    clock = {"now": 0.0}
    recorder = ChangeRecorder(
        clock=lambda: clock["now"], node_count=2,
        capacity_per_node=capacity,
    )
    return recorder, clock


def test_mutation_op_classification():
    recorder, _ = make_recorder()
    recorder.record_mutation("t", 0, 0, "k", None, 1)      # absent -> PUT
    recorder.record_mutation("t", 0, 0, "k", 1, 2)         # present -> UPDATE
    recorder.record_mutation("t", 0, 0, "k", 2, None)      # delete
    ops = [e.op for e in recorder.logs[0].events()]
    assert ops == [PUT, UPDATE, DELETE]


def test_delete_of_absent_key_is_silent():
    recorder, _ = make_recorder()
    recorder.record_mutation("t", 0, 0, "k", None, None)
    assert recorder.changes_captured == 0


def test_events_carry_values_and_time():
    recorder, clock = make_recorder()
    clock["now"] = 42.5
    recorder.record_mutation("orders", 3, 1, "o1", {"s": "old"},
                             {"s": "new"})
    (event,) = recorder.logs[1].events()
    assert event.table == "orders"
    assert event.key == "o1"
    assert event.old_value == {"s": "old"}
    assert event.new_value == {"s": "new"}
    assert event.partition == 3
    assert event.node_id == 1
    assert event.time_ms == 42.5


def test_log_is_bounded_and_counts_drops():
    log = ChangeLog(capacity=3)
    recorder, _ = make_recorder(capacity=3)
    for i in range(10):
        recorder.record_mutation("t", 0, 0, f"k{i}", None, i)
    node_log = recorder.logs[0]
    assert len(node_log) == 3
    assert node_log.appended == 10
    assert node_log.dropped == 7
    # Ring semantics: the newest events survive.
    assert [e.key for e in node_log.events()] == ["k7", "k8", "k9"]
    assert len(log) == 0  # unrelated log untouched


def test_log_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ChangeLog(capacity=0)


def test_per_node_logs_are_independent():
    recorder, _ = make_recorder()
    recorder.record_mutation("t", 0, 0, "a", None, 1)
    recorder.record_mutation("t", 1, 1, "b", None, 1)
    assert [e.key for e in recorder.logs[0].events()] == ["a"]
    assert [e.key for e in recorder.logs[1].events()] == ["b"]
    assert recorder.changes_captured == 2


def test_table_listeners_and_filtering():
    recorder, _ = make_recorder()
    seen = []
    recorder.add_listener("orders", seen.append)
    recorder.record_mutation("orders", 0, 0, "o", None, 1)
    recorder.record_mutation("riders", 0, 0, "r", None, 1)
    assert [e.key for e in seen] == ["o"]
    assert [e.key for e in recorder.logs[0].events_for_table("riders")] \
        == ["r"]
    recorder.remove_listener("orders", seen.append)
    recorder.record_mutation("orders", 0, 0, "o2", None, 1)
    assert len(seen) == 1
    assert not recorder.has_listeners("orders")


def test_rollback_and_commit_events():
    recorder, clock = make_recorder()
    global_events = []
    recorder.add_global_listener(global_events.append)
    clock["now"] = 10.0
    recorder.record_rollback("orders", 2, 0, {"k": "restored"}, ssid=7)
    recorder.record_commit(9)
    rollback, commit = global_events
    assert rollback.op == ROLLBACK
    assert rollback.partition == 2
    assert rollback.new_value == {"k": "restored"}
    assert rollback.ssid == 7
    assert commit.op == COMMIT
    assert commit.ssid == 9
    assert recorder.last_commit_ssid == 9
