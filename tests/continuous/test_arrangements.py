"""Shared arrangements: N subscriptions, one maintained index.

Acceptance: N=8 subscriptions on one table charge the shared
arrangement **once per state update**, asserted via cost-model counters.
"""

from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend


def test_eight_subscriptions_share_one_arrangement(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000)
    service = QueryService(env)
    job.start()
    env.run_for(100)

    subs = [
        service.subscribe(
            f'SELECT COUNT(*) AS n, SUM(total) AS t{i} FROM "average"'
        )
        for i in range(8)
    ]
    env.run_for(1_000)

    continuous = env.continuous
    assert continuous.active_subscriptions == 8
    # One arrangement for the table, all eight reading it.
    assert list(continuous.arrangements) == ["average"]
    arrangement = continuous.arrangements["average"]
    assert arrangement.reader_count == 8

    # THE invariant: maintenance was charged once per captured update,
    # not once per subscription per update.  (Count only this table's
    # events: the recorder also logs checkpoint COMMIT markers.)
    mutations = sum(
        len(log.events_for_table("average"))
        for log in continuous.recorder.logs.values()
    )
    assert mutations > 100
    assert arrangement.cost_charges == mutations
    assert arrangement.updates_applied == mutations
    expected_ms = mutations * env.costs.arrangement_update_ms
    assert abs(arrangement.charged_ms - expected_ms) < 1e-6

    # And every subscription still observed the stream independently.
    for sub in subs:
        assert sub.standing.deltas_applied == mutations
        assert sub.batches_received > 0
        assert sub.standing.rescans == 0


def test_arrangement_charge_is_constant_in_subscriber_count():
    """Store-side push cost must not scale with N: compare the charged
    maintenance milliseconds for 1 vs 8 subscribers over identical
    deterministic runs."""
    from repro import ClusterConfig, Environment

    def run(n_subs):
        env = Environment(
            ClusterConfig(nodes=3, processing_workers_per_node=2)
        )
        backend = make_squery_backend(env)
        job = build_average_job(env, backend=backend, rate=2000)
        service = QueryService(env)
        job.start()
        env.run_for(100)
        for i in range(n_subs):
            service.subscribe(
                'SELECT COUNT(*) AS n, SUM(total) AS t FROM "average"'
            )
        env.run_for(800)
        arrangement = env.continuous.arrangements["average"]
        return arrangement.cost_charges, arrangement.charged_ms

    charges_1, ms_1 = run(1)
    charges_8, ms_8 = run(8)
    assert charges_1 > 0
    assert charges_8 == charges_1
    assert ms_8 == ms_1


def test_arrangement_mirrors_live_table(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    service.subscribe('SELECT COUNT(*) AS n FROM "average"')
    env.run_for(500)
    arrangement = env.continuous.arrangements["average"]
    table = env.store.get_live_table("average")
    assert set(arrangement.rows) == set(table.imap.keys())


def test_unsubscribe_detaches_reader(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    first = service.subscribe('SELECT COUNT(*) AS n FROM "average"')
    second = service.subscribe('SELECT SUM(total) AS t FROM "average"')
    arrangement = env.continuous.arrangements["average"]
    assert arrangement.reader_count == 2
    env.continuous.unsubscribe(first)
    assert arrangement.reader_count == 1
    env.run_for(200)
    # The cancelled subscription stops receiving; the live one doesn't.
    stopped_at = first.batches_received
    env.run_for(300)
    assert first.batches_received == stopped_at
    assert second.batches_received > 0
