"""Standing-query engine: path classification and per-delta results.

The incremental paths must produce results *identical* to handing the
same rows to the batch SQL executor — these tests cross-check every
maintained result against ``execute_select`` over the same data.
"""

import pytest

from repro.continuous.standing import (
    PATH_FILTER_PROJECT,
    PATH_GROUPED_AGGREGATE,
    PATH_RESCAN,
    StandingQuery,
    classify,
)
from repro.sql import EvalContext, parse
from repro.sql.executor import execute_select
from repro.sql.planner import DictCatalog, ListTable
from repro.state.rows import live_row


class FakeStore:
    """Just enough of StateStore for classification."""

    def __init__(self, live=("orders",), snapshot=("snapshot_orders",)):
        self._live = set(live)
        self._snapshot = set(snapshot)

    def has_live_table(self, name):
        return name in self._live

    def has_snapshot_table(self, name):
        return name in self._snapshot


def make_standing(sql, store=None):
    return StandingQuery(sql, parse(sql), store or FakeStore(),
                         now=lambda: 1_000.0)


def batch_rows(sql, rows):
    """The batch executor's answer over the same live rows."""
    catalog = DictCatalog()
    catalog.add(ListTable("orders", tuple(rows.values())))
    result = execute_select(parse(sql), catalog,
                            EvalContext(now_ms=1_000.0))
    return result.rows


def assert_matches_batch(standing, rows):
    expected = batch_rows(standing.sql, rows)
    got = standing.current_rows()
    assert sorted(map(repr, got)) == sorted(map(repr, expected))


# -- classification ----------------------------------------------------------


@pytest.mark.parametrize("sql,path", [
    ('SELECT partitionKey, amount FROM "orders"', PATH_FILTER_PROJECT),
    ('SELECT * FROM "orders" WHERE amount > 5', PATH_FILTER_PROJECT),
    ('SELECT zone, COUNT(*), SUM(amount) FROM "orders" GROUP BY zone',
     PATH_GROUPED_AGGREGATE),
    ('SELECT COUNT(*) FROM "orders"', PATH_GROUPED_AGGREGATE),
    ('SELECT MIN(amount), MAX(amount), AVG(amount) FROM "orders"',
     PATH_GROUPED_AGGREGATE),
    # having on aggregates is fine
    ('SELECT zone, COUNT(*) FROM "orders" GROUP BY zone '
     'HAVING COUNT(*) > 2', PATH_GROUPED_AGGREGATE),
])
def test_incremental_classification(sql, path):
    chosen, _ = classify(parse(sql), FakeStore())
    assert chosen == path


@pytest.mark.parametrize("sql", [
    'SELECT COUNT(*) FROM "snapshot_orders"',            # snapshot table
    'SELECT * FROM "orders" ORDER BY amount',            # ranking
    'SELECT * FROM "orders" LIMIT 5',                    # ranking
    'SELECT DISTINCT zone FROM "orders"',                # dedup
    'SELECT COUNT(DISTINCT zone) FROM "orders"',         # distinct agg
    'SELECT * FROM "orders" WHERE ts < LOCALTIMESTAMP',  # time-dependent
    'SELECT amount, COUNT(*) FROM "orders" GROUP BY zone',  # non-key col
    'SELECT o.zone FROM "orders" o JOIN "snapshot_orders" s '
    'USING(partitionKey)',                               # join
    'SELECT zone FROM "orders" UNION ALL '
    'SELECT zone FROM "orders"',                         # union
])
def test_rescan_classification(sql):
    chosen, reason = classify(parse(sql), FakeStore())
    assert chosen == PATH_RESCAN
    assert reason  # every fallback explains itself


def test_explain_names_path():
    standing = make_standing(
        'SELECT zone, SUM(amount) FROM "orders" GROUP BY zone'
    )
    text = standing.explain()
    assert PATH_GROUPED_AGGREGATE in text
    assert "SUM" in text


# -- filter/project maintenance ----------------------------------------------


def test_filter_project_tracks_batch_executor():
    standing = make_standing(
        'SELECT partitionKey, amount FROM "orders" WHERE amount >= 10'
    )
    rows = {}

    def mutate(key, value):
        old = rows.get(key)
        if value is None:
            rows.pop(key, None)
            new = None
        else:
            new = live_row(key, value)
            rows[key] = new
        standing.on_delta(key, old, new)

    standing.seed({})
    mutate("a", {"amount": 5, "zone": "n"})    # filtered out
    mutate("b", {"amount": 15, "zone": "s"})   # included
    assert_matches_batch(standing, rows)
    mutate("a", {"amount": 20, "zone": "n"})   # crosses the predicate
    assert_matches_batch(standing, rows)
    mutate("b", {"amount": 1, "zone": "s"})    # falls back out
    assert_matches_batch(standing, rows)
    mutate("a", None)                          # deleted entirely
    assert_matches_batch(standing, rows)
    assert standing.rescans == 0


def test_filter_project_select_star():
    standing = make_standing('SELECT * FROM "orders" WHERE amount > 0')
    standing.seed({})
    row = live_row("k", {"amount": 3, "zone": "w"})
    entries = standing.on_delta("k", None, row)
    assert entries == [{"action": "upsert", "key": "k", "row": row}]
    # Unchanged value: no delta emitted.
    assert standing.on_delta("k", row, dict(row)) == []


# -- grouped aggregate maintenance -------------------------------------------


def make_agg(sql='SELECT zone, COUNT(*) AS n, SUM(amount) AS total, '
                 'AVG(amount) AS mean, MIN(amount) AS lo, '
                 'MAX(amount) AS hi FROM "orders" GROUP BY zone'):
    return make_standing(sql)


def drive(standing, mutations):
    rows = {}
    for key, value in mutations:
        old = rows.get(key)
        if value is None:
            rows.pop(key, None)
            new = None
        else:
            new = live_row(key, value)
            rows[key] = new
        standing.on_delta(key, old, new)
    return rows


def test_grouped_aggregates_match_batch_executor():
    standing = make_agg()
    standing.seed({})
    rows = drive(standing, [
        ("a", {"zone": "n", "amount": 10}),
        ("b", {"zone": "n", "amount": 20}),
        ("c", {"zone": "s", "amount": 5}),
        ("a", {"zone": "n", "amount": 12}),   # update in place
        ("b", {"zone": "s", "amount": 20}),   # moves groups
        ("c", None),                          # delete empties a group? no
        ("d", {"zone": "w", "amount": 7}),
    ])
    assert_matches_batch(standing, rows)
    assert standing.rescans == 0


def test_group_disappears_on_last_retract():
    standing = make_standing(
        'SELECT zone, COUNT(*) AS n FROM "orders" GROUP BY zone'
    )
    standing.seed({})
    drive(standing, [("a", {"zone": "n", "amount": 1})])
    assert standing.current_rows() == [{"zone": "n", "n": 1}]
    entries = standing.on_delta("a", live_row("a", {"zone": "n",
                                                    "amount": 1}), None)
    assert entries == [{"action": "delete", "key": ("n",), "row": None}]
    assert standing.current_rows() == []


def test_min_max_retract_falls_back_to_next_extreme():
    standing = make_standing(
        'SELECT MIN(amount) AS lo, MAX(amount) AS hi FROM "orders"'
    )
    standing.seed({})
    rows = drive(standing, [
        ("a", {"amount": 5}), ("b", {"amount": 9}), ("c", {"amount": 1}),
    ])
    assert standing.current_rows() == [{"lo": 1, "hi": 9}]
    # Retract the current extremes: the multiset must fall back.
    rows = dict(rows)
    standing.on_delta("c", rows.pop("c"), None)
    standing.on_delta("b", rows.pop("b"), None)
    assert standing.current_rows() == [{"lo": 5, "hi": 5}]
    assert standing.rescans == 0


def test_global_aggregate_over_empty_input_matches_executor():
    standing = make_standing(
        'SELECT COUNT(*) AS n, SUM(amount) AS total FROM "orders"'
    )
    standing.seed({})
    assert_matches_batch(standing, {})  # COUNT=0, SUM=NULL row
    rows = drive(standing, [("a", {"amount": 4})])
    assert_matches_batch(standing, rows)
    standing.on_delta("a", live_row("a", {"amount": 4}), None)
    assert_matches_batch(standing, {})


def test_having_filters_maintained_groups():
    standing = make_standing(
        'SELECT zone, COUNT(*) AS n FROM "orders" GROUP BY zone '
        'HAVING COUNT(*) >= 2'
    )
    standing.seed({})
    rows = drive(standing, [
        ("a", {"zone": "n", "amount": 1}),
        ("b", {"zone": "n", "amount": 1}),
        ("c", {"zone": "s", "amount": 1}),
    ])
    assert_matches_batch(standing, rows)  # only zone n qualifies
    standing.on_delta("b", rows.pop("b"), None)
    assert_matches_batch(standing, rows)  # n drops below the bar


def test_where_clause_gates_group_membership():
    standing = make_standing(
        'SELECT zone, SUM(amount) AS total FROM "orders" '
        'WHERE amount > 0 GROUP BY zone'
    )
    standing.seed({})
    rows = drive(standing, [
        ("a", {"zone": "n", "amount": 5}),
        ("b", {"zone": "n", "amount": -3}),   # excluded by WHERE
    ])
    assert_matches_batch(standing, rows)
    # Update flips b across the WHERE boundary.
    old = rows["b"]
    rows["b"] = live_row("b", {"zone": "n", "amount": 3})
    standing.on_delta("b", old, rows["b"])
    assert_matches_batch(standing, rows)


def test_seed_from_existing_rows():
    rows = {
        "a": live_row("a", {"zone": "n", "amount": 2}),
        "b": live_row("b", {"zone": "s", "amount": 8}),
    }
    standing = make_standing(
        'SELECT zone, COUNT(*) AS n FROM "orders" GROUP BY zone'
    )
    standing.seed(rows)
    assert_matches_batch(standing, rows)


def test_rescan_path_marks_dirty_only():
    standing = make_standing('SELECT DISTINCT zone FROM "orders"')
    standing.seed({})
    assert standing.dirty
    standing.set_published_rows([{"zone": "n"}])
    assert not standing.dirty
    assert standing.on_delta("a", None, live_row("a", {"zone": "s"})) == []
    assert standing.dirty
    assert standing.current_rows() == [{"zone": "n"}]
