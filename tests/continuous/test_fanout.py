"""Fan-out end to end: plan dedup, residual routing, tiers, eviction.

Acceptance: structurally identical subscriptions share one maintained
plan (maintenance charged once per update per plan, not per
subscriber); residual subscribers only ever see their own rows; the
coalesced and digest tiers bound delivery work; a never-draining
subscriber walks the slow-consumer ladder to eviction without punishing
its co-subscribers; and cancelling the last subscription tears the
arrangement (and its change capture) down.
"""

from repro import ClusterConfig, Environment
from repro.config import CostModel
from repro.continuous.delivery import (
    BATCH_DELTA,
    BATCH_EVICTED,
    TIER_COALESCED,
    TIER_DIGEST,
)
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

SQL = 'SELECT COUNT(*) AS n, SUM(count) AS events FROM "average"'
STAR = 'SELECT * FROM "average"'


def start(env, rate=2000, shared_plans=None, **job_kwargs):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=rate, **job_kwargs)
    service = QueryService(env, shared_plans=shared_plans)
    job.start()
    env.run_for(100)
    return job, service


# -- plan deduplication ------------------------------------------------------


def test_identical_subscriptions_share_one_plan(env):
    _job, service = start(env)
    subs = [service.subscribe(SQL) for _ in range(8)]
    env.run_for(500)
    continuous = env.continuous
    assert continuous.active_subscriptions == 8
    assert continuous.shared_plan_count == 1
    (plan,) = continuous.plans.values()
    assert plan.subscriber_count == 8
    assert all(sub.plan is plan for sub in subs)
    # One standing query maintained for all eight.
    assert continuous.arrangements["average"].reader_count == 1


def test_ablation_gives_every_subscription_a_private_plan(env):
    _job, service = start(env, shared_plans=False)
    [service.subscribe(SQL) for _ in range(8)]
    env.run_for(500)
    continuous = env.continuous
    assert continuous.shared_plan_count == 8
    assert continuous.arrangements["average"].reader_count == 8
    assert continuous.router.residual_filter_drops == 0


def test_plan_maintenance_charged_once_per_plan():
    """THE perf invariant: with sharing on, adding subscribers to one
    plan must not add standing-apply charges; the ablation pays per
    subscriber."""

    def run(n_subs, shared):
        env = Environment(
            ClusterConfig(nodes=3, processing_workers_per_node=2)
        )
        _job, service = start(env, shared_plans=shared)
        for _ in range(n_subs):
            service.subscribe(SQL)
        env.run_for(800)
        return env.continuous.plan_maintenance_ops

    ops_shared_1 = run(1, shared=True)
    ops_shared_8 = run(8, shared=True)
    ops_ablation_8 = run(8, shared=False)
    assert ops_shared_1 > 0
    # Identical deterministic runs: the shared plan applies each update
    # once however many subscribers attached.
    assert ops_shared_8 == ops_shared_1
    assert ops_ablation_8 == 8 * ops_shared_1


# -- residual routing end to end ---------------------------------------------


def test_residual_subscribers_share_plan_without_leakage(env):
    _job, service = start(env, limit_per_instance=400)
    views = {}
    delivered = {}

    def capture(key):
        def on_batch(_sub, batch):
            for entry in batch.entries:
                if entry["row"] is not None:
                    delivered.setdefault(key, []).append(entry["row"])
        return on_batch

    for key in (0, 1, 2, 3):
        views[key] = service.subscribe(
            f'SELECT * FROM "average" WHERE partitionKey = {key}',
            on_batch=capture(key),
        )
    env.run_for(2_000)  # sources exhaust; stream quiesces

    continuous = env.continuous
    # All four collapsed onto the unfiltered SELECT * plan.
    assert continuous.shared_plan_count == 1
    assert continuous.router.residual_filter_drops > 0
    # No cross-subscriber leakage: every row each subscriber ever
    # received carries its own partition key...
    for key, rows in delivered.items():
        assert rows
        assert all(row["partitionKey"] == key for row in rows)
    # ...and the quiesced views equal the table's ground truth.
    table = env.store.get_live_table("average")
    for key, sub in views.items():
        expected = [
            row for row in table.rows() if row["partitionKey"] == key
        ]
        assert sub.rows() == expected


def test_mixed_residuals_join_the_unfiltered_plan(env):
    _job, service = start(env)
    plain = service.subscribe(STAR)
    filtered = service.subscribe(
        'SELECT * FROM "average" WHERE partitionKey = 5'
    )
    env.run_for(400)
    assert env.continuous.shared_plan_count == 1
    assert plain.plan is filtered.plan
    assert len(plain.rows()) > len(filtered.rows()) == 1


# -- arrangement teardown (leak regression) ----------------------------------


def test_last_unsubscribe_releases_arrangement_and_capture(env):
    _job, service = start(env)
    table = env.store.get_live_table("average")
    first = service.subscribe(SQL)
    env.run_for(200)
    continuous = env.continuous
    assert "average" in continuous.arrangements
    assert table._capture is continuous.recorder

    continuous.unsubscribe(first)
    # The whole chain is torn down: plan, arrangement, change capture.
    assert continuous.plans == {}
    assert continuous.arrangements == {}
    assert table._capture is None

    # Re-subscribing rebuilds cleanly from the current table state.
    second = service.subscribe(SQL)
    env.run_for(300)
    assert "average" in continuous.arrangements
    assert table._capture is continuous.recorder
    assert second.deltas_received > 0
    assert second.rows()[0]["n"] == len(table)
    maintained = second.standing.current_rows()[0]["n"]
    assert maintained == len(table)


# -- delivery tiers ----------------------------------------------------------


def test_coalesced_tier_merges_hot_keys(env):
    _job, service = start(env, rate=4000, limit_per_instance=2000)
    realtime = service.subscribe(STAR)
    coalesced = service.subscribe(STAR, tier=TIER_COALESCED)
    env.run_for(3_000)
    # Same shared plan, same final view...
    assert realtime.plan is coalesced.plan
    assert coalesced.rows() == realtime.rows()
    # ...but the coalesced tier folded repeated per-key updates into
    # far fewer shipped entries and batches.
    assert coalesced.entries_merged > 0
    assert coalesced.deltas_received < realtime.deltas_received
    assert coalesced.batches_received < realtime.batches_received


def test_digest_tier_snapshots_on_a_clock(env):
    _job, service = start(env, rate=4000, limit_per_instance=2000)
    digest = service.subscribe(STAR, tier=TIER_DIGEST)
    realtime = service.subscribe(STAR)
    env.run_for(3_000)
    # Digest subscribers never receive deltas — only periodic
    # residual-filtered snapshots, at most one per digest interval.
    assert digest.deltas_received == 0
    assert digest.snapshots_received > 1
    horizon = 3_000
    ceiling = horizon / env.costs.push_digest_interval_ms + 2
    assert digest.batches_received <= ceiling
    assert digest.batches_received < realtime.batches_received
    # The quiesced digest still converges to the true result.
    assert digest.rows() == realtime.rows()


# -- slow-consumer eviction --------------------------------------------------


def test_never_draining_subscriber_is_coalesced_then_evicted():
    env = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        costs=CostModel(push_evict_stalled_after_ms=300.0),
    )
    _job, service = start(env, rate=4000)
    kinds = []
    # Acks arrive every 1000 ms — far slower than the 300 ms stall
    # deadline, so the window never drains in time.
    slow = service.subscribe(
        SQL, max_outstanding=1, consume_ms=1_000.0,
        on_batch=lambda _s, batch: kinds.append(batch.kind),
    )
    fast = service.subscribe(SQL)

    samples = []

    def sample():
        samples.append(len(slow.pending))
        if env.sim.now < 2_500:
            env.sim.schedule(10.0, sample)

    env.sim.schedule(10.0, sample)
    env.run_for(2_500)

    # Ladder step 1 first (deltas coalesced away), then step 2: evicted
    # with a terminal batch the client actually observes.
    assert slow.batches_coalesced > 0
    assert slow.evicted
    assert not slow.active
    assert kinds[-1] == BATCH_EVICTED
    assert env.continuous.slow_consumers_evicted == 1
    assert slow.id not in env.continuous.subscriptions
    # No unbounded queue growth at any sampled instant.
    assert max(samples) <= env.costs.push_max_pending_deltas
    assert slow.pending == []
    # The co-subscriber kept its realtime stream the whole time.
    assert fast.active
    assert not fast.evicted
    assert fast.batches_coalesced == 0
    assert fast.deltas_received > 100


def test_acking_subscriber_is_never_evicted(env):
    _job, service = start(env, rate=4000)
    # Slow but draining: each ack clears the stall countdown.
    slow = service.subscribe(SQL, max_outstanding=2, consume_ms=80.0)
    env.run_for(3_000)
    assert slow.active
    assert not slow.evicted
    assert env.continuous.slow_consumers_evicted == 0


# -- explain -----------------------------------------------------------------


def test_explain_subscription_reports_shared_plan_decision(env):
    _job, service = start(env)
    sql = 'SELECT * FROM "average" WHERE partitionKey = 7'
    text = service.explain_subscription(sql)
    assert "path: incremental-filter-project" in text
    assert "shared plans: on" in text
    assert "residual filter: partitionKey = 7" in text
    assert "plan: creates a new shared plan" in text

    service.subscribe(STAR)
    joined = service.explain_subscription(sql)
    assert "plan: joins shared plan" in joined
    assert "(1 subscriber)" in joined


def test_explain_subscription_ablation_reports_private_plan(env):
    _job, service = start(env, shared_plans=False)
    text = service.explain_subscription(
        'SELECT * FROM "average" WHERE partitionKey = 7'
    )
    assert "shared plans: off" in text
    assert "residual filter: none" in text
    assert "plan: private (ablation: dedup disabled)" in text


def test_subscription_explain_renders_plan_and_tier(env):
    _job, service = start(env)
    service.subscribe(STAR)
    sub = service.subscribe(
        'SELECT * FROM "average" WHERE partitionKey = 3',
        tier=TIER_COALESCED,
    )
    text = sub.explain()
    assert f"shared plan: {sub.plan.fingerprint} (2 subscribers)" in text
    assert "residual filter: partitionKey = 3" in text
    assert "delivery tier: coalesced" in text
