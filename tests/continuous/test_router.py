"""The subscription router: hash-routed residual fan-out.

Acceptance: one shared plan's delta stream reaches exactly the
subscribers whose residual matches — O(matching) deliveries per delta,
with synthesized retractions when an update moves a row across residual
buckets, and drops counted for every non-matching group subscriber.
"""

from dataclasses import dataclass, field

from repro.continuous.plans import canonicalize
from repro.continuous.router import SharedPlan, SubscriptionRouter
from repro.sql import parse

from .test_plans import FakeStore


@dataclass
class FakeSubscription:
    id: int
    received: list = field(default_factory=list)


def make_plan(sql='SELECT * FROM "orders"'):
    canonical = canonicalize(parse(sql), FakeStore(),
                             extract_residual=False)
    return SharedPlan(canonical.fingerprint, canonical, sql, standing=None)


def attach(router, plan, sub_id, sql):
    canonical = canonicalize(parse(sql), FakeStore())
    subscription = FakeSubscription(sub_id)
    router.attach(plan, subscription, canonical)
    return subscription, canonical


def make_router():
    log = []
    router = SubscriptionRouter(
        lambda subscription, entry: subscription.received.append(entry)
    )
    return router, log


def upsert(key, row):
    return {"action": "upsert", "key": key, "row": row}


def delete(key):
    return {"action": "delete", "key": key, "row": None}


def test_unfiltered_subscribers_receive_everything():
    router, _ = make_router()
    plan = make_plan()
    a, _ = attach(router, plan, 1, 'SELECT * FROM "orders"')
    b, _ = attach(router, plan, 2, 'SELECT * FROM "orders"')
    entry = upsert("k", {"zone": "n", "amount": 5})
    router.route(plan, [entry], prev_row=None)
    assert a.received == [entry]
    assert b.received == [entry]
    assert router.deltas_routed == 2
    assert router.residual_filter_drops == 0


def test_residual_routes_to_matching_bucket_only():
    router, _ = make_router()
    plan = make_plan()
    north, _ = attach(router, plan, 1,
                      'SELECT * FROM "orders" WHERE zone = \'n\'')
    south, _ = attach(router, plan, 2,
                      'SELECT * FROM "orders" WHERE zone = \'s\'')
    entry = upsert("k", {"zone": "n", "amount": 5})
    router.route(plan, [entry], prev_row=None)
    assert north.received == [entry]
    assert south.received == []
    assert router.deltas_routed == 1
    # south's group membership was skipped without evaluating anything.
    assert router.residual_filter_drops == 1


def test_move_synthesizes_retraction_for_old_bucket():
    router, _ = make_router()
    plan = make_plan()
    north, _ = attach(router, plan, 1,
                      'SELECT * FROM "orders" WHERE zone = \'n\'')
    south, _ = attach(router, plan, 2,
                      'SELECT * FROM "orders" WHERE zone = \'s\'')
    old_row = {"zone": "n", "amount": 5}
    new_row = {"zone": "s", "amount": 5}
    router.route(plan, [upsert("k", new_row)], prev_row=old_row)
    # south gains the row; north retracts it — exactly what their
    # private standing queries over the original WHERE would emit.
    assert south.received == [upsert("k", new_row)]
    assert north.received == [delete("k")]
    assert router.deltas_routed == 2


def test_update_within_bucket_does_not_retract():
    router, _ = make_router()
    plan = make_plan()
    north, _ = attach(router, plan, 1,
                      'SELECT * FROM "orders" WHERE zone = \'n\'')
    old_row = {"zone": "n", "amount": 5}
    new_row = {"zone": "n", "amount": 9}
    router.route(plan, [upsert("k", new_row)], prev_row=old_row)
    assert north.received == [upsert("k", new_row)]


def test_delete_routes_to_previous_owner():
    router, _ = make_router()
    plan = make_plan()
    north, _ = attach(router, plan, 1,
                      'SELECT * FROM "orders" WHERE zone = \'n\'')
    south, _ = attach(router, plan, 2,
                      'SELECT * FROM "orders" WHERE zone = \'s\'')
    prev = {"zone": "n", "amount": 5}
    router.route(plan, [delete("k")], prev_row=prev)
    assert north.received == [delete("k")]
    assert south.received == []


def test_multi_column_residual_requires_all_values():
    router, _ = make_router()
    plan = make_plan()
    both, _ = attach(
        router, plan, 1,
        'SELECT * FROM "orders" WHERE zone = \'n\' AND amount = 5')
    router.route(plan, [upsert("a", {"zone": "n", "amount": 5})],
                 prev_row=None)
    router.route(plan, [upsert("b", {"zone": "n", "amount": 6})],
                 prev_row=None)
    assert [e["key"] for e in both.received] == ["a"]


def test_numeric_bucket_coalescing_matches_sql_equality():
    router, _ = make_router()
    plan = make_plan()
    ints, _ = attach(router, plan, 1,
                     'SELECT * FROM "orders" WHERE amount = 1')
    # A float row value hash-routes into the integer bucket, exactly as
    # SQL `=` would compare them equal.
    router.route(plan, [upsert("k", {"zone": "n", "amount": 1.0})],
                 prev_row=None)
    assert len(ints.received) == 1


def test_detach_removes_subscriber_and_empty_groups():
    router, _ = make_router()
    plan = make_plan()
    north, canonical = attach(router, plan, 1,
                              'SELECT * FROM "orders" WHERE zone = \'n\'')
    assert plan.subscriber_count == 1
    assert plan.groups
    router.detach(plan, north, canonical)
    assert plan.subscriber_count == 0
    assert not plan.groups
    router.route(plan, [upsert("k", {"zone": "n"})], prev_row=None)
    assert north.received == []


def test_route_all_reaches_every_subscriber():
    router, _ = make_router()
    plan = make_plan()
    subs = [attach(router, plan, i, 'SELECT * FROM "orders"')[0]
            for i in range(3)]
    entry = upsert("k", {"zone": "n"})
    router.route_all(plan, [entry])
    for subscription in subs:
        assert subscription.received == [entry]
    assert router.deltas_routed == 3
