"""Rollback recovery must notify live subscribers consistently.

Acceptance: node failure + rollback recovery delivers a consistent
rollback notification (one per failure, carrying the rolled-back result
at the committed snapshot) to live subscribers — Fig. 5c for push
clients.
"""

from repro.continuous.delivery import BATCH_ROLLBACK
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

SQL = 'SELECT COUNT(*) AS n, SUM(count) AS events FROM "average"'


def start(env, rate=2000, checkpoint_interval_ms=500):
    backend = make_squery_backend(env)
    job = build_average_job(
        env, backend=backend, rate=rate,
        checkpoint_interval_ms=checkpoint_interval_ms,
    )
    service = QueryService(env)
    job.start()
    return job, service


def test_rollback_notification_reaches_live_subscribers(env):
    job, service = start(env)
    env.run_for(1_200)  # at least one checkpoint committed
    committed_before = env.store.committed_ssid
    assert committed_before is not None

    batches = []
    subs = [
        service.subscribe(
            SQL, on_batch=lambda _s, batch, log=batches: log.append(batch)
        )
        for _ in range(3)
    ]
    env.run_for(300)

    env.cluster.kill_node(1)
    env.run_for(400)

    assert job.metrics.recoveries == 1
    for sub in subs:
        # Exactly one rollback notification per live subscriber.
        assert sub.rollbacks_received == 1
        assert sub.last_rollback_ssid == env.store.committed_ssid
    rollbacks = [b for b in batches if b.kind == BATCH_ROLLBACK]
    assert len(rollbacks) == 3


def test_rollback_batch_carries_rolled_back_state(env):
    job, service = start(env)
    env.run_for(1_200)
    sub = service.subscribe(SQL)
    env.run_for(300)
    pre_failure_events = sub.rows()[0]["events"]

    observed = {}

    def capture(subscription, batch):
        if batch.kind == BATCH_ROLLBACK:
            # apply_batch ran just before on_batch: the client view at
            # notification time must be exactly the batch's contents.
            observed["view"] = subscription.rows()
            observed["entries"] = [
                dict(entry["row"]) for entry in batch.entries
            ]

    sub.on_batch = capture
    env.cluster.kill_node(2)
    env.run_for(400)

    assert sub.rollbacks_received == 1
    assert observed["view"] == observed["entries"]
    # The notified result is the state at the committed snapshot: the
    # uncommitted progress the subscriber had already seen is rolled
    # back, so the notified event count must not exceed it.
    (row,) = observed["entries"]
    assert row["n"] == 40
    assert row["events"] <= pre_failure_events


def test_subscription_keeps_flowing_after_recovery(env):
    job, service = start(env)
    env.run_for(1_200)
    sub = service.subscribe(SQL)
    env.run_for(300)
    env.cluster.kill_node(1)
    env.run_for(400)
    after_recovery = sub.rows()[0]["events"]
    env.run_for(1_000)  # replay catches up and new deltas flow
    assert sub.deltas_received > 0
    assert sub.rows()[0]["events"] > after_recovery
    assert sub.standing.rescans == 0  # still the incremental path


def test_rollback_without_commit_notifies_empty_state(env):
    job, service = start(env, checkpoint_interval_ms=5_000)
    env.run_for(300)  # no checkpoint committed yet
    assert env.store.committed_ssid is None
    observed = {}

    def capture(subscription, batch):
        if batch.kind == BATCH_ROLLBACK:
            observed["view"] = subscription.rows()

    sub = service.subscribe(SQL, on_batch=capture)
    env.run_for(100)
    assert sub.rows()[0]["n"] > 0
    env.cluster.kill_node(1)
    env.run_for(200)
    assert sub.rollbacks_received == 1
    # Restart from scratch: the consistent notified state is empty
    # (the executor still emits the COUNT=0 row for a global aggregate).
    assert observed["view"] == [{"n": 0, "events": None}]


def test_pending_prefailure_deltas_are_discarded(env):
    job, service = start(env)
    env.run_for(1_200)
    # A completely stalled subscriber accumulates in-flight state.
    sub = service.subscribe(SQL, max_outstanding=1, consume_ms=200.0)
    env.run_for(300)
    dropped_before = sub.deltas_dropped
    env.cluster.kill_node(2)
    env.run_for(300)
    # Whatever was pending before the failure was discarded — the
    # rollback replay reached the subscriber despite the full window.
    assert sub.rollbacks_received == 1
    assert sub.deltas_dropped >= dropped_before
