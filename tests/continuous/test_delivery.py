"""Push delivery: flow control, coalescing, and bounded queues.

Acceptance: a slow subscriber triggers coalescing (deltas degrade to
snapshots) without unbounded queue growth.
"""

from repro.continuous.delivery import (
    BATCH_DELTA,
    BATCH_SNAPSHOT,
)
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

SQL = 'SELECT COUNT(*) AS n, SUM(count) AS events FROM "average"'


def test_fast_subscriber_gets_deltas(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    batches = []
    sub = service.subscribe(
        SQL, on_batch=lambda _s, batch: batches.append(batch)
    )
    env.run_for(1_000)
    kinds = {batch.kind for batch in batches}
    assert BATCH_DELTA in kinds
    assert sub.batches_coalesced == 0
    assert sub.deltas_received > 50
    # First batch seeds the view with a snapshot.
    assert batches[0].kind == BATCH_SNAPSHOT


def test_slow_subscriber_coalesces_and_stays_bounded(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=4000)
    service = QueryService(env)
    job.start()
    env.run_for(100)

    # Pathologically slow consumer: each batch takes 80 ms to digest
    # while the state changes every ~0.5 ms.
    slow = service.subscribe(SQL, max_outstanding=2, consume_ms=80.0)
    fast = service.subscribe(SQL)

    queue_samples = []

    def sample():
        queue_samples.append(len(slow.pending) + slow.outstanding)
        if env.sim.now < 3_000:
            env.sim.schedule(10.0, sample)

    env.sim.schedule(10.0, sample)
    env.run_for(3_000)

    # Backpressure engaged: deltas were dropped and coalesced away.
    assert slow.batches_coalesced > 0
    assert slow.deltas_dropped > 0
    assert slow.snapshots_received > 0
    assert env.continuous.batches_coalesced >= slow.batches_coalesced

    # Bounded: in-flight batches never exceed the window, and the
    # server-side pending buffer never outgrows one batch interval's
    # worth of deltas (~rate * interval), far below total updates.
    assert slow.outstanding <= slow.max_outstanding
    assert max(queue_samples) < 500
    total_updates = env.continuous.arrangements["average"].updates_applied
    assert total_updates > 5_000  # plenty of pressure was applied

    # The slow consumer still converges: its view carries the standing
    # result from its most recent snapshot, not garbage.
    assert slow.rows()
    assert slow.rows()[0]["n"] == 40

    # The fast subscriber was never punished for its slow peer.
    assert fast.batches_coalesced == 0
    assert fast.deltas_received > 100


def test_coalesced_snapshot_resyncs_view(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=3000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    slow = service.subscribe(SQL, max_outstanding=1, consume_ms=120.0)
    env.run_for(2_000)
    # Let the stream drain so the final snapshot reflects a quiesced
    # standing result, then compare view to the maintained truth.
    env.continuous.unsubscribe(slow)
    assert slow.snapshots_received > 0
    view_events = slow.rows()[0]["events"]
    maintained = slow.standing.current_rows()[0]["events"]
    # The view lags (staleness is the price of coalescing) but is a
    # genuine prior state of the maintained result, not corrupt.
    assert 0 < view_events <= maintained


def test_cancellation_stops_delivery(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    sub = service.subscribe(SQL)
    env.run_for(300)
    env.continuous.unsubscribe(sub)
    received = sub.batches_received
    env.run_for(500)
    assert sub.batches_received == received
    assert not sub.active
    assert env.continuous.active_subscriptions == 0


def test_push_channels_bounded_by_node_pairs(env):
    """Push traffic shares one FIFO channel per (entry, subscriber)
    node pair: the channel table stays O(nodes²) however many
    subscriptions come and go, so cancellation needs no close."""
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    subs = [service.subscribe(SQL) for _ in range(12)]
    env.run_for(500)
    network = env.cluster.network
    push_channels = [
        channel for channel in network._last_delivery
        if isinstance(channel, tuple) and channel[0] == "push"
    ]
    assert push_channels  # traffic flowed
    nodes = len(env.cluster.nodes)
    assert len(push_channels) <= nodes * nodes
    # No channel is keyed by subscription id: cancelling all of them
    # leaves the (bounded) destination channels untouched.
    for sub in subs:
        assert ("push", sub.id) not in network._last_delivery
        env.continuous.unsubscribe(sub)
    assert env.continuous.active_subscriptions == 0
