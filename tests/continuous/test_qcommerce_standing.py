"""Standing queries over the qcommerce workload.

Acceptance: a standing aggregate over qcommerce live state stays
delta-maintained (zero re-scans) across >= 10,000 state updates.
"""

from repro import ClusterConfig, Environment
from repro.query import QueryService
from repro.sql import EvalContext, parse
from repro.sql.executor import execute_select
from repro.sql.planner import DictCatalog, ListTable
from repro.workloads.qcommerce import build_qcommerce_job

from ..conftest import make_squery_backend

#: The push variant of the paper's Query 3 shape: orders per delivery
#: zone, straight off live order-info state.
ZONE_SQL = ('SELECT deliveryZone, COUNT(*) AS orders FROM "orderinfo" '
            'GROUP BY deliveryZone')
STATE_SQL = ('SELECT orderState, COUNT(*) AS n FROM "orderstate" '
             'GROUP BY orderState')


def test_standing_aggregate_survives_10k_updates_without_rescan():
    env = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2)
    )
    backend = make_squery_backend(env)
    job = build_qcommerce_job(env, backend, orders=800,
                              events_per_s=6_000)
    service = QueryService(env)
    job.start()
    env.run_for(100)

    zone_sub = service.subscribe(ZONE_SQL)
    state_sub = service.subscribe(STATE_SQL)
    assert zone_sub.path == "incremental-grouped-aggregate"
    assert state_sub.path == "incremental-grouped-aggregate"

    # Drive until the two subscribed tables have seen >= 10k updates.
    target = 10_000
    while True:
        env.run_for(500)
        applied = (zone_sub.standing.deltas_applied
                   + state_sub.standing.deltas_applied)
        if applied >= target:
            break
        assert env.sim.now < 60_000, "workload too slow to reach 10k"

    # THE acceptance invariant: delta-maintained throughout, re-scanned
    # never.
    assert zone_sub.standing.deltas_applied \
        + state_sub.standing.deltas_applied >= 10_000
    assert zone_sub.standing.rescans == 0
    assert state_sub.standing.rescans == 0
    assert env.continuous.rescans_run == 0

    # The maintained results are exactly what a scan would compute from
    # the live tables right now.
    for sub, table in ((zone_sub, "orderinfo"), (state_sub, "orderstate")):
        live = env.store.get_live_table(table)
        catalog = DictCatalog()
        catalog.add(ListTable(table, tuple(live.rows())))
        expected = execute_select(
            parse(sub.sql), catalog, EvalContext(now_ms=env.sim.now)
        ).rows
        maintained = sub.standing.current_rows()
        assert sorted(map(repr, maintained)) == sorted(map(repr, expected))

    # And the pushed view converges to the same result once in-flight
    # batches settle (sources keep running, so allow the final batch).
    assert zone_sub.deltas_received > 0
    total_orders = sum(row["orders"] for row in zone_sub.rows())
    assert total_orders > 0


def test_subscription_survives_checkpoints_on_incremental_backend():
    """Commits (and incremental-snapshot pruning) must not disturb a
    live-table standing query: no rescans, no spurious rollbacks."""
    env = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2)
    )
    backend = make_squery_backend(env, incremental=True,
                                  prune_chain_length=2)
    job = build_qcommerce_job(env, backend, orders=300,
                              events_per_s=2_000,
                              checkpoint_interval_ms=300)
    service = QueryService(env)
    job.start()
    env.run_for(100)
    sub = service.subscribe(STATE_SQL)
    env.run_for(3_000)
    assert len(env.store.available_ssids()) > 0  # commits happened
    assert sub.standing.rescans == 0
    assert sub.rollbacks_received == 0
    assert sub.rows()
