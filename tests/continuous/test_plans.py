"""Plan canonicalization: fingerprints and residual extraction.

Acceptance: structurally identical statements (modulo subscriber-
specific equality constants) canonicalize to one fingerprint, with the
constants folded into a per-subscriber residual; extraction never fires
where the residual would not commute with the shared plan.
"""

from repro.continuous.plans import (
    canonicalize,
    fingerprint_statement,
    format_literal,
)
from repro.sql import parse


class FakeStore:
    """Just enough of StateStore for classification."""

    def __init__(self, live=("orders",), snapshot=("snapshot_orders",)):
        self._live = set(live)
        self._snapshot = set(snapshot)

    def has_live_table(self, name):
        return name in self._live

    def has_snapshot_table(self, name):
        return name in self._snapshot


def canon(sql, extract_residual=True):
    return canonicalize(parse(sql), FakeStore(),
                        extract_residual=extract_residual)


# -- fingerprints ------------------------------------------------------------


def test_same_statement_same_fingerprint_regardless_of_spelling():
    a = fingerprint_statement(parse('SELECT * FROM "orders" WHERE amount > 5'))
    b = fingerprint_statement(parse('select *  from "orders"  where amount > 5'))
    assert a == b


def test_different_statements_different_fingerprints():
    a = canon('SELECT * FROM "orders" WHERE amount > 5')
    b = canon('SELECT * FROM "orders" WHERE amount > 6')
    assert a.fingerprint != b.fingerprint


def test_residual_constants_collapse_to_one_fingerprint():
    a = canon('SELECT * FROM "orders" WHERE zone = \'n\' AND amount > 5')
    b = canon('SELECT * FROM "orders" WHERE amount > 5 AND zone = \'s\'')
    assert a.fingerprint == b.fingerprint
    assert a.has_residual and b.has_residual
    assert a.residual_display == "zone = 'n'"
    assert b.residual_display == "zone = 's'"
    # Both share the statement WHERE amount > 5.
    plain = canon('SELECT * FROM "orders" WHERE amount > 5')
    assert a.fingerprint == plain.fingerprint
    assert not plain.has_residual


def test_fully_extracted_where_collapses_to_unfiltered_plan():
    a = canon('SELECT * FROM "orders" WHERE zone = \'n\'')
    plain = canon('SELECT * FROM "orders"')
    assert a.fingerprint == plain.fingerprint
    assert a.statement.where is None


# -- extraction rules --------------------------------------------------------


def test_equality_extracts_from_either_side():
    left = canon('SELECT * FROM "orders" WHERE zone = \'n\'')
    right = canon('SELECT * FROM "orders" WHERE \'n\' = zone')
    assert left.fingerprint == right.fingerprint
    assert left.residual_columns == right.residual_columns == ("zone",)
    assert left.residual_values == right.residual_values == ("n",)


def test_multi_column_residual_sorted_by_column_name():
    a = canon('SELECT * FROM "orders" WHERE zone = \'n\' AND amount = 2')
    b = canon('SELECT * FROM "orders" WHERE amount = 2 AND zone = \'n\'')
    assert a.fingerprint == b.fingerprint
    assert a.residual_columns == b.residual_columns == ("amount", "zone")
    assert a.residual_values == b.residual_values == (2, "n")


def test_numeric_equality_coalesces_like_sql_comparison():
    """1, 1.0 and TRUE compare equal under SQL `=`; the hash-routing
    value tuples must coalesce identically so bucket routing agrees
    with predicate evaluation."""
    ints = canon('SELECT * FROM "orders" WHERE amount = 1')
    floats = canon('SELECT * FROM "orders" WHERE amount = 1.0')
    assert ints.residual_values == floats.residual_values


def test_aggregate_where_is_never_split():
    plan = canon('SELECT zone, COUNT(*) AS n FROM "orders" '
                 "WHERE zone = 'n' GROUP BY zone")
    assert not plan.has_residual
    assert plan.statement.where is not None


def test_rescan_path_is_never_split():
    plan = canon('SELECT * FROM "orders" WHERE zone = \'n\' '
                 "ORDER BY amount")
    assert not plan.has_residual


def test_invisible_column_stays_in_shared_plan():
    # `zone` is not in the output row: routing could not evaluate the
    # residual against delta entries, so the conjunct stays shared.
    plan = canon('SELECT amount FROM "orders" WHERE zone = \'n\'')
    assert not plan.has_residual
    assert plan.statement.where is not None


def test_renamed_column_is_not_visible():
    plan = canon('SELECT zone AS z FROM "orders" WHERE zone = \'n\'')
    assert not plan.has_residual


def test_bare_projected_column_is_visible():
    plan = canon('SELECT zone, amount FROM "orders" WHERE zone = \'n\'')
    assert plan.has_residual
    assert plan.residual_columns == ("zone",)


def test_qualified_column_bound_to_from_table_extracts():
    bound = canon('SELECT * FROM "orders" o WHERE o.zone = \'n\'')
    assert bound.has_residual
    foreign = canon('SELECT * FROM "orders" o WHERE x.zone = \'n\'')
    assert not foreign.has_residual


def test_null_equality_is_not_extracted():
    # `col = NULL` never matches; it keeps its degenerate semantics in
    # the shared plan rather than becoming a residual bucket.
    plan = canon('SELECT * FROM "orders" WHERE zone = NULL')
    assert not plan.has_residual


def test_non_equality_conjuncts_stay_shared():
    plan = canon('SELECT * FROM "orders" '
                 "WHERE amount > 5 AND zone = 'n' AND amount < 50")
    assert plan.has_residual
    assert plan.residual_columns == ("zone",)
    # Both range conjuncts survive in the shared statement.
    shared = canon('SELECT * FROM "orders" '
                   "WHERE amount > 5 AND amount < 50")
    assert plan.fingerprint == shared.fingerprint


def test_extraction_gate_off_keeps_statement_verbatim():
    plan = canon('SELECT * FROM "orders" WHERE zone = \'n\'',
                 extract_residual=False)
    assert not plan.has_residual
    assert plan.statement.where is not None
    shared = canon('SELECT * FROM "orders" WHERE zone = \'n\'')
    assert plan.fingerprint != shared.fingerprint


def test_format_literal_spells_sql():
    assert format_literal(True) == "TRUE"
    assert format_literal(False) == "FALSE"
    assert format_literal(None) == "NULL"
    assert format_literal(7) == "7"
    assert format_literal("o'brien") == "'o''brien'"
