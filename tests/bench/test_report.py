"""Tests for text reporting helpers."""

from repro.bench import format_series, format_table
from repro.bench.report import percentile_headers, percentile_row


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 22.25]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in text and "22.25" in text


def test_format_table_numbers_right_aligned():
    text = format_table(["n"], [[1.0], [100.0]])
    rows = text.splitlines()[2:]
    assert rows[0].endswith("1.00")
    assert rows[1].endswith("100.00")


def test_format_series_contains_points():
    text = format_series("jet", {0.0: 1.0, 50.0: 2.0},
                         points=(0.0, 50.0))
    assert text.startswith("jet")
    assert "p0=" in text and "p50=" in text


def test_percentile_headers_and_row_align():
    headers = percentile_headers((0.0, 99.9))
    assert headers == ["p0", "p99.9"]
    row = percentile_row("jet", {0.0: 1.234, 99.9: 5.678},
                         points=(0.0, 99.9))
    assert row == ["jet", 1.23, 5.68]


def test_missing_points_render_nan():
    import math

    row = percentile_row("x", {}, points=(50.0,))
    assert math.isnan(row[1])
