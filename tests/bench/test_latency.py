"""Tests for latency recording and percentile computation."""

import math

from repro.bench import LatencyRecorder, percentiles
from repro.bench.latency import PAPER_PERCENTILES


def test_percentiles_of_known_distribution():
    samples = [float(i) for i in range(1, 101)]
    summary = percentiles(samples, (0.0, 50.0, 99.0))
    assert summary[0.0] == 1.0
    assert summary[50.0] == 50.5
    assert 99.0 < summary[99.0] <= 100.0


def test_percentiles_empty_is_nan():
    summary = percentiles([])
    assert all(math.isnan(v) for v in summary.values())


def test_paper_percentile_axis():
    assert PAPER_PERCENTILES == (0.0, 50.0, 90.0, 99.0, 99.9, 99.99)


def test_recorder_accumulates():
    recorder = LatencyRecorder("x")
    recorder.record(1.0)
    recorder.extend([2.0, 3.0])
    assert recorder.count == 3
    assert recorder.samples == [1.0, 2.0, 3.0]
    assert recorder.mean() == 2.0


def test_recorder_percentile():
    recorder = LatencyRecorder()
    recorder.extend([float(i) for i in range(11)])
    assert recorder.percentile(50) == 5.0
    assert recorder.percentile(0) == 0.0
    assert recorder.percentile(100) == 10.0


def test_recorder_summary_uses_paper_axis():
    recorder = LatencyRecorder()
    recorder.extend([1.0, 2.0, 3.0])
    summary = recorder.summary()
    assert set(summary) == set(PAPER_PERCENTILES)


def test_empty_recorder_is_nan():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.mean())
    assert math.isnan(recorder.percentile(50))
