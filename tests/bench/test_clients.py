"""Tests for the query load drivers."""

from repro.query import QueryService
from repro.bench import ClosedLoopClient, OpenLoopSqlClient
from repro.simtime import Simulator

from ..conftest import build_average_job, make_squery_backend


class FakeHandle:
    def __init__(self, latency_ms):
        self.latency_ms = latency_ms


def test_closed_loop_maintains_concurrency():
    sim = Simulator()
    in_flight = {"count": 0, "max": 0}

    def submit(on_done):
        in_flight["count"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["count"])

        def finish():
            in_flight["count"] -= 1
            on_done(FakeHandle(2.0))

        sim.schedule(2.0, finish)

    client = ClosedLoopClient(sim, submit, concurrency=3)
    client.start()
    sim.run_until(20.0)
    assert in_flight["max"] == 3
    # 3 concurrent clients x (20ms / 2ms per query) completions.
    assert len(client.completions) == 30


def test_closed_loop_throughput_window():
    sim = Simulator()

    def submit(on_done):
        sim.schedule(1.0, on_done, FakeHandle(1.0))

    client = ClosedLoopClient(sim, submit, concurrency=1)
    client.start()
    sim.run_until(100.0)
    # 1 query per ms -> 1000 q/s inside any window.
    assert client.throughput_per_s(50.0, 100.0) == 1000.0
    assert len(client.latencies_in(0.0, 10.0)) == 9  # [0, 10) half-open


def test_closed_loop_stop_halts_resubmission():
    sim = Simulator()

    def submit(on_done):
        sim.schedule(1.0, on_done, FakeHandle(1.0))

    client = ClosedLoopClient(sim, submit, concurrency=1)
    client.start()
    sim.run_until(5.0)
    client.stop()
    count = len(client.completions)
    sim.run_until(20.0)
    assert len(client.completions) <= count + 1


def test_open_loop_sql_client_submits_at_rate(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_200)
    service = QueryService(env)
    client = OpenLoopSqlClient(
        env.sim, service,
        ['SELECT COUNT(*) FROM "snapshot_average"'],
        rate_per_s=100.0,
    )
    client.start()
    env.run_for(2_000)
    client.stop()
    assert 120 < len(client.completions) < 280
    assert client.errors == 0


def test_open_loop_counts_errors(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend)
    job.start()
    env.run_until(100)  # before the first commit
    service = QueryService(env)
    client = OpenLoopSqlClient(
        env.sim, service,
        ['SELECT COUNT(*) FROM "snapshot_average"'],
        rate_per_s=50.0,
    )
    client.start()
    env.run_for(300)
    client.stop()
    assert client.errors > 0


def test_open_loop_rotates_statements(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_200)
    service = QueryService(env)
    client = OpenLoopSqlClient(
        env.sim, service,
        ['SELECT COUNT(*) FROM "average"',
         'SELECT SUM(count) FROM "average"'],
        rate_per_s=50.0, materialize=True,
    )
    client.start()
    env.run_for(1_000)
    client.stop()
    assert len(client.completions) > 10
