"""Tests for trendline fits."""

import pytest

from repro.bench import linear_fit, power_law_fit


def test_linear_fit_exact():
    fit = linear_fit([1, 2, 3], [5, 7, 9])
    slope, intercept = fit.coefficients
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(23.0)


def test_linear_fit_noisy_r_squared_below_one():
    fit = linear_fit([1, 2, 3, 4], [2, 4.5, 5.5, 8.5])
    assert 0.9 < fit.r_squared < 1.0


def test_linear_fit_needs_two_points():
    with pytest.raises(ValueError):
        linear_fit([1], [1])


def test_power_law_exact():
    xs = [1, 10, 100, 1000]
    ys = [5 * x ** -0.7 for x in xs]
    fit = power_law_fit(xs, ys)
    scale, exponent = fit.coefficients
    assert scale == pytest.approx(5.0)
    assert exponent == pytest.approx(-0.7)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(5 * 10 ** -0.7)


def test_power_law_requires_positive_values():
    with pytest.raises(ValueError):
        power_law_fit([1, 2], [0, 1])
    with pytest.raises(ValueError):
        power_law_fit([0, 2], [1, 1])


def test_power_law_fits_paper_fig14_data_well():
    """The paper reports R² = 0.993 (S-QUERY) and 0.97 (TSpoon) on
    these exact throughput numbers."""
    keys = [1, 10, 100, 1000]
    squery = [115037, 23186, 3133, 906]
    tspoon = [53900, 26100, 3200, 890]
    assert power_law_fit(keys, squery).r_squared > 0.99
    assert power_law_fit(keys, tspoon).r_squared > 0.96


def test_constant_data_r_squared_one():
    fit = linear_fit([1, 2, 3], [5, 5, 5])
    assert fit.r_squared == pytest.approx(1.0)


def test_predict_unknown_kind_rejected():
    from repro.bench.fitting import Fit

    with pytest.raises(ValueError):
        Fit("spline", (1.0,), 1.0).predict(1.0)
