"""Tests for the benchmark harness (scaling rules and experiment
plumbing at miniature scale)."""

import pytest

from repro.bench.harness import (
    BlockUpdateOperator,
    BlockUpdateSource,
    build_delta_job,
    make_backend,
    paper_rate,
    preload_qcommerce_state,
    run_overhead_experiment,
    run_snapshot_experiment,
    scaled_cluster,
    sim_rate,
)
from repro.dataflow.backend import VanillaBackend
from repro.env import Environment
from repro.state import SQueryBackend


def test_rate_scaling_roundtrip():
    config = scaled_cluster(nodes=3, workers_per_node=1)
    scaled = sim_rate(1_000_000, config)
    assert scaled == pytest.approx(1_000_000 * 3 / 36)
    assert paper_rate(scaled, config) == pytest.approx(1_000_000)


def test_scaled_cluster_shape():
    config = scaled_cluster(nodes=7, workers_per_node=2)
    assert config.nodes == 7
    assert config.processing_workers_per_node == 2
    assert config.query_workers_per_node == 4
    assert config.backup_count == 1


def test_make_backend_modes():
    env = Environment(scaled_cluster())
    assert isinstance(make_backend(env, "jet"), VanillaBackend)
    backend = make_backend(env, "live+snap")
    assert isinstance(backend, SQueryBackend)
    assert backend.config.live_state and backend.config.snapshot_state
    env2 = Environment(scaled_cluster())
    live_only = make_backend(env2, "live")
    assert live_only.config.live_state
    assert not live_only.config.snapshot_state
    env3 = Environment(scaled_cluster())
    snap_only = make_backend(env3, "snap", incremental=True)
    assert snap_only.config.incremental
    with pytest.raises(ValueError):
        make_backend(env3, "warp")


def test_make_backend_unknown_mode_raises():
    env = Environment(scaled_cluster())
    with pytest.raises(ValueError):
        make_backend(env, "nope")


def test_overhead_experiment_miniature():
    result = run_overhead_experiment(
        "snap", 100_000, warmup_ms=200, measure_ms=500,
        paper_sellers=200,
    )
    assert result.sink_records > 100
    assert result.latency.count == result.sink_records
    assert result.latency.percentile(50) > 0


def test_snapshot_experiment_miniature():
    result = run_snapshot_experiment(
        1_000, mode="snap", checkpoints=5, nodes=3,
        events_per_s=500,
    )
    assert result.checkpoints >= 4
    assert result.total.percentile(50) > 0
    assert result.phase1.percentile(50) <= result.total.percentile(50)


def test_preload_places_keys_on_owning_instances():
    from repro.cluster.partition import stable_hash
    from repro.workloads.qcommerce import build_qcommerce_job

    env = Environment(scaled_cluster(3, 1))
    backend = make_backend(env, "live+snap")
    job = build_qcommerce_job(env, backend, orders=50, riders=10,
                              parallelism=3)
    preload_qcommerce_state(job, 50, 10)
    instances = job.instances_of("orderinfo")
    for index, instance in enumerate(instances):
        for key, _ in instance.operator.state.items():
            assert stable_hash(key) % 3 == index
    total = sum(len(i.operator.state) for i in instances)
    assert total == 50


def test_block_update_source_routes_to_own_instance():
    source = BlockUpdateSource(100.0, rows_per_instance=10,
                               parallelism=4, block=3)
    for instance in range(4):
        for seq in range(5):
            key, payload = source.generate(instance, seq)
            assert key == instance
            start, count, stamp = payload
            assert count == 3
            assert 0 <= start < 10


def test_block_update_operator_writes_local_keys():
    from repro.dataflow.operators import Emitter
    from repro.dataflow.records import Record

    operator = BlockUpdateOperator(rows_per_instance=10)
    operator.open(2, 4)
    operator.process(Record(2, (8, 3, 1.0), 0.0), Emitter())
    keys = sorted(k for k, _ in operator.state.items())
    # start 8, count 3 wraps: indices 8, 9, 0 -> keys 2 + 4*idx.
    assert keys == [2, 2 + 4 * 8, 2 + 4 * 9]
    assert all(k % 4 == 2 for k in keys)


def test_delta_job_delta_fraction_bounds_dirty_keys():
    setup = build_delta_job(
        7_000, delta_fraction=0.1, incremental=True, nodes=7,
        records_per_s=2000, block=16,
    )
    setup.job.start()
    setup.env.run_until(3_500)
    table = setup.backend.snapshot_table("deltastate")
    ssid = setup.env.store.committed_ssid
    # Dirty keys per checkpoint stay within the 10% delta subspace
    # (plus the first full snapshot of the warm start).
    chain = table._chains[0]
    later_deltas = [
        len(delta) for version, delta in chain.deltas.items()
        if version > 1
    ]
    # Block writes may overrun the span by at most one block.
    bound = int(setup.rows_per_instance * 0.1) + 16
    assert later_deltas
    assert all(size <= bound for size in later_deltas)
