"""Tests for the sustainable-throughput search."""

from repro.bench import find_sustainable_rate
from repro.bench.throughput import RateProbe


def synthetic_probe(capacity):
    """A system that keeps up until `capacity` then collapses."""

    def probe(rate):
        if rate <= capacity:
            return RateProbe(rate, rate, p50_ms=2.0, p99_ms=5.0)
        return RateProbe(rate, capacity, p50_ms=500.0, p99_ms=900.0)

    return probe


def test_search_converges_to_capacity():
    best = find_sustainable_rate(synthetic_probe(700.0), 100.0, 1600.0,
                                 iterations=10)
    assert 680.0 < best <= 700.0


def test_search_returns_low_if_everything_fails():
    def probe(rate):
        return RateProbe(rate, rate * 0.5, p50_ms=999.0, p99_ms=999.0)

    assert find_sustainable_rate(probe, 50.0, 100.0) == 50.0


def test_probe_sustainability_criteria():
    ok = RateProbe(100.0, 99.0, p50_ms=3.0, p99_ms=10.0)
    assert ok.sustainable()
    lagging = RateProbe(100.0, 80.0, p50_ms=3.0, p99_ms=10.0)
    assert not lagging.sustainable()
    slow = RateProbe(100.0, 100.0, p50_ms=80.0, p99_ms=200.0)
    assert not slow.sustainable()
    assert slow.sustainable(p50_bound_ms=100.0)
