"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import (
    ClusterConfig,
    Environment,
    JobConfig,
    KeyedAggregateOperator,
    Pipeline,
    SinkOperator,
    SQueryBackend,
    SQueryConfig,
)
from repro.dataflow import Job
from repro.dataflow.sources import CallableSource
from repro.analysis.sanitizers import drain_runtimes, set_default_config
from repro.config import SanitizerConfig


@pytest.fixture(autouse=True)
def _armed_sanitizers():
    """Arm the cheap runtime sanitizers for every test environment.

    Each ``Environment`` built while this fixture is active gets the
    fail-fast invariant detectors (snapshot immutability, lock leaks,
    billing classification, dead-node scheduling); a violation raises
    :class:`repro.errors.SanitizerError` at the offending call.  The
    O(state) fingerprint pass stays off — the CI smoke covers it.

    End-of-test ``verify()`` runs only for runtimes armed through this
    default: sanitizer tests that pass an explicit config (to trigger
    violations on purpose) are left alone.
    """
    set_default_config(SanitizerConfig(enabled=True, fail_fast=True))
    try:
        yield
    finally:
        set_default_config(None)
        runtimes = drain_runtimes()
    for runtime in runtimes:
        if runtime.from_default:
            runtime.verify()


@pytest.fixture
def env():
    """A small three-node environment (2 processing workers per node)."""
    return Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2)
    )


@pytest.fixture
def single_node_env():
    return Environment(
        ClusterConfig(nodes=1, processing_workers_per_node=2,
                      backup_count=0)
    )


@dataclass
class Avg:
    """A small state object with named fields (exercises row shaping)."""

    count: int
    total: float


def accumulate_avg(state, value):
    if state is None:
        return Avg(1, float(value))
    return Avg(state.count + 1, state.total + float(value))


def counting_source(total_rate_per_s: float = 2000.0, keys: int = 40,
                    limit_per_instance: int | None = None):
    """Deterministic source: cycles keys, value = seq % 10."""

    def gen(instance, seq):
        return (instance * 97 + seq) % keys, float(seq % 10)

    return CallableSource(gen, total_rate_per_s,
                          limit_per_instance=limit_per_instance)


def build_average_job(env, backend=None, rate=2000.0, keys=40,
                      parallelism=3, checkpoint_interval_ms=1000.0,
                      limit_per_instance=None):
    """source -> stateful 'average' operator -> sink."""
    pipeline = Pipeline()
    pipeline.add_source(
        "nums", counting_source(rate, keys, limit_per_instance)
    )
    pipeline.add_operator(
        "average",
        lambda: KeyedAggregateOperator(
            accumulate_avg, lambda k, s: s.total / s.count
        ),
    )
    pipeline.add_operator("sink", SinkOperator)
    pipeline.connect("nums", "average")
    pipeline.connect("average", "sink")
    return Job(env, pipeline, JobConfig(
        checkpoint_interval_ms=checkpoint_interval_ms,
        parallelism=parallelism,
    ), backend)


def make_squery_backend(env, **overrides):
    config = SQueryConfig(**overrides) if overrides else SQueryConfig()
    return SQueryBackend(env.cluster, env.store, config)
