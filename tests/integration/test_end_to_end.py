"""Whole-system integration tests across all S-QUERY configurations."""

import pytest

from repro import ClusterConfig, Environment, VANILLA, SQueryConfig
from repro.query import DirectObjectInterface, QueryService
from repro.state import SQueryBackend

from ..conftest import build_average_job, make_squery_backend


def fresh_env(nodes=3):
    return Environment(ClusterConfig(nodes=nodes,
                                     processing_workers_per_node=2))


def test_all_four_figure_configurations_run():
    """The four Fig. 8 configurations all process the same stream."""
    results = {}
    for mode, config in {
        "live+snap": SQueryConfig(),
        "live": SQueryConfig(snapshot_state=False),
        "snap": SQueryConfig(live_state=False),
        "jet": VANILLA,
    }.items():
        env = fresh_env()
        if config is VANILLA:
            backend = None
        else:
            backend = SQueryBackend(env.cluster, env.store, config)
        job = build_average_job(env, backend=backend, rate=1000,
                                keys=10, limit_per_instance=200)
        job.start()
        env.run_until(30_000)
        state = job.operator_state("average")
        results[mode] = sum(s.count for s in state.values())
    assert set(results.values()) == {600}


def test_live_and_snapshot_views_converge_when_stream_stops():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=15,
                            limit_per_instance=300,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(30_000)  # stream exhausted, further checkpoints idle
    service = QueryService(env)
    live = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    snap = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"'
    ).result.rows[0]["s"]
    assert live == snap == 900


def test_sql_and_direct_interfaces_agree():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            limit_per_instance=100)
    job.start()
    env.run_until(30_000)
    service = QueryService(env)
    doi = DirectObjectInterface(env)
    sql_rows = service.execute(
        'SELECT partitionKey, count FROM "average"'
    ).result
    direct = doi.submit_get("average", list(range(10)))
    env.run_for(100)
    by_key = {row["partitionKey"]: row["count"] for row in sql_rows.rows}
    assert {k: v.count for k, v in direct.values.items()} == by_key


def test_incremental_and_full_snapshots_answer_identically():
    answers = {}
    for incremental in (False, True):
        env = fresh_env()
        backend = make_squery_backend(env, incremental=incremental,
                                      prune_chain_length=3)
        job = build_average_job(env, backend=backend, rate=2000, keys=12,
                                limit_per_instance=250,
                                checkpoint_interval_ms=400)
        job.start()
        env.run_until(30_000)
        service = QueryService(env)
        result = service.execute(
            'SELECT partitionKey, count, total FROM "snapshot_average" '
            "ORDER BY partitionKey"
        ).result
        answers[incremental] = result.tuples()
    assert answers[False] == answers[True]
    assert len(answers[True]) == 12


def test_multi_version_query_with_higher_retention():
    env = fresh_env()
    backend = make_squery_backend(env, retained_snapshots=4)
    job = build_average_job(env, backend=backend, rate=2000, keys=8,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(3_500)
    assert len(env.store.available_ssids()) == 4
    service = QueryService(env)
    # Query two distinct retained versions: counts grow between them.
    old, new = env.store.available_ssids()[0], env.store.available_ssids()[-1]
    count_old = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=old
    ).result.rows[0]["s"]
    count_new = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=new
    ).result.rows[0]["s"]
    assert count_new > count_old


def test_queries_during_failure_and_recovery():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=10,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_700)
    service = QueryService(env)
    ssid = env.store.committed_ssid
    before = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=ssid
    ).result.rows[0]["s"]
    env.cluster.kill_node(2)
    after = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"', snapshot_id=ssid
    ).result.rows[0]["s"]
    assert after == before
    env.run_until(6_000)
    # The system keeps checkpointing and querying after recovery.
    assert env.store.committed_ssid > ssid


def test_simplifying_topologies_use_case():
    """§III's example: instead of a second job counting items, query the
    averaging operator's internal count directly."""
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000, keys=5,
                            limit_per_instance=100)
    job.start()
    env.run_until(30_000)
    service = QueryService(env)
    result = service.execute(
        'SELECT SUM(count) AS items_so_far FROM "average"'
    ).result
    assert result.rows[0]["items_so_far"] == 300


@pytest.mark.parametrize("nodes", [1, 2, 5])
def test_various_cluster_sizes(nodes):
    env = Environment(ClusterConfig(
        nodes=nodes, processing_workers_per_node=2,
        backup_count=1 if nodes > 1 else 0,
    ))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000, keys=10,
                            limit_per_instance=100, parallelism=nodes)
    job.start()
    env.run_until(30_000)
    service = QueryService(env)
    result = service.execute('SELECT SUM(count) AS s FROM "average"')
    assert result.result.rows[0]["s"] == 100 * nodes
