"""Compound integration scenarios combining several features at once."""

from repro import ClusterConfig, Environment, JobConfig, Pipeline
from repro.dataflow import (
    Job,
    SinkOperator,
    TumblingWindowOperator,
)
from repro.dataflow.sources import CallableSource
from repro.query import QueryService, StateAuditor

from ..conftest import make_squery_backend


def test_windows_with_incremental_lsm_and_failure():
    """Tumbling windows + LSM incremental snapshots + node failure +
    multi-version query, all in one run."""
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env, incremental=True,
                                  incremental_backend="lsm",
                                  retained_snapshots=3)

    def add(acc, value):
        return (acc or 0) + value

    pipeline = Pipeline()
    pipeline.add_source(
        "events", CallableSource(lambda i, s: (s % 8, 1), 2000.0)
    )
    pipeline.add_operator(
        "win", lambda: TumblingWindowOperator(400.0, add)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("events", "win")
    pipeline.connect("win", "out")
    job = Job(env, pipeline, JobConfig(parallelism=3,
                                       checkpoint_interval_ms=300),
              backend)
    job.start()
    env.run_until(1_500)
    env.cluster.kill_node(1)
    env.run_until(4_000)

    service = QueryService(env)
    live = service.execute('SELECT COUNT(*) AS n FROM "win"')
    assert live.result.rows[0]["n"] == 8
    multi = service.submit(
        'SELECT ssid, COUNT(*) AS n FROM "snapshot_win" '
        "GROUP BY ssid ORDER BY ssid",
        all_versions=True,
    )
    env.run_for(1_000)
    assert multi.error is None
    assert len(multi.result) == 3  # three retained versions
    assert job.metrics.recoveries == 1
    assert job.sink_received("out") > 0


def test_union_audit_and_direct_after_recovery(env):
    """UNION queries, subject access, and direct lookups all agree on
    the post-recovery state."""
    from ..conftest import build_average_job

    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=16,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(1_300)
    env.cluster.kill_node(2)
    env.run_until(3_000)

    service = QueryService(env)
    union = service.execute(
        "SELECT 'live' AS v, COUNT(*) AS n FROM \"average\" UNION ALL "
        "SELECT 'snap', COUNT(*) FROM \"snapshot_average\""
    )
    counts = {row["v"]: row["n"] for row in union.result.rows}
    assert counts == {"live": 16, "snap": 16}

    auditor = StateAuditor(env)
    report = auditor.submit_subject_access(5)
    env.run_for(100)
    assert "average" in report.tables_holding_data()
    live_count = report.tables["average"].live_value.count

    from repro.query import DirectObjectInterface

    doi = DirectObjectInterface(env)
    lookup = doi.submit_get("average", [5])
    env.run_for(50)
    assert lookup.values[5].count >= live_count


def test_explain_matches_actual_execution(env):
    """EXPLAIN's join strategy is the one the executor actually uses —
    verified indirectly through identical results for both join
    orders."""
    from ..conftest import build_average_job
    from repro.sql import explain
    from repro.sql.planner import DictCatalog, ListTable

    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=1000, keys=8,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(1_300)
    sql = ('SELECT COUNT(*) AS n FROM "average" '
           'JOIN "snapshot_average" USING(partitionKey)')
    catalog = DictCatalog({
        "average": ListTable("average", ()),
        "snapshot_average": ListTable("snapshot_average", ()),
    })
    plan_text = explain(sql, catalog)
    assert "hash join USING(partitionKey)" in plan_text
    service = QueryService(env)
    result = service.execute(sql)
    assert result.result.rows[0]["n"] == 8
