"""The paper's isolation examples, reproduced end to end.

Fig. 5: a live-state query returns an uncommitted value that a failure
then rolls back — the read turns out dirty (read uncommitted).
Fig. 6: a snapshot query pinned to snapshot id N returns the same value
before and after the failure (serialisable snapshot isolation).
"""

from repro import ClusterConfig, Environment, JobConfig, Pipeline
from repro.dataflow import Job, KeyedAggregateOperator, SinkOperator
from repro.dataflow.sources import CallableSource
from repro.query import QueryService

from ..conftest import make_squery_backend

KEY = 0


def build_count_job(env, backend, rate=100.0):
    """A 'count operator' like the figures': one key, counts records."""
    pipeline = Pipeline()
    pipeline.add_source(
        "events", CallableSource(lambda i, s: (KEY, 1), rate)
    )
    pipeline.add_operator(
        "count",
        lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v),
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("events", "count")
    pipeline.connect("count", "out")
    return Job(env, pipeline, JobConfig(checkpoint_interval_ms=1000,
                                        parallelism=1), backend)


def count_from(result):
    return result.rows[0]["n"]


def test_fig5_live_query_reads_dirty_value():
    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_count_job(env, backend)
    service = QueryService(env)
    job.start()

    # (a) run past the first checkpoint: a snapshot exists.
    env.run_until(1_200)
    snapshot_value = backend.snapshot_table("count").instance_state(
        env.store.committed_ssid, 0
    )[KEY]

    # (b) more records arrive; the live query sees the newer value.
    env.run_until(1_800)
    live_before = count_from(service.execute(
        'SELECT value AS n FROM "count"'
    ).result)
    assert live_before > snapshot_value

    # (c) failure: the state rolls back to the snapshot; the earlier
    # live read was dirty.
    node = 1 if job.node_of("count", 0) == 1 else 0
    env.cluster.kill_node(node)
    live_after = count_from(service.execute(
        'SELECT value AS n FROM "count"'
    ).result)
    assert live_after < live_before

    # Replay eventually re-processes the lost records.
    env.run_until(4_000)
    recovered = count_from(service.execute(
        'SELECT value AS n FROM "count"'
    ).result)
    assert recovered >= live_before


def test_fig6_snapshot_query_stable_across_failure():
    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_count_job(env, backend)
    service = QueryService(env)
    job.start()

    env.run_until(1_200)
    ssid = env.store.committed_ssid
    before = count_from(service.execute(
        'SELECT value AS n FROM "snapshot_count"', snapshot_id=ssid
    ).result)

    env.run_until(1_800)
    during = count_from(service.execute(
        'SELECT value AS n FROM "snapshot_count"', snapshot_id=ssid
    ).result)
    assert during == before  # live progress is invisible

    node = 1 if job.node_of("count", 0) == 1 else 0
    env.cluster.kill_node(node)
    env.run_until(2_200)
    after = count_from(service.execute(
        'SELECT value AS n FROM "snapshot_count"', snapshot_id=ssid
    ).result)
    assert after == before  # even a failure cannot change the answer


def test_latest_snapshot_pointer_advances_atomically():
    """Default snapshot queries always read a complete snapshot: the
    observed count per snapshot id is monotone and consistent with the
    checkpoint boundaries."""
    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_count_job(env, backend, rate=500.0)
    service = QueryService(env)
    job.start()

    observed = {}
    for step in range(8):
        env.run_until(1_200 + step * 500)
        execution = service.execute(
            'SELECT value AS n FROM "snapshot_count"'
        )
        observed.setdefault(execution.snapshot_id, set()).add(
            count_from(execution.result)
        )
    # Each snapshot id always returned one stable value.
    assert all(len(values) == 1 for values in observed.values())
    # And later snapshots hold larger counts.
    ordered = [values.pop() for _, values in sorted(observed.items())]
    assert ordered == sorted(ordered)
