"""A soak scenario: long run, periodic failures, continuous queries.

Asserts the global invariants that must hold at *every* observation
point, not just at the end:

* snapshot queries pinned to an id never change their answer;
* the committed pointer is monotone;
* per-key live counts never exceed the number of records the sources
  have handed to the system;
* after the stream ends, live and snapshot views converge to the exact
  expected totals despite three failures along the way.
"""

from repro import ClusterConfig, Environment
from repro.query import QueryService

from ..conftest import build_average_job, make_squery_backend

KEYS = 24
PER_INSTANCE = 1200
PARALLELISM = 4


def test_soak_with_periodic_failures_and_queries():
    env = Environment(ClusterConfig(nodes=4,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=3000, keys=KEYS,
                            parallelism=PARALLELISM,
                            limit_per_instance=PER_INSTANCE,
                            checkpoint_interval_ms=400)
    job.start()
    service = QueryService(env)

    observed_committed = []
    pinned_answers = {}
    kill_at = {2_000: 3, 4_500: 2, 7_000: 1}

    for step in range(1, 25):
        horizon = step * 500.0
        env.run_until(horizon)
        for when, node in list(kill_at.items()):
            if horizon >= when:
                env.cluster.kill_node(node)
                del kill_at[when]
        committed = env.store.committed_ssid
        if committed is None:
            continue
        observed_committed.append(committed)
        # Re-ask every previously pinned snapshot that is still
        # retained: the answer must be byte-identical.
        for ssid in list(pinned_answers):
            if ssid not in env.store.available_ssids():
                del pinned_answers[ssid]
                continue
            result = service.execute(
                'SELECT SUM(count) AS s FROM "snapshot_average"',
                snapshot_id=ssid,
            ).result.rows[0]["s"]
            assert result == pinned_answers[ssid], (
                f"snapshot {ssid} changed its answer"
            )
        if committed not in pinned_answers:
            pinned_answers[committed] = service.execute(
                'SELECT SUM(count) AS s FROM "snapshot_average"',
                snapshot_id=committed,
            ).result.rows[0]["s"]
        # Live counts never exceed what the sources have emitted.
        live_total = service.execute(
            'SELECT SUM(count) AS s FROM "average"'
        ).result.rows[0]["s"]
        emitted = sum(s.seq for s in job.source_instances())
        assert live_total <= emitted

    # Committed pointer is monotone.
    assert observed_committed == sorted(observed_committed)
    assert job.metrics.recoveries == 3

    # Drain to completion and verify the exact totals.
    env.run_until(60_000)
    assert job.all_sources_exhausted()
    expected_total = PER_INSTANCE * PARALLELISM
    live_total = service.execute(
        'SELECT SUM(count) AS s FROM "average"'
    ).result.rows[0]["s"]
    assert live_total == expected_total
    snap_total = service.execute(
        'SELECT SUM(count) AS s FROM "snapshot_average"'
    ).result.rows[0]["s"]
    assert snap_total == expected_total
    assert env.cluster.surviving_node_ids() == [0]
