"""Atomic snapshot publication (DESIGN.md decision 4).

Queries resolve the committed-snapshot pointer, which only flips after
every node acknowledged phase 2.  These tests show (a) queries never
observe a half-written snapshot through the pointer, and (b) what would
go wrong without atomic publication — the ablation reads the in-progress
snapshot id directly and observes torn (incomplete) state.
"""

from ..conftest import build_average_job, make_squery_backend
from repro.query import QueryService


def test_queries_never_see_in_progress_snapshot(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=30,
                            checkpoint_interval_ms=400)
    job.start()
    service = QueryService(env)
    observed = []

    def poll():
        if env.store.committed_ssid is not None:
            execution = service.submit(
                'SELECT COUNT(*) AS n FROM "snapshot_average"',
                on_done=lambda e: observed.append(
                    (e.snapshot_id, e.result.rows[0]["n"])
                ),
            )
            del execution
        env.sim.schedule(37.0, poll)  # deliberately unaligned cadence

    env.sim.schedule(500.0, poll)
    env.run_until(5_000)
    assert observed
    in_progress = env.store.in_progress_ssid
    for ssid, count in observed:
        # Only fully committed snapshots were served...
        assert ssid <= env.store.committed_ssid
        # ...and each held the complete key universe once warm.
    warm = [count for ssid, count in observed if ssid >= 3]
    assert all(count == 30 for count in warm)
    del in_progress


def test_ablation_reading_in_progress_snapshot_sees_torn_state(env):
    """Bypassing the committed pointer mid-checkpoint can observe a
    snapshot with only some instances written — the torn read the 2PC
    prevents."""
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=3000, keys=600,
                            checkpoint_interval_ms=400)
    job.start()
    env.run_until(1_200)
    table = backend.snapshot_table("average")
    committed = env.store.committed_ssid
    complete = table.snapshot_size(committed)
    assert complete == 600

    torn_sizes = []

    def probe():
        ssid = env.store.in_progress_ssid
        if ssid is not None and table.has_snapshot(ssid):
            torn_sizes.append(table.snapshot_size(ssid))
        env.sim.schedule(0.05, probe)

    env.sim.schedule(0.0, probe)
    env.run_until(4_000)
    # At some instant the in-progress snapshot was readable but
    # incomplete: a non-atomic publication would have returned it.
    assert torn_sizes
    assert min(torn_sizes) < 600


def test_snapshot_id_retrieval_observes_monotone_pointer(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=300)
    job.start()
    seen = []

    def watch():
        seen.append(env.store.committed_ssid)
        env.sim.schedule(100.0, watch)

    env.sim.schedule(0.0, watch)
    env.run_until(3_000)
    committed = [s for s in seen if s is not None]
    assert committed == sorted(committed)
    assert committed[-1] > committed[0]
