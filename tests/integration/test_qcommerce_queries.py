"""The four Delivery Hero monitoring queries (§VIII), executed verbatim
against snapshot state, with results verified against an independent
recomputation from the operators' actual state."""

import pytest

from repro import ClusterConfig, Environment
from repro.query import QueryService
from repro.workloads.qcommerce import (
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    build_qcommerce_job,
)

from ..conftest import make_squery_backend


@pytest.fixture(scope="module")
def qcommerce():
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_qcommerce_job(env, backend, orders=240, riders=40,
                              events_per_s=4000,
                              checkpoint_interval_ms=500, parallelism=3)
    job.start()
    env.run_until(3_250)
    service = QueryService(env)
    ssid = env.store.committed_ssid
    info = _snapshot_state(backend, "orderinfo", ssid)
    status = _snapshot_state(backend, "orderstate", ssid)
    return env, service, ssid, info, status


def _snapshot_state(backend, vertex, ssid):
    table = backend.snapshot_table(vertex)
    merged = {}
    for instance in range(table.parallelism):
        merged.update(table.instance_state(ssid, instance))
    return merged


def _expected_counts(info, status, predicate, group_attr, now_ms):
    counts = {}
    for order_id, order_status in status.items():
        order_info = info.get(order_id)
        if order_info is None:
            continue
        if predicate(order_status, now_ms):
            group = getattr(order_info, group_attr)
            counts[group] = counts.get(group, 0) + 1
    return counts


def _result_to_counts(result):
    return {
        row["deliveryZone" if "deliveryZone" in row else "vendorCategory"]:
            row["COUNT(*)"]
        for row in result.rows
    }


def test_query_1_late_orders_per_zone(qcommerce):
    env, service, ssid, info, status = qcommerce
    execution = service.execute(QUERY_1, snapshot_id=ssid)
    expected = _expected_counts(
        info, status,
        lambda s, now: (s.orderState == "VENDOR_ACCEPTED"
                        and s.lateTimestamp < now),
        "deliveryZone",
        execution.completed_ms,
    )
    assert _result_to_counts(execution.result) == expected
    assert expected, "workload must produce late orders"


def test_query_2_ready_for_pickup_per_category(qcommerce):
    env, service, ssid, info, status = qcommerce
    execution = service.execute(QUERY_2, snapshot_id=ssid)
    expected = _expected_counts(
        info, status,
        lambda s, now: s.orderState in ("NOTIFIED", "ACCEPTED"),
        "vendorCategory",
        0.0,
    )
    assert _result_to_counts(execution.result) == expected


def test_query_3_in_preparation_per_zone(qcommerce):
    env, service, ssid, info, status = qcommerce
    execution = service.execute(QUERY_3, snapshot_id=ssid)
    expected = _expected_counts(
        info, status,
        lambda s, now: s.orderState == "VENDOR_ACCEPTED",
        "deliveryZone",
        0.0,
    )
    assert _result_to_counts(execution.result) == expected


def test_query_4_in_transit_per_zone(qcommerce):
    env, service, ssid, info, status = qcommerce
    execution = service.execute(QUERY_4, snapshot_id=ssid)
    expected = _expected_counts(
        info, status,
        lambda s, now: s.orderState in (
            "PICKED_UP", "LEFT_PICKUP", "NEAR_CUSTOMER",
        ),
        "deliveryZone",
        0.0,
    )
    assert _result_to_counts(execution.result) == expected


def test_query_1_subset_of_query_3(qcommerce):
    """Late VENDOR_ACCEPTED orders are a subset of all VENDOR_ACCEPTED
    orders, zone by zone."""
    env, service, ssid, *_ = qcommerce
    late = _result_to_counts(
        service.execute(QUERY_1, snapshot_id=ssid).result
    )
    preparing = _result_to_counts(
        service.execute(QUERY_3, snapshot_id=ssid).result
    )
    for zone, count in late.items():
        assert count <= preparing.get(zone, 0)


def test_queries_cover_disjoint_states(qcommerce):
    """Queries 2, 3 and 4 partition distinct order states: no order is
    counted by more than one of them, so zone totals are bounded by the
    joined order count."""
    env, service, ssid, info, status = qcommerce
    total_joined = sum(1 for oid in status if oid in info)
    counted = 0
    for sql in (QUERY_2, QUERY_3, QUERY_4):
        result = service.execute(sql, snapshot_id=ssid).result
        counted += sum(row["COUNT(*)"] for row in result.rows)
    assert counted <= total_joined
