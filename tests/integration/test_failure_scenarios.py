"""Integration tests for failures interacting with everything else:
queries in flight, checkpoints in flight, repeated failures, and the
store's replica promotion."""

import pytest

from repro import ClusterConfig, Environment
from repro.query import DirectObjectInterface, QueryService, StateAuditor

from ..conftest import build_average_job, make_squery_backend


def fresh(nodes=3):
    env = Environment(ClusterConfig(nodes=nodes,
                                    processing_workers_per_node=2))
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=30,
                            checkpoint_interval_ms=500)
    job.start()
    return env, backend, job


def test_query_submitted_before_failure_completes(env=None):
    env, backend, job = fresh()
    env.run_until(1_700)
    service = QueryService(env)
    execution = service.submit('SELECT COUNT(*) FROM "snapshot_average"')
    env.cluster.kill_node(2)
    env.run_for(2_000)
    assert execution.done
    # Either a real result or a clean error — never a hang.
    assert (execution.result is not None) or (execution.error is not None)


def test_queries_after_failure_hit_surviving_entry_nodes():
    env, backend, job = fresh()
    env.run_until(1_700)
    env.cluster.kill_node(0)
    service = QueryService(env)
    for _ in range(4):
        execution = service.execute('SELECT COUNT(*) FROM "average"')
        assert execution.error is None
    assert env.cluster.node(0).query_pool.jobs_served == 0


def test_failure_during_checkpoint_aborts_cleanly():
    env, backend, job = fresh()
    # Stop just after a checkpoint began (trigger fires at 500ms).
    env.run_until(501.0)
    assert env.store.in_progress_ssid is not None
    env.cluster.kill_node(1)
    assert env.store.in_progress_ssid is None  # aborted
    env.run_until(4_000)
    # Checkpointing recovered and committed new snapshots.
    assert env.store.committed_ssid is not None
    assert job.coordinator.completed >= 2


def test_snapshot_tables_survive_failure():
    env, backend, job = fresh()
    env.run_until(1_700)
    ssid = env.store.committed_ssid
    table = backend.snapshot_table("average")
    size_before = table.snapshot_size(ssid)
    env.cluster.kill_node(2)
    assert table.snapshot_size(ssid) == size_before


def test_direct_and_audit_interfaces_work_after_failure():
    env, backend, job = fresh()
    env.run_until(1_700)
    env.cluster.kill_node(2)
    env.run_until(3_000)
    doi = DirectObjectInterface(env)
    lookup = doi.submit_get("average", [0, 1])
    auditor = StateAuditor(env)
    report = auditor.submit_subject_access(0)
    env.run_for(200)
    assert lookup.done and lookup.values
    assert report.done
    assert "average" in report.tables_holding_data()


def test_kill_every_node_but_one():
    env, backend, job = fresh(nodes=4)
    env.run_until(1_700)
    for node_id in (3, 2, 1):
        env.cluster.kill_node(node_id)
        env.run_for(1_500)
    assert env.cluster.surviving_node_ids() == [0]
    assert job.metrics.recoveries == 3
    # The single survivor still processes and checkpoints.
    before = env.store.committed_ssid
    env.run_for(2_000)
    assert env.store.committed_ssid > before
    service = QueryService(env)
    result = service.execute('SELECT COUNT(*) AS n FROM "average"')
    assert result.result.rows[0]["n"] == 30


def test_failure_detaches_dead_node_from_all_roles():
    env, backend, job = fresh()
    env.run_until(1_700)
    env.cluster.kill_node(1)
    for instance in job.operator_instances():
        assert instance.node_id != 1
    for source in job.source_instances():
        assert source.node_id != 1
    assert 1 not in env.cluster.surviving_node_ids()
    assert env.cluster.partitioner.partitions_owned_by(1) == []
