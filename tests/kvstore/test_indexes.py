"""Tests for per-partition secondary indexes (repro.kvstore.indexes)."""

import pytest

from repro.errors import StoreError
from repro.kvstore.indexes import (
    MISSING,
    EqProbe,
    IndexDef,
    IndexRegistry,
    RangeProbe,
    extract_index_value,
)


def make_registry(partitions=2, defs=()):
    """A registry over plain dict partitions the test mutates directly.

    Returns ``(registry, backing)``; keep them in sync by calling
    ``put``/``remove`` below.
    """
    backing = {p: {} for p in range(partitions)}
    registry = IndexRegistry(partitions,
                             lambda p: backing[p].items())
    for definition in defs:
        registry.add_definition(definition)
    return registry, backing


def put(registry, backing, partition, key, value):
    old = backing[partition].get(key, MISSING)
    registry.on_put(partition, key, old, value)
    backing[partition][key] = value


def remove(registry, backing, partition, key):
    old = backing[partition].pop(key)
    registry.on_remove(partition, key, old)


# -- value extraction --------------------------------------------------------


def test_extract_index_value_shapes():
    assert extract_index_value({"v": 3}, "v") == 3
    assert extract_index_value({"v": 3}, "w") is MISSING
    assert extract_index_value(42, "value") == 42
    assert extract_index_value(42, "other") is MISSING

    from collections import namedtuple
    Row = namedtuple("Row", ["a"])
    assert extract_index_value(Row(a=9), "a") == 9
    assert extract_index_value(Row(a=9), "b") is MISSING

    from dataclasses import dataclass

    @dataclass
    class State:
        count: int

    assert extract_index_value(State(count=5), "count") == 5
    assert extract_index_value(State(count=5), "total") is MISSING


# -- definitions -------------------------------------------------------------


def test_index_def_validate_rejects_bad_definitions():
    with pytest.raises(StoreError):
        IndexDef("", "hash").validate()
    with pytest.raises(StoreError):
        IndexDef("key", "hash").validate()  # row-identity column
    with pytest.raises(StoreError):
        IndexDef("v", "btree").validate()  # unknown kind
    IndexDef("v", "sorted").validate()  # fine


def test_add_definition_idempotent_and_kind_conflict():
    registry, backing = make_registry()
    first = registry.add_definition(IndexDef("v", "hash"))
    again = registry.add_definition(IndexDef("v", "hash"))
    assert first is again
    assert len(registry) == 1
    with pytest.raises(StoreError):
        registry.add_definition(IndexDef("v", "sorted"))


def test_add_definition_backfills_existing_entries():
    registry, backing = make_registry()
    put(registry, backing, 0, "a", {"v": 1})
    put(registry, backing, 1, "b", {"v": 1})
    registry.add_definition(IndexDef("v", "hash"))
    assert registry.probe_count(0, "v", EqProbe((1,))) == (1, 1)
    assert registry.probe_count(1, "v", EqProbe((1,))) == (1, 1)
    assert registry.coherence_errors() == []


def test_column_kinds_sorted():
    registry, _ = make_registry(
        defs=[IndexDef("z", "sorted"), IndexDef("a", "hash")]
    )
    assert registry.column_kinds() == {"a": "hash", "z": "sorted"}
    assert [d.column for d in registry.defs()] == ["a", "z"]


# -- hash probes -------------------------------------------------------------


def test_hash_insert_remove_probe():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    for key in range(10):
        put(registry, backing, 0, key, {"v": key % 3})
    assert registry.probe_count(0, "v", EqProbe((0,))) == (1, 4)
    assert registry.probe_keys(0, "v", EqProbe((0,))) == [0, 3, 6, 9]
    assert registry.probe_keys(0, "v", EqProbe((1, 2))) == \
        [1, 2, 4, 5, 7, 8]
    remove(registry, backing, 0, 3)
    assert registry.probe_keys(0, "v", EqProbe((0,))) == [0, 6, 9]
    assert registry.coherence_errors() == []


def test_hash_rejects_range_probe():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": 1})
    assert registry.probe_count(0, "v", RangeProbe(low=0)) is None
    assert registry.probe_keys(0, "v", RangeProbe(low=0)) is None


def test_unknown_column_is_unprobeable():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    assert registry.probe_count(0, "w", EqProbe((1,))) is None
    assert registry.probe_keys(0, "w", EqProbe((1,))) is None


def test_absent_column_disables_probing():
    # A probe would silently skip rows lacking the column while a scan
    # raises "unknown column" — so any absence must veto the index.
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": 1})
    put(registry, backing, 0, "b", {"other": 2})
    assert registry.probe_count(0, "v", EqProbe((1,))) is None
    remove(registry, backing, 0, "b")
    assert registry.probe_count(0, "v", EqProbe((1,))) == (1, 1)


def test_unhashable_value_degrades_partition():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": 1})
    put(registry, backing, 0, "b", {"v": [1, 2]})  # unhashable
    assert registry.probe_count(0, "v", EqProbe((1,))) is None
    # Other partitions are unaffected.
    put(registry, backing, 1, "c", {"v": 1})
    assert registry.probe_count(1, "v", EqProbe((1,))) == (1, 1)


def test_needs_str_gated_on_non_string_values():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": "x"})
    put(registry, backing, 0, "b", {"v": 7})
    probe = EqProbe(("x",), needs_str=True)
    assert registry.probe_count(0, "v", probe) is None
    assert registry.probe_count(0, "v", EqProbe(("x",))) == (1, 1)
    remove(registry, backing, 0, "b")
    assert registry.probe_count(0, "v", probe) == (1, 1)


# -- sorted probes -----------------------------------------------------------


def test_sorted_range_probe_bounds():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    for key in range(10):
        put(registry, backing, 0, key, {"v": key})
    closed = RangeProbe(low=3, high=6)
    assert registry.probe_count(0, "v", closed) == (1, 4)
    assert registry.probe_keys(0, "v", closed) == [3, 4, 5, 6]
    half_open = RangeProbe(low=3, high=6, low_inclusive=False,
                           high_inclusive=False)
    assert registry.probe_keys(0, "v", half_open) == [4, 5]
    assert registry.probe_keys(0, "v", RangeProbe(high=1)) == [0, 1]
    assert registry.probe_keys(0, "v", RangeProbe(low=8)) == [8, 9]
    assert registry.probe_count(0, "v", RangeProbe(low=100)) == (1, 0)


def test_sorted_eq_probe_and_duplicates():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    for key in range(6):
        put(registry, backing, 0, key, {"v": key % 2})
    assert registry.probe_count(0, "v", EqProbe((0,))) == (1, 3)
    assert registry.probe_keys(0, "v", EqProbe((0,))) == [0, 2, 4]


def test_sorted_excludes_nulls_but_stays_coherent():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    put(registry, backing, 0, "a", {"v": 1})
    put(registry, backing, 0, "b", {"v": None})
    # NULL never satisfies a range predicate; probing stays sound.
    assert registry.probe_keys(0, "v", RangeProbe(low=0)) == ["a"]
    assert registry.coherence_errors() == []
    remove(registry, backing, 0, "b")
    assert registry.coherence_errors() == []


def test_sorted_incomparable_values_degrade_partition():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    put(registry, backing, 0, "a", {"v": 1})
    put(registry, backing, 0, "b", {"v": "text"})  # int vs str
    assert registry.probe_count(0, "v", RangeProbe(low=0)) is None


def test_sorted_incomparable_probe_value_returns_none():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    put(registry, backing, 0, "a", {"v": 1})
    assert registry.probe_count(
        0, "v", RangeProbe(low="text")
    ) is None


# -- insertion-order ranks ---------------------------------------------------


def test_probe_keys_follow_dict_iteration_order():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    for key in ("c", "a", "b"):
        put(registry, backing, 0, key, {"v": 1})
    assert registry.probe_keys(0, "v", EqProbe((1,))) == \
        list(backing[0]) == ["c", "a", "b"]


def test_overwrite_keeps_rank_delete_reinsert_moves_to_end():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    for key in ("a", "b", "c"):
        put(registry, backing, 0, key, {"v": 1})
    put(registry, backing, 0, "a", {"v": 1})  # overwrite: keeps slot
    assert registry.probe_keys(0, "v", EqProbe((1,))) == \
        list(backing[0]) == ["a", "b", "c"]
    remove(registry, backing, 0, "a")
    put(registry, backing, 0, "a", {"v": 1})  # re-insert: moves to end
    assert registry.probe_keys(0, "v", EqProbe((1,))) == \
        list(backing[0]) == ["b", "c", "a"]
    assert registry.coherence_errors() == []


# -- freezing ----------------------------------------------------------------


def test_frozen_registry_rejects_all_maintenance():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": 1})
    registry.freeze()
    assert registry.frozen
    with pytest.raises(StoreError):
        registry.on_put(0, "b", MISSING, {"v": 2})
    with pytest.raises(StoreError):
        registry.on_remove(0, "a", {"v": 1})
    with pytest.raises(StoreError):
        registry.rebuild_partition(0)
    with pytest.raises(StoreError):
        registry.add_definition(IndexDef("w", "hash"))
    # Reads are unaffected.
    assert registry.probe_keys(0, "v", EqProbe((1,))) == ["a"]


def test_frozen_mutation_hook_fires_before_error():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    registry.freeze()
    messages = []
    registry.on_frozen_mutation = messages.append
    with pytest.raises(StoreError):
        registry.on_put(0, "a", MISSING, {"v": 1})
    assert len(messages) == 1
    assert "frozen" in messages[0]


# -- rebuild and coherence ---------------------------------------------------


def test_rebuild_partition_rederives_from_store():
    registry, backing = make_registry(defs=[IndexDef("v", "sorted")])
    put(registry, backing, 0, "a", {"v": 1})
    # Mutate the backing dict behind the registry's back, then rebuild.
    backing[0]["b"] = {"v": 2}
    backing[0]["c"] = {"v": 3}
    assert registry.coherence_errors() != []
    registry.rebuild_partition(0)
    assert registry.coherence_errors() == []
    assert registry.probe_keys(0, "v", RangeProbe(low=2)) == ["b", "c"]


def test_coherence_catches_stale_index_value():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    put(registry, backing, 0, "a", {"v": 1})
    backing[0]["a"] = {"v": 99}  # store changed, index not maintained
    errors = registry.coherence_errors()
    assert errors and "indexed under" in errors[0]


def test_coherence_catches_order_divergence():
    registry, backing = make_registry(defs=[IndexDef("v", "hash")])
    for key in ("a", "b"):
        put(registry, backing, 0, key, {"v": 1})
    registry._order[0]["a"], registry._order[0]["b"] = \
        registry._order[0]["b"], registry._order[0]["a"]
    errors = registry.coherence_errors()
    assert errors and "insertion-order ranks" in errors[0]


def test_maintenance_ops_count_index_touches():
    registry, backing = make_registry(
        defs=[IndexDef("v", "hash"), IndexDef("w", "sorted")]
    )
    put(registry, backing, 0, "a", {"v": 1, "w": 2})  # 2 indexes
    remove(registry, backing, 0, "a")  # 2 more
    assert registry.maintenance_ops == 4
