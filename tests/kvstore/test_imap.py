"""Tests for partitioned maps and placements."""

from repro.cluster import Cluster, Partitioner
from repro.config import ClusterConfig
from repro.kvstore import HashPlacement, IMap, InstancePlacement
from repro.simtime import Simulator


def make_map(partitions=8, nodes=2):
    placement = HashPlacement(Partitioner(partitions, nodes))
    return IMap("m", placement)


def test_put_get_delete_roundtrip():
    imap = make_map()
    imap.put("k", 1)
    assert imap.get("k") == 1
    assert imap.contains("k")
    assert imap.delete("k") is True
    assert imap.get("k") is None
    assert imap.delete("k") is False


def test_get_default():
    assert make_map().get("missing", "d") == "d"


def test_len_and_write_count():
    imap = make_map()
    for i in range(10):
        imap.put(i, i)
    assert len(imap) == 10
    imap.delete(3)
    assert len(imap) == 9
    assert imap.write_count == 11  # 10 puts + 1 delete


def test_version_increments_on_every_mutation():
    imap = make_map()
    assert imap.version_of("k") == 0
    imap.put("k", 1)
    imap.put("k", 2)
    imap.delete("k")
    assert imap.version_of("k") == 3


def test_entries_cover_all_partitions():
    imap = make_map()
    data = {i: i * 2 for i in range(50)}
    for key, value in data.items():
        imap.put(key, value)
    assert dict(imap.entries()) == data
    assert set(imap.keys()) == set(data)


def test_entries_on_node_partition_by_owner():
    imap = make_map(partitions=8, nodes=2)
    for i in range(100):
        imap.put(i, i)
    node0 = dict(imap.entries_on_node(0))
    node1 = dict(imap.entries_on_node(1))
    assert len(node0) + len(node1) == 100
    assert not set(node0) & set(node1)
    for key in node0:
        assert imap.placement.owner_of(key) == 0


def test_drop_partitions_loses_their_entries():
    imap = make_map(partitions=4, nodes=2)
    for i in range(40):
        imap.put(i, i)
    owned = imap.partitions_on_node(0)
    before = len(imap)
    lost = imap.drop_partitions(owned)
    assert lost > 0
    assert len(imap) == before - lost
    assert not list(imap.entries_on_node(0))


def test_clear_removes_everything():
    imap = make_map()
    imap.put("a", 1)
    imap.clear()
    assert len(imap) == 0


def test_instance_placement_partition_is_instance():
    placement = InstancePlacement(4, lambda i: i % 3, node_count=3)
    assert placement.partition_count == 4
    from repro.cluster.partition import stable_hash
    for key in range(20):
        assert placement.partition_of(key) == stable_hash(key) % 4


def test_instance_placement_follows_assignment_changes():
    assignment = {0: 0, 1: 1, 2: 2, 3: 0}
    placement = InstancePlacement(4, assignment.__getitem__, node_count=3)
    assert placement.owner_of_partition(1) == 1
    assignment[1] = 2  # instance rescheduled after a failure
    assert placement.owner_of_partition(1) == 2


def test_instance_placement_backup_is_next_node():
    placement = InstancePlacement(4, lambda i: i % 3, node_count=3)
    assert placement.backup_of_partition(0) == 1
    assert placement.backup_of_partition(2) == 0


def test_instance_placement_no_backup_single_node():
    placement = InstancePlacement(2, lambda i: 0, node_count=1)
    assert placement.backup_of_partition(0) is None


def test_colocation_instance_placement_matches_dataflow_routing():
    """The co-partitioning invariant: the store places a key on the node
    running the operator instance that owns the key."""
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=3,
                                         processing_workers_per_node=1))
    parallelism = 6
    node_of = lambda i: cluster.partitioner.node_of_instance(i, parallelism)
    placement = InstancePlacement(parallelism, node_of, 3)
    for key in range(200):
        instance = cluster.partitioner.instance_of(key, parallelism)
        assert placement.owner_of(key) == node_of(instance)
