"""Tests for the state-store registry and the committed-snapshot
pointer protocol."""

import pytest

from repro.errors import MapNotFoundError, StoreError


def test_create_map_idempotent(env):
    store = env.store
    first = store.create_map("orders")
    second = store.create_map("orders")
    assert first is second
    assert store.map_names() == ["orders"]


def test_get_unknown_map_raises(env):
    with pytest.raises(MapNotFoundError):
        env.store.get_map("nope")


def test_snapshot_pointer_protocol(env):
    store = env.store
    assert store.committed_ssid is None
    store.begin_snapshot(1)
    assert store.in_progress_ssid == 1
    # Not yet visible to queries.
    assert store.committed_ssid is None
    store.commit_snapshot(1)
    assert store.committed_ssid == 1
    assert store.in_progress_ssid is None
    assert store.available_ssids() == [1]


def test_two_snapshots_in_progress_rejected(env):
    store = env.store
    store.begin_snapshot(1)
    with pytest.raises(StoreError):
        store.begin_snapshot(2)


def test_commit_without_begin_rejected(env):
    with pytest.raises(StoreError):
        env.store.commit_snapshot(5)


def test_snapshot_ids_must_increase(env):
    store = env.store
    store.begin_snapshot(2)
    store.commit_snapshot(2)
    with pytest.raises(StoreError):
        store.begin_snapshot(2)
    with pytest.raises(StoreError):
        store.begin_snapshot(1)


def test_abort_clears_in_progress(env):
    store = env.store
    store.begin_snapshot(1)
    store.abort_snapshot(1)
    assert store.in_progress_ssid is None
    assert store.committed_ssid is None
    # The same id cannot be reused after an abort... but a later one can.
    store.begin_snapshot(2)
    store.commit_snapshot(2)
    assert store.committed_ssid == 2


def test_retire_snapshots_keeps_most_recent(env):
    store = env.store
    for ssid in (1, 2, 3, 4):
        store.begin_snapshot(ssid)
        store.commit_snapshot(ssid)
    retired = store.retire_snapshots(keep=2)
    assert retired == [1, 2]
    assert store.available_ssids() == [3, 4]


def test_retire_noop_when_under_limit(env):
    store = env.store
    store.begin_snapshot(1)
    store.commit_snapshot(1)
    assert store.retire_snapshots(keep=2) == []


def test_retire_notifies_snapshot_tables(env):
    dropped = []

    class FakeTable:
        def drop_snapshot(self, ssid):
            dropped.append(ssid)

        def on_node_failure(self, node_id):
            pass

    store = env.store
    store.register_snapshot_table("snapshot_x", FakeTable())
    for ssid in (1, 2, 3):
        store.begin_snapshot(ssid)
        store.commit_snapshot(ssid)
    store.retire_snapshots(keep=1)
    assert dropped == [1, 2]


def test_duplicate_table_registration_rejected(env):
    store = env.store
    store.register_snapshot_table("snapshot_x", object())
    with pytest.raises(StoreError):
        store.register_snapshot_table("snapshot_x", object())
    store.register_live_table("x", object())
    with pytest.raises(StoreError):
        store.register_live_table("x", object())


def test_live_table_lookup(env):
    store = env.store
    sentinel = object()
    store.register_live_table("orders", sentinel)
    assert store.has_live_table("orders")
    assert store.get_live_table("orders") is sentinel
    with pytest.raises(MapNotFoundError):
        store.get_live_table("other")


def test_key_lock_helpers(env):
    store = env.store
    assert store.lock_key("m", "k", "owner")
    assert not store.lock_key("m", "k", "other")
    store.unlock_key("m", "k", "owner")
    assert store.lock_key("m", "k", "other")
    store.unlock_key("m", "k", "other")


def test_node_failure_hash_placed_map_survives_via_backups(env):
    """Hash-placed maps are replicated: killing a node promotes the
    backup replicas, so no entries are lost."""
    store = env.store
    imap = store.create_map("orders")
    for i in range(100):
        imap.put(i, i)
    assert imap.partitions_on_node(1)
    env.cluster.kill_node(1)
    assert imap.partitions_on_node(1) == []
    assert len(imap) == 100


def test_node_failure_instance_placed_map_loses_dead_partitions(env):
    """Operator live-state maps follow the job's instance assignment;
    until the job reassigns (after the store's failure handler), the
    dead node's partitions have no surviving replica and are dropped —
    live state is mirrored asynchronously (§VII-B)."""
    from repro.kvstore import InstancePlacement

    store = env.store
    placement = InstancePlacement(3, lambda i: i % 3, node_count=3)
    imap = store.create_map("live_orders", placement)
    for i in range(99):
        imap.put(i, i)
    before = imap.partition_size(1)
    assert before > 0
    env.cluster.kill_node(1)
    assert len(imap) == 99 - before
    assert imap.partition_size(1) == 0
