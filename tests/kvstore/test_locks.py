"""Tests for the key-level lock manager."""

import pytest

from repro.errors import LockError
from repro.kvstore import LockManager


def test_try_acquire_free_key():
    locks = LockManager()
    assert locks.try_acquire("k", "o1")
    assert locks.is_locked("k")
    assert locks.holder_of("k") == "o1"


def test_try_acquire_held_key_fails():
    locks = LockManager()
    assert locks.try_acquire("k", "o1")
    assert not locks.try_acquire("k", "o2")
    assert locks.holder_of("k") == "o1"


def test_release_frees_key():
    locks = LockManager()
    assert locks.try_acquire("k", "o1")
    locks.release("k", "o1")
    assert not locks.is_locked("k")


def test_release_unlocked_key_raises():
    with pytest.raises(LockError):
        LockManager().release("k", "o1")


def test_release_by_non_owner_raises():
    locks = LockManager()
    assert locks.try_acquire("k", "o1")
    with pytest.raises(LockError):
        locks.release("k", "o2")


def test_waiters_granted_fifo():
    locks = LockManager()
    grants = []
    locks.acquire("k", "a")
    locks.acquire("k", "b", granted=lambda: grants.append("b"))
    locks.acquire("k", "c", granted=lambda: grants.append("c"))
    assert grants == []
    locks.release("k", "a")
    assert grants == ["b"]
    assert locks.holder_of("k") == "b"
    locks.release("k", "b")
    assert grants == ["b", "c"]
    locks.release("k", "c")
    assert not locks.is_locked("k")


def test_acquire_free_key_grants_immediately():
    locks = LockManager()
    grants = []
    assert locks.acquire("k", "a", granted=lambda: grants.append("a"))
    assert grants == ["a"]


def test_contention_counter():
    locks = LockManager()
    locks.acquire("k", "a")
    locks.acquire("k", "b")
    assert locks.contentions == 1
    assert locks.acquisitions == 1
    locks.release("k", "a")
    assert locks.acquisitions == 2


def test_release_all_for_owner():
    locks = LockManager()
    owner = object()
    assert locks.try_acquire("k1", owner)
    assert locks.try_acquire("k2", owner)
    assert locks.try_acquire("k3", "other")
    assert locks.release_all(owner) == 2
    assert not locks.is_locked("k1")
    assert locks.is_locked("k3")


def test_release_all_hands_over_to_waiters():
    locks = LockManager()
    owner = object()
    grants = []
    assert locks.try_acquire("k", owner)
    locks.acquire("k", "w", granted=lambda: grants.append("w"))
    locks.release_all(owner)
    assert grants == ["w"]
