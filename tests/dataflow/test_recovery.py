"""Tests for rollback recovery and exactly-once semantics."""

import pytest

from repro import ClusterConfig, Environment

from ..conftest import build_average_job, make_squery_backend


def fresh_env():
    return Environment(ClusterConfig(nodes=3,
                                     processing_workers_per_node=2))


def run_to_completion(env, job, horizon=30_000):
    env.run_until(horizon)
    assert job.all_sources_exhausted()
    return job.operator_state("average")


def reference_state():
    env = fresh_env()
    job = build_average_job(env, rate=2000, keys=20,
                            limit_per_instance=1000,
                            checkpoint_interval_ms=500)
    job.start()
    return run_to_completion(env, job)


@pytest.fixture(scope="module")
def reference():
    return reference_state()


def test_state_after_failure_equals_failure_free_run(reference):
    env = fresh_env()
    job = build_average_job(env, rate=2000, keys=20,
                            limit_per_instance=1000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_234)
    env.cluster.kill_node(2)
    state = run_to_completion(env, job)
    assert job.metrics.recoveries == 1
    assert state == reference


def test_failure_before_first_checkpoint_restarts_from_scratch(reference):
    env = fresh_env()
    job = build_average_job(env, rate=2000, keys=20,
                            limit_per_instance=1000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(120)  # before the first checkpoint commit
    assert env.store.committed_ssid is None
    env.cluster.kill_node(1)
    state = run_to_completion(env, job)
    assert state == reference


def test_two_successive_failures(reference):
    env = fresh_env()
    job = build_average_job(env, rate=2000, keys=20,
                            limit_per_instance=1000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(900)
    env.cluster.kill_node(2)
    env.run_until(2_600)
    env.cluster.kill_node(1)
    state = run_to_completion(env, job)
    assert job.metrics.recoveries == 2
    assert state == reference


def test_displaced_instances_move_to_survivors():
    env = fresh_env()
    job = build_average_job(env, rate=1000, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_700)
    env.cluster.kill_node(0)
    for name in ("average", "sink"):
        for instance in job.instances_of(name):
            assert instance.node_id != 0
    for source in job.source_instances():
        assert source.node_id != 0


def test_coordinator_moves_off_dead_node():
    env = fresh_env()
    job = build_average_job(env, rate=1000, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_700)
    completed_before = job.coordinator.completed
    env.cluster.kill_node(0)  # the coordinator node
    env.run_until(5_000)
    assert job.coordinator._node_id != 0
    assert job.coordinator.completed > completed_before


def test_checkpointing_resumes_after_recovery():
    env = fresh_env()
    job = build_average_job(env, rate=1000, checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_700)
    env.cluster.kill_node(2)
    env.run_until(6_000)
    assert env.store.committed_ssid is not None
    assert env.store.committed_ssid >= 5


def test_recovery_with_squery_backend_restores_from_snapshot_table(
        reference):
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            limit_per_instance=1000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_777)
    env.cluster.kill_node(1)
    state = run_to_completion(env, job)
    assert state == reference


def test_live_table_reflects_rolled_back_state_after_recovery():
    env = fresh_env()
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(2_250)
    env.cluster.kill_node(1)
    # Immediately after recovery (before replay catches up), the live
    # table equals the restored operator state.
    live = backend.live_table("average")
    merged = job.operator_state("average")
    live_entries = {key: value for key, value in live.imap.entries()}
    assert live_entries == merged


def test_in_flight_work_from_old_epoch_discarded():
    env = fresh_env()
    job = build_average_job(env, rate=4000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_900)
    epoch_before = job.epoch
    env.cluster.kill_node(2)
    assert job.epoch == epoch_before + 1
    # Draining all old-epoch events must not corrupt state: counts can
    # only come from replayed records.
    env.run_until(10_000)
    state = job.operator_state("average")
    offsets = sum(s.seq for s in job.source_instances())
    processed = sum(s.count for s in state.values())
    assert processed <= offsets
