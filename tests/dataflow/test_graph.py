"""Tests for the pipeline/DAG builder."""

import pytest

from repro.dataflow import MapOperator, Pipeline
from repro.dataflow.graph import ROUTE_FORWARD, Vertex
from repro.dataflow.sources import CallableSource
from repro.errors import GraphError


def source():
    return CallableSource(lambda i, s: (s, s), 100.0)


def test_linear_pipeline_validates():
    p = Pipeline()
    p.add_source("src", source())
    p.add_operator("map", lambda: MapOperator(lambda v: v))
    p.connect("src", "map")
    p.validate()
    assert p.topological_order() == ["src", "map"]


def test_duplicate_vertex_rejected():
    p = Pipeline().add_source("x", source())
    with pytest.raises(GraphError):
        p.add_operator("x", lambda: MapOperator(lambda v: v))


def test_connect_unknown_vertices_rejected():
    p = Pipeline().add_source("src", source())
    with pytest.raises(GraphError):
        p.connect("src", "nope")
    with pytest.raises(GraphError):
        p.connect("nope", "src")


def test_connect_into_source_rejected():
    p = Pipeline()
    p.add_source("a", source())
    p.add_source("b", source())
    with pytest.raises(GraphError):
        p.connect("a", "b")


def test_unknown_routing_rejected():
    p = Pipeline()
    p.add_source("src", source())
    p.add_operator("map", lambda: MapOperator(lambda v: v))
    with pytest.raises(GraphError):
        p.connect("src", "map", routing="teleport")


def test_empty_pipeline_invalid():
    with pytest.raises(GraphError):
        Pipeline().validate()


def test_pipeline_without_source_invalid():
    p = Pipeline().add_operator("map", lambda: MapOperator(lambda v: v))
    with pytest.raises(GraphError):
        p.validate()


def test_orphan_operator_invalid():
    p = Pipeline()
    p.add_source("src", source())
    p.add_operator("orphan", lambda: MapOperator(lambda v: v))
    with pytest.raises(GraphError):
        p.validate()


def test_cycle_detected():
    p = Pipeline()
    p.add_source("src", source())
    p.add_operator("a", lambda: MapOperator(lambda v: v))
    p.add_operator("b", lambda: MapOperator(lambda v: v))
    p.connect("src", "a")
    p.connect("a", "b")
    p.connect("b", "a")
    with pytest.raises(GraphError):
        p.validate()


def test_diamond_topology_valid():
    p = Pipeline()
    p.add_source("src", source())
    for name in ("left", "right", "join"):
        p.add_operator(name, lambda: MapOperator(lambda v: v))
    p.connect("src", "left")
    p.connect("src", "right")
    p.connect("left", "join")
    p.connect("right", "join")
    p.validate()
    order = p.topological_order()
    assert order.index("src") < order.index("left") < order.index("join")


def test_in_out_edges():
    p = Pipeline()
    p.add_source("src", source())
    p.add_operator("a", lambda: MapOperator(lambda v: v))
    p.connect("src", "a", routing=ROUTE_FORWARD)
    assert p.out_edges("src")[0].routing == ROUTE_FORWARD
    assert p.in_edges("a")[0].src == "src"


def test_vertex_validation():
    with pytest.raises(GraphError):
        Vertex("bad").validate()  # neither source nor factory
    with pytest.raises(GraphError):
        Vertex("bad", factory=lambda: MapOperator(lambda v: v),
               source=source()).validate()
    with pytest.raises(GraphError):
        Vertex("bad", source=source(), parallelism=0).validate()
