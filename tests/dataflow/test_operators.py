"""Tests for operators and state access."""

import pytest

from repro.dataflow import (
    FilterOperator,
    FlatMapOperator,
    KeyedAggregateOperator,
    MapOperator,
    Record,
    SinkOperator,
)
from repro.dataflow.operators import Emitter, StateAccess, StatefulMapOperator
from repro.errors import DataflowError


def record(key, value):
    return Record(key=key, value=value, created_ms=0.0)


def process(operator, *records):
    out = Emitter()
    for item in records:
        operator.process(item, out)
    return out.drain()


def test_map_operator():
    outputs = process(MapOperator(lambda v: v * 2), record("k", 3))
    assert [(o.key, o.value) for o in outputs] == [("k", 6)]


def test_map_preserves_timestamps():
    operator = MapOperator(lambda v: v)
    out = Emitter()
    operator.process(Record("k", 1, created_ms=42.0, seq=7,
                            source_instance=2), out)
    output = out.drain()[0]
    assert output.created_ms == 42.0
    assert output.seq == 7
    assert output.source_instance == 2


def test_filter_operator():
    outputs = process(FilterOperator(lambda v: v > 2),
                      record("a", 1), record("b", 5))
    assert [o.value for o in outputs] == [5]


def test_flatmap_operator_rekeys():
    operator = FlatMapOperator(lambda v: [(f"w{i}", i) for i in range(v)])
    outputs = process(operator, record("k", 3))
    assert [(o.key, o.value) for o in outputs] == [
        ("w0", 0), ("w1", 1), ("w2", 2),
    ]


def test_keyed_aggregate_accumulates_per_key():
    operator = KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    process(operator, record("a", 1), record("b", 10), record("a", 2))
    assert operator.state.get("a") == 3
    assert operator.state.get("b") == 10


def test_keyed_aggregate_output_fn():
    operator = KeyedAggregateOperator(
        lambda s, v: (s or 0) + v, lambda k, s: s * 100
    )
    outputs = process(operator, record("a", 1), record("a", 2))
    assert [o.value for o in outputs] == [100, 300]


def test_keyed_aggregate_output_none_suppresses():
    operator = KeyedAggregateOperator(
        lambda s, v: (s or 0) + v, lambda k, s: None
    )
    assert process(operator, record("a", 1)) == []


def test_stateful_map_operator_multi_key():
    def fn(state, rec, out):
        state.put(rec.key, rec.value)
        state.put(("shadow", rec.key), rec.value * 2)

    operator = StatefulMapOperator(fn)
    process(operator, record("a", 5))
    assert operator.state.get("a") == 5
    assert operator.state.get(("shadow", "a")) == 10


def test_sink_counts_and_calls_back():
    got = []
    sink = SinkOperator(got.append)
    process(sink, record("a", 1), record("b", 2))
    assert sink.received == 2
    assert [r.value for r in got] == [1, 2]


def test_emit_without_record_context_rejected():
    with pytest.raises(DataflowError):
        Emitter().emit("x")


def test_stateless_operator_has_no_state():
    assert MapOperator(lambda v: v).state is None
    assert MapOperator(lambda v: v).snapshot_state() == {}


# -- StateAccess --------------------------------------------------------------


def test_state_access_tracks_dirty_keys():
    state = StateAccess()
    state.put("a", 1)
    state.put("b", 2)
    assert state.dirty == {"a", "b"}
    delta, deleted = state.take_delta()
    assert delta == {"a": 1, "b": 2}
    assert deleted == set()
    assert state.dirty == set()


def test_state_access_delete_produces_tombstone():
    state = StateAccess()
    state.put("a", 1)
    state.take_delta()
    state.delete("a")
    delta, deleted = state.take_delta()
    assert delta == {}
    assert deleted == {"a"}
    assert not state.contains("a")


def test_delete_missing_key_returns_false():
    state = StateAccess()
    assert state.delete("zzz") is False
    assert state.take_delta() == ({}, set())


def test_put_after_delete_clears_tombstone():
    state = StateAccess()
    state.put("a", 1)
    state.take_delta()
    state.delete("a")
    state.put("a", 2)
    delta, deleted = state.take_delta()
    assert delta == {"a": 2}
    assert deleted == set()


def test_on_update_hook_fires():
    state = StateAccess()
    events = []
    state.on_update = lambda key, value: events.append((key, value))
    state.put("a", 1)
    state.delete("a")
    assert events == [("a", 1), ("a", None)]


def test_snapshot_items_is_a_copy():
    state = StateAccess()
    state.put("a", 1)
    snap = state.snapshot_items()
    state.put("a", 2)
    assert snap == {"a": 1}


def test_restore_resets_tracking():
    state = StateAccess()
    state.put("junk", 0)
    state.restore({"a": 1, "b": 2})
    assert dict(state.items()) == {"a": 1, "b": 2}
    assert state.dirty == set()
    assert len(state) == 2


def test_update_counter():
    state = StateAccess()
    state.put("a", 1)
    state.put("a", 2)
    state.delete("a")
    assert state.updates == 3
