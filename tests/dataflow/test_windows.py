"""Tests for windowed operators."""

import pytest

from repro.dataflow.operators import Emitter
from repro.dataflow.records import Record
from repro.dataflow.windows import (
    CountWindowState,
    SessionWindowOperator,
    SlidingCountWindowOperator,
    TumblingWindowOperator,
    WindowResult,
)
from repro.errors import ConfigurationError


def feed(operator, items):
    """items: (key, value, created_ms); returns emitted values."""
    out = Emitter()
    emitted = []
    for key, value, ts in items:
        operator.process(Record(key, value, created_ms=ts), out)
        emitted.extend(r.value for r in out.drain())
    return emitted


def add(acc, value):
    return (acc or 0) + value


# -- tumbling ---------------------------------------------------------------


def test_tumbling_window_emits_on_rollover():
    op = TumblingWindowOperator(100.0, add)
    emitted = feed(op, [
        ("k", 1, 10.0), ("k", 2, 50.0),   # window [0, 100)
        ("k", 5, 120.0),                   # rolls over -> emit [0,100)
    ])
    assert len(emitted) == 1
    result = emitted[0]
    assert isinstance(result, WindowResult)
    assert result.window_start == 0.0
    assert result.window_end == 100.0
    assert result.count == 2
    assert result.value == 3


def test_tumbling_window_per_key_independent():
    op = TumblingWindowOperator(100.0, add)
    emitted = feed(op, [
        ("a", 1, 10.0), ("b", 10, 20.0),
        ("a", 2, 150.0),                    # closes only a's window
    ])
    assert len(emitted) == 1
    assert emitted[0].key == "a"
    assert op.state.get("b").accumulator == 10


def test_tumbling_window_output_transform():
    op = TumblingWindowOperator(100.0, add,
                                output=lambda k, acc: acc * 10)
    emitted = feed(op, [("k", 3, 0.0), ("k", 1, 200.0)])
    assert emitted[0].value == 30


def test_tumbling_in_flight_state_queryable():
    """The open window is visible in the operator state — this is what
    S-QUERY exposes before the window closes."""
    op = TumblingWindowOperator(100.0, add)
    feed(op, [("k", 7, 30.0)])
    state = op.state.get("k")
    assert state.accumulator == 7
    assert state.window_start == 0.0
    assert state.count == 1


def test_tumbling_late_record_folds_into_current():
    op = TumblingWindowOperator(100.0, add)
    emitted = feed(op, [
        ("k", 1, 250.0),
        ("k", 100, 10.0),  # late: folds into the current window
    ])
    assert emitted == []
    assert op.state.get("k").accumulator == 101


def test_tumbling_invalid_size():
    with pytest.raises(ConfigurationError):
        TumblingWindowOperator(0.0, add)


# -- sliding count ------------------------------------------------------------


def test_sliding_count_window_keeps_last_n():
    op = SlidingCountWindowOperator(3, lambda k, vs: sum(vs))
    emitted = feed(op, [("k", v, float(v)) for v in (1, 2, 3, 4, 5)])
    assert emitted == [1, 3, 6, 9, 12]
    assert op.state.get("k").values == (3, 4, 5)
    assert op.state.get("k").total_seen == 5


def test_sliding_count_window_warm_only():
    op = SlidingCountWindowOperator(3, lambda k, vs: sum(vs),
                                    emit_partial=False)
    emitted = feed(op, [("k", v, float(v)) for v in (1, 2, 3, 4)])
    assert emitted == [6, 9]


def test_sliding_count_none_output_suppressed():
    op = SlidingCountWindowOperator(
        2, lambda k, vs: sum(vs) if sum(vs) > 3 else None
    )
    emitted = feed(op, [("k", v, 0.0) for v in (1, 2, 3)])
    assert emitted == [5]


def test_sliding_count_initial_state_default():
    state = CountWindowState((), 0)
    assert state.values == ()


def test_sliding_count_invalid_n():
    with pytest.raises(ConfigurationError):
        SlidingCountWindowOperator(0, lambda k, vs: None)


# -- sessions ---------------------------------------------------------------


def test_session_closes_after_gap():
    op = SessionWindowOperator(50.0, add)
    emitted = feed(op, [
        ("k", 1, 0.0), ("k", 2, 30.0),   # same session
        ("k", 9, 200.0),                  # gap 170 > 50: closes
    ])
    assert len(emitted) == 1
    result = emitted[0]
    assert result.window_start == 0.0
    assert result.window_end == 30.0
    assert result.count == 2
    assert result.value == 3


def test_session_extends_within_gap():
    op = SessionWindowOperator(50.0, add)
    emitted = feed(op, [
        ("k", 1, 0.0), ("k", 1, 40.0), ("k", 1, 80.0), ("k", 1, 120.0),
    ])
    assert emitted == []
    state = op.state.get("k")
    assert state.count == 4
    assert state.last_event == 120.0


def test_session_per_key():
    op = SessionWindowOperator(50.0, add)
    emitted = feed(op, [
        ("a", 1, 0.0), ("b", 1, 10.0), ("a", 1, 300.0),
    ])
    assert len(emitted) == 1
    assert emitted[0].key == "a"


def test_session_invalid_gap():
    with pytest.raises(ConfigurationError):
        SessionWindowOperator(-1.0, add)


# -- windows inside a running job -------------------------------------------


def test_windows_run_in_job_and_are_queryable(env):
    from repro.config import JobConfig
    from repro.dataflow import Job, Pipeline, SinkOperator
    from repro.dataflow.sources import CallableSource
    from repro.query import QueryService

    from ..conftest import make_squery_backend

    backend = make_squery_backend(env)
    pipeline = Pipeline()
    pipeline.add_source(
        "events", CallableSource(lambda i, s: (s % 4, 1.0), 2000.0)
    )
    pipeline.add_operator(
        "windows", lambda: TumblingWindowOperator(200.0, add)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("events", "windows")
    pipeline.connect("windows", "out")
    job = Job(env, pipeline, JobConfig(parallelism=2,
                                       checkpoint_interval_ms=500),
              backend)
    job.start()
    env.run_until(2_300)
    service = QueryService(env)
    live = service.execute(
        'SELECT partitionKey, count, window_start FROM "windows" '
        "ORDER BY partitionKey"
    )
    assert len(live.result) == 4  # one open window per key
    assert all(row["count"] > 0 for row in live.result.rows)
    assert job.sink_received("out") > 0
