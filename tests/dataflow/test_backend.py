"""Tests for the vanilla (Jet) state backend."""

import pytest

from repro.dataflow.backend import VanillaBackend, submit_chunked_write
from repro.errors import RecoveryError
from repro.simtime import Server, Simulator


def test_write_and_restore_blob(env):
    backend = VanillaBackend(env.cluster)
    done = []
    backend.write_snapshot("v", 0, 0, 1, {"a": 1, "b": 2}, set(),
                           lambda: done.append(True))
    env.sim.run()
    assert done == [True]
    assert backend.restore_instance_state("v", 0, 1) == {"a": 1, "b": 2}


def test_restore_missing_blob_raises(env):
    backend = VanillaBackend(env.cluster)
    with pytest.raises(RecoveryError):
        backend.restore_instance_state("v", 0, 9)


def test_blob_is_a_copy(env):
    backend = VanillaBackend(env.cluster)
    payload = {"a": 1}
    backend.write_snapshot("v", 0, 0, 1, payload, set(), lambda: None)
    env.sim.run()
    payload["a"] = 999
    assert backend.restore_instance_state("v", 0, 1) == {"a": 1}


def test_source_offsets_roundtrip(env):
    backend = VanillaBackend(env.cluster)
    backend.write_source_offset("src", 2, 1, 5, 1234, lambda: None)
    env.sim.run()
    assert backend.restore_source_offset("src", 2, 5) == 1234
    with pytest.raises(RecoveryError):
        backend.restore_source_offset("src", 2, 6)


def test_drop_snapshot_removes_blobs_and_offsets(env):
    backend = VanillaBackend(env.cluster)
    backend.write_snapshot("v", 0, 0, 1, {"a": 1}, set(), lambda: None)
    backend.write_source_offset("src", 0, 0, 1, 10, lambda: None)
    env.sim.run()
    backend.drop_snapshot(1)
    assert backend.blob_count() == 0
    with pytest.raises(RecoveryError):
        backend.restore_source_offset("src", 0, 1)


def test_vanilla_has_no_live_mirroring(env):
    backend = VanillaBackend(env.cluster)
    backend.register_vertex("v", 2, lambda i: 0, stateful=True)
    assert backend.live_update_cost("v") == 0.0
    backend.on_state_update("v", "k", 1)  # must be a no-op
    assert not env.store.map_names()


def test_write_cost_proportional_to_entries(env):
    backend = VanillaBackend(env.cluster)
    sim = env.sim
    backend.write_snapshot("v", 0, 0, 1, {i: i for i in range(1000)},
                           set(), lambda: None)
    sim.run()
    small_time = sim.now
    backend.write_snapshot("v", 0, 0, 2, {i: i for i in range(2000)},
                           set(), lambda: None)
    sim.run()
    assert (sim.now - small_time) > small_time * 1.5


def test_submit_chunked_write_total_duration():
    sim = Simulator()
    server = Server(sim)
    done = []
    submit_chunked_write(server, 1000, 0.01, 256, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_submit_chunked_write_zero_entries():
    sim = Simulator()
    server = Server(sim)
    done = []
    submit_chunked_write(server, 0, 0.01, 256, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_chunked_write_lets_other_jobs_interleave():
    """A competing job submitted between chunks finishes long before the
    chunked write does — the bounded priority inversion property."""
    sim = Simulator()
    server = Server(sim)
    finished = {}
    submit_chunked_write(server, 10_000, 0.01, 100,
                         lambda: finished.setdefault("big", sim.now))
    sim.schedule(0.5, lambda: server.submit(
        1.0, lambda: finished.setdefault("small", sim.now)
    ))
    sim.run()
    assert finished["small"] < finished["big"]
