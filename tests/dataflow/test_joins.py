"""Tests for the keyed stream-stream join operator."""

import pytest

from repro.dataflow.joins import JoinState, StreamJoinOperator
from repro.dataflow.operators import Emitter
from repro.dataflow.records import Record
from repro.errors import ConfigurationError


def make_join():
    return StreamJoinOperator(
        ("left", "right"),
        side_of=lambda v: v[0],
        output=lambda key, sides: (key, sides["left"][1],
                                   sides["right"][1]),
    )


def feed(operator, items):
    out = Emitter()
    emitted = []
    for key, value in items:
        operator.process(Record(key, value, 0.0), out)
        emitted.extend(r.value for r in out.drain())
    return emitted


def test_emits_only_when_both_sides_present():
    operator = make_join()
    emitted = feed(operator, [
        ("k", ("left", 1)),
        ("k2", ("left", 9)),
        ("k", ("right", 2)),
    ])
    assert emitted == [("k", 1, 2)]
    assert operator.matches_emitted == 1


def test_refresh_re_emits_with_latest_values():
    operator = make_join()
    emitted = feed(operator, [
        ("k", ("left", 1)),
        ("k", ("right", 2)),
        ("k", ("left", 10)),
    ])
    assert emitted == [("k", 1, 2), ("k", 10, 2)]


def test_pending_keys_lists_incomplete_joins():
    operator = make_join()
    feed(operator, [("a", ("left", 1)), ("b", ("right", 2)),
                    ("c", ("left", 3)), ("c", ("right", 4))])
    assert sorted(operator.pending_keys()) == ["a", "b"]


def test_unknown_side_rejected():
    operator = make_join()
    with pytest.raises(ConfigurationError):
        feed(operator, [("k", ("middle", 1))])


def test_join_needs_two_sides():
    with pytest.raises(ConfigurationError):
        StreamJoinOperator(("only",), lambda v: "only",
                           lambda k, s: None)


def test_join_state_immutable_updates():
    state = JoinState()
    updated = state.with_side("left", 1)
    assert state.sides == {}
    assert updated.sides == {"left": 1}
    assert not updated.complete(("left", "right"))
    assert updated.with_side("right", 2).complete(("left", "right"))


def test_three_way_join():
    operator = StreamJoinOperator(
        ("a", "b", "c"),
        side_of=lambda v: v[0],
        output=lambda key, sides: sum(v[1] for v in sides.values()),
    )
    emitted = feed(operator, [
        ("k", ("a", 1)), ("k", ("b", 2)), ("k", ("c", 4)),
    ])
    assert emitted == [7]


def test_nexmark_query3_job_end_to_end(env):
    from repro.query import QueryService
    from repro.workloads.nexmark import build_query3_job

    from ..conftest import make_squery_backend

    backend = make_squery_backend(env)
    job = build_query3_job(env, backend, rate_per_s=4000, sellers=100,
                           parallelism=3)
    job.start()
    env.run_until(2_500)
    joins = job.instances_of("sellerjoin")
    matched = sum(i.operator.matches_emitted for i in joins)
    assert matched > 0
    assert job.sink_received("out") == matched
    # The join state itself is queryable: how many sellers are still
    # waiting for their other side?
    service = QueryService(env)
    total = service.execute(
        'SELECT COUNT(*) AS n FROM "sellerjoin"'
    ).result.rows[0]["n"]
    assert 0 < total <= 100
