"""Tests for marker-aligned checkpoints and the 2PC protocol."""

from repro.config import JobConfig
from repro.dataflow import (
    Job,
    KeyedAggregateOperator,
    MapOperator,
    Pipeline,
    SinkOperator,
)
from repro.dataflow.backend import VanillaBackend
from repro.dataflow.sources import CallableSource

from ..conftest import build_average_job


def test_checkpoints_complete_periodically(env):
    job = build_average_job(env, checkpoint_interval_ms=500)
    job.start()
    env.run_until(5_250)
    assert job.coordinator.completed == 10
    assert env.store.committed_ssid == 10


def test_snapshot_ids_monotonic(env):
    job = build_average_job(env, checkpoint_interval_ms=500)
    job.start()
    env.run_until(3_000)
    ssids = [s.ssid for s in job.coordinator.samples]
    assert ssids == sorted(ssids)
    assert len(set(ssids)) == len(ssids)


def test_phase1_precedes_phase2(env):
    job = build_average_job(env)
    job.start()
    env.run_until(4_000)
    for sample in job.coordinator.samples:
        assert 0 < sample.phase1_ms < sample.phase2_ms


def test_retention_keeps_two_snapshots(env):
    job = build_average_job(env, checkpoint_interval_ms=500)
    job.start()
    env.run_until(4_000)
    assert env.store.available_ssids() == [
        env.store.committed_ssid - 1, env.store.committed_ssid,
    ]


def test_blob_backend_prunes_with_retention(env):
    backend = VanillaBackend(env.cluster)
    job = build_average_job(env, backend=backend,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(4_000)
    # Blobs exist only for the two retained snapshots: 2 ssids x
    # (1 stateful vertex x 3 instances).
    assert backend.blob_count() == 2 * 3
    committed = env.store.committed_ssid
    assert backend.has_blob("average", committed, 0)
    assert not backend.has_blob("average", committed - 2, 0)


def test_snapshot_state_is_consistent_cut(env):
    """Every committed snapshot's record count equals a prefix count:
    the sum over keys must equal the number of records the sources had
    emitted before the markers (exactly the checkpoint boundary)."""
    backend = VanillaBackend(env.cluster)
    job = build_average_job(env, backend=backend, rate=2000,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(5_000)
    committed = env.store.committed_ssid
    total = 0
    for instance in range(3):
        state = backend.restore_instance_state("average", instance,
                                               committed)
        total += sum(avg.count for avg in state.values())
    offsets = sum(
        backend.restore_source_offset("nums", i.instance, committed)
        for i in job.source_instances()
    )
    assert total == offsets


def test_exactly_once_no_duplicates_without_failures(env):
    job = build_average_job(env, rate=1000, keys=10,
                            limit_per_instance=300,
                            checkpoint_interval_ms=250)
    job.start()
    env.run_until(60_000)
    state = job.operator_state("average")
    assert sum(s.count for s in state.values()) == 900


def test_marker_alignment_blocks_fast_channel(env):
    """An operator fed by two sources must not apply post-marker records
    from the fast channel before its snapshot: the snapshotted count can
    never exceed the recorded source offsets."""
    backend = VanillaBackend(env.cluster)

    def gen(instance, seq):
        return seq % 7, 1

    pipeline = Pipeline()
    pipeline.add_source("fast", CallableSource(gen, 4000.0))
    pipeline.add_source("slow", CallableSource(gen, 100.0))
    pipeline.add_operator(
        "count", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("fast", "count")
    pipeline.connect("slow", "count")
    pipeline.connect("count", "out")
    job = Job(env, pipeline, JobConfig(checkpoint_interval_ms=300,
                                       parallelism=2), backend)
    job.start()
    env.run_until(4_000)
    assert job.coordinator.completed >= 5
    committed = env.store.committed_ssid
    counted = sum(
        sum(backend.restore_instance_state("count", i, committed).values())
        for i in range(2)
    )
    offsets = sum(
        backend.restore_source_offset(s.vertex_name, s.instance, committed)
        for s in job.source_instances()
    )
    assert counted == offsets


def test_skipped_checkpoints_counted_when_interval_too_short(env):
    # A 1ms interval cannot complete before the next tick fires.
    job = build_average_job(env, checkpoint_interval_ms=1.0)
    job.start()
    env.run_until(500)
    assert job.coordinator.skipped > 0
    # But checkpoints still make progress.
    assert job.coordinator.completed > 0


def test_stateless_operators_participate_in_checkpoints(env):
    pipeline = Pipeline()
    pipeline.add_source(
        "s", CallableSource(lambda i, q: (q % 3, q), 500.0)
    )
    pipeline.add_operator("noop", lambda: MapOperator(lambda v: v))
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("s", "noop")
    pipeline.connect("noop", "out")
    job = Job(env, pipeline, JobConfig(parallelism=2))
    job.start()
    env.run_until(3_500)
    assert job.coordinator.completed == 3
