"""End-to-end dataflow execution tests (vanilla backend)."""

import pytest

from repro.config import JobConfig
from repro.dataflow import (
    FilterOperator,
    Job,
    KeyedAggregateOperator,
    MapOperator,
    Pipeline,
    SinkOperator,
)
from repro.dataflow.sources import CallableSource
from repro.errors import DataflowError

from ..conftest import build_average_job


def test_records_flow_source_to_sink(env):
    job = build_average_job(env, rate=1000, limit_per_instance=100)
    job.start()
    env.run_until(60_000)
    assert job.all_sources_exhausted()
    assert job.sink_received("sink") == 300  # 3 instances x 100


def test_keyed_state_accumulates_correctly(env):
    job = build_average_job(env, rate=2000, keys=10,
                            limit_per_instance=500)
    job.start()
    env.run_until(60_000)
    state = job.operator_state("average")
    assert sum(s.count for s in state.values()) == 1500
    assert set(state) == set(range(10))


def test_partitioned_routing_sends_key_to_single_instance(env):
    job = build_average_job(env, keys=40, limit_per_instance=200)
    job.start()
    env.run_until(60_000)
    instances = job.instances_of("average")
    seen = {}
    for index, instance in enumerate(instances):
        for key, _ in instance.operator.state.items():
            assert key not in seen, "key processed by two instances"
            seen[key] = index


def test_sink_latency_recorded(env):
    job = build_average_job(env, rate=2000, limit_per_instance=200)
    job.start()
    env.run_until(60_000)
    latencies = job.metrics.sink_latencies
    assert len(latencies) == 600
    assert all(lat > 0 for lat in latencies)
    assert min(lat for lat in latencies) < 10.0


def test_stateless_chain(env):
    outputs = []

    def gen(instance, seq):
        if seq >= 50:
            return None
        return seq, seq

    pipeline = Pipeline()
    pipeline.add_source("nums", CallableSource(gen, 1000.0,
                                               limit_per_instance=50))
    pipeline.add_operator("double", lambda: MapOperator(lambda v: v * 2))
    pipeline.add_operator("evens", lambda: FilterOperator(
        lambda v: v % 4 == 0
    ))
    pipeline.add_operator(
        "sink", lambda: SinkOperator(lambda r: outputs.append(r.value))
    )
    pipeline.connect("nums", "double")
    pipeline.connect("double", "evens")
    pipeline.connect("evens", "sink")
    job = Job(env, pipeline, JobConfig(parallelism=2))
    job.start()
    env.run_until(60_000)
    # doubles of 0..49 from 2 instances, keeping multiples of 4
    assert sorted(outputs) == sorted(
        [v * 2 for v in range(50) if (v * 2) % 4 == 0] * 2
    )


def test_default_parallelism_is_node_count(env):
    job = build_average_job(env, parallelism=None)
    assert job.vertex_parallelism("average") == 3


def test_instances_striped_across_nodes(env):
    job = build_average_job(env, parallelism=3)
    nodes = [job.node_of("average", i) for i in range(3)]
    assert nodes == [0, 1, 2]


def test_job_cannot_start_twice(env):
    job = build_average_job(env)
    job.start()
    with pytest.raises(DataflowError):
        job.start()


def test_stop_halts_processing(env):
    job = build_average_job(env, rate=1000)
    job.start()
    env.run_until(2_000)
    count = job.sink_received("sink")
    assert count > 0
    job.stop()
    env.run_until(4_000)
    assert job.sink_received("sink") == count


def test_unknown_vertex_lookup_rejected(env):
    job = build_average_job(env)
    with pytest.raises(DataflowError):
        job.instances_of("nope")


def test_multiple_sources_into_one_operator(env):
    def gen(instance, seq):
        return seq % 5, 1

    pipeline = Pipeline()
    pipeline.add_source("s1", CallableSource(gen, 500.0,
                                             limit_per_instance=50))
    pipeline.add_source("s2", CallableSource(gen, 500.0,
                                             limit_per_instance=50))
    pipeline.add_operator(
        "count", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.connect("s1", "count")
    pipeline.connect("s2", "count")
    job = Job(env, pipeline, JobConfig(parallelism=2))
    job.start()
    env.run_until(60_000)
    assert sum(job.operator_state("count").values()) == 200


def test_rebalance_routing_spreads_records(env):
    received = []

    def gen(instance, seq):
        return 0, seq  # all records share one key

    pipeline = Pipeline()
    pipeline.add_source("s", CallableSource(gen, 1000.0,
                                            limit_per_instance=90))
    pipeline.add_operator(
        "sink", lambda: SinkOperator(lambda r: received.append(r))
    )
    pipeline.connect("s", "sink", routing="rebalance")
    job = Job(env, pipeline, JobConfig(parallelism=3))
    job.start()
    env.run_until(60_000)
    counts = [i.operator.received for i in job.instances_of("sink")]
    # Round-robin: every instance received a fair share despite one key
    # (3 source instances x 90 records each).
    assert sum(counts) == 270
    assert all(count > 0 for count in counts)


def test_broadcast_routing_reaches_all_instances(env):
    def gen(instance, seq):
        return seq, seq

    pipeline = Pipeline()
    pipeline.add_source("s", CallableSource(gen, 500.0,
                                            limit_per_instance=10))
    pipeline.add_operator("sink", SinkOperator)
    pipeline.connect("s", "sink", routing="broadcast")
    job = Job(env, pipeline, JobConfig(parallelism=3))
    job.start()
    env.run_until(60_000)
    # 1 source instance? no: parallelism 3 -> 3 instances x 10 records,
    # each broadcast to 3 sinks.
    assert job.sink_received("sink") == 90
