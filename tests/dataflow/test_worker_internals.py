"""Focused tests for operator-instance runtime edge cases."""

from repro.config import JobConfig
from repro.dataflow import (
    Job,
    KeyedAggregateOperator,
    Pipeline,
    SinkOperator,
)
from repro.dataflow.records import CheckpointMarker
from repro.dataflow.sources import CallableSource


def build(env, rate=1000.0, interval=500, parallelism=2):
    pipeline = Pipeline()
    pipeline.add_source(
        "src", CallableSource(lambda i, s: (s % 6, 1), rate)
    )
    pipeline.add_operator(
        "agg", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("src", "agg")
    pipeline.connect("agg", "out")
    job = Job(env, pipeline, JobConfig(checkpoint_interval_ms=interval,
                                       parallelism=parallelism))
    return job


def test_records_behind_marker_wait_for_snapshot(env):
    job = build(env)
    job.start()
    env.run_until(400)  # before the first checkpoint
    instance = job.instances_of("agg")[0]
    channel = next(iter(instance.input_channels.values()))
    # Inject a marker followed by a record on one channel.
    epoch = job.epoch
    instance.deliver_guarded(epoch, next(iter(instance.input_channels)),
                             CheckpointMarker(ssid=77))
    assert channel.blocked_ssid == 77
    before = instance.records_processed
    # Records delivered on the blocked channel queue up.
    from repro.dataflow.records import Record

    key = next(iter(instance.input_channels))
    marked = Record(0, 1, env.now)
    instance.deliver_guarded(epoch, key, marked)
    assert marked in channel.queue
    env.run_for(50)
    # Still queued (more stream records may pile up behind the marker):
    # alignment needs the marker on the OTHER channel too.
    assert channel.blocked_ssid == 77
    assert marked in channel.queue
    assert instance.records_processed >= before


def test_stale_epoch_delivery_dropped(env):
    job = build(env)
    job.start()
    env.run_until(300)
    instance = job.instances_of("agg")[0]
    from repro.dataflow.records import Record

    key = next(iter(instance.input_channels))
    old_epoch = job.epoch
    job.epoch += 1
    channel = instance.input_channels[key]
    depth = len(channel.queue)
    instance.deliver_guarded(old_epoch, key, Record(0, 1, env.now))
    assert len(channel.queue) == depth  # silently dropped


def test_unknown_channel_delivery_ignored(env):
    job = build(env)
    job.start()
    instance = job.instances_of("agg")[0]
    from repro.dataflow.records import Record

    instance.deliver_guarded(job.epoch, ("bogus", "channel"),
                             Record(0, 1, 0.0))  # must not raise


def test_forward_routing_uses_source_instance(env):
    from repro.dataflow.worker import OutputEdge

    class FakeTarget:
        def __init__(self, index):
            self.index = index
            self.gid = f"t[{index}]"
            self.node_id = 0

    targets = [FakeTarget(i) for i in range(3)]
    edge = OutputEdge(0, "forward", targets)
    from repro.dataflow.records import Record

    record = Record(9, "v", 0.0, seq=5, source_instance=2)
    assert edge.targets(record) == [targets[2]]


def test_service_time_includes_live_mirror_cost(env):
    from ..conftest import make_squery_backend

    backend = make_squery_backend(env)
    with_mirror = build_with_backend(env, backend)
    plain_env_job = with_mirror  # alias for clarity
    instance = plain_env_job.instances_of("agg")[0]
    base_cost = env.costs.record_service_ms + env.costs.state_update_ms
    samples = [instance._service_time() for _ in range(50)]
    assert min(samples) > base_cost  # mirror cost present


def build_with_backend(env, backend):
    pipeline = Pipeline()
    pipeline.add_source(
        "src", CallableSource(lambda i, s: (s % 6, 1), 500.0)
    )
    pipeline.add_operator(
        "agg", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("src", "agg")
    pipeline.connect("agg", "out")
    return Job(env, pipeline, JobConfig(parallelism=2), backend)


def test_duplicate_ack_raises(env):
    import pytest

    from repro.errors import CheckpointError

    job = build(env, interval=10_000)  # no natural ticks in the window
    job.start()
    env.run_until(100)
    coordinator = job.coordinator
    coordinator._begin_checkpoint()
    ssid = env.store.in_progress_ssid
    expected = coordinator._in_flight.expected_acks
    for i in range(expected):
        coordinator._on_ack(job.epoch, ssid, f"fake[{i}]")
    # The checkpoint moved to phase 2; a further phase-1 ack for a NEW
    # in-flight checkpoint of the same id cannot exist, and extra acks
    # for a finished one are ignored (in_flight.ssid mismatch) or, if
    # still in flight, rejected.
    current = coordinator._in_flight
    if current is not None and current.ssid == ssid:
        with pytest.raises(CheckpointError):
            coordinator._on_ack(job.epoch, ssid, "extra")


def test_coordinator_stop_prevents_future_ticks(env):
    job = build(env, interval=200)
    job.start()
    env.run_until(700)
    done = job.coordinator.completed
    job.coordinator.stop()
    env.run_for(1_000)
    assert job.coordinator.completed == done
