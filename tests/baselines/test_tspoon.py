"""Tests for the TSpoon baseline."""

import pytest

from repro.baselines import TSpoonSystem, build_vanilla_backend
from repro.dataflow.backend import VanillaBackend
from repro.errors import QueryError

from ..conftest import build_average_job, make_squery_backend


@pytest.fixture
def running(env):
    backend = make_squery_backend(env)
    job = build_average_job(env, backend=backend, rate=2000, keys=20,
                            checkpoint_interval_ms=500)
    job.start()
    env.run_until(1_500)
    return job, backend


def test_tspoon_reads_live_state(env, running):
    tspoon = TSpoonSystem(env)
    query = tspoon.submit_get("average", [0, 1])
    env.run_for(100)
    assert query.done
    assert set(query.values) == {0, 1}


def test_tspoon_latency_includes_txn_overhead(env, running):
    from repro.query import DirectObjectInterface

    tspoon = TSpoonSystem(env)
    squery = DirectObjectInterface(env)
    t_query = tspoon.submit_get("average", [0])
    s_query = squery.submit_get("average", [0])
    env.run_for(100)
    # Single-key: the transactional overhead makes TSpoon ~2x slower,
    # the paper's Fig. 14 headline.
    assert t_query.latency_ms > 1.5 * s_query.latency_ms


def test_tspoon_converges_with_squery_at_many_keys(env, running):
    from repro.query import DirectObjectInterface

    tspoon = TSpoonSystem(env)
    squery = DirectObjectInterface(env)
    keys = list(range(20))
    t_query = tspoon.submit_get("average", keys)
    s_query = squery.submit_get("average", keys)
    env.run_for(200)
    assert t_query.latency_ms < 1.3 * s_query.latency_ms


def test_tspoon_latency_raises_while_running(env, running):
    tspoon = TSpoonSystem(env)
    query = tspoon.submit_get("average", [0])
    with pytest.raises(QueryError):
        _ = query.latency_ms


def test_tspoon_on_done_callback(env, running):
    tspoon = TSpoonSystem(env)
    seen = []
    tspoon.submit_get("average", [0], on_done=seen.append)
    env.run_for(100)
    assert len(seen) == 1


def test_build_vanilla_backend(env):
    backend = build_vanilla_backend(env.cluster)
    assert isinstance(backend, VanillaBackend)
    assert backend.incremental is False
