"""Tests for cluster nodes and failure injection."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ClusterError, NodeDownError
from repro.simtime import Simulator


def make_cluster(nodes=3, backup_count=1):
    sim = Simulator()
    config = ClusterConfig(nodes=nodes, processing_workers_per_node=2,
                           backup_count=backup_count)
    return Cluster(sim, config)


def test_cluster_builds_requested_nodes():
    cluster = make_cluster(3)
    assert len(cluster.nodes) == 3
    assert [n.node_id for n in cluster.nodes] == [0, 1, 2]
    assert all(n.alive for n in cluster.nodes)


def test_node_pools_sized_from_config():
    cluster = make_cluster()
    node = cluster.node(0)
    assert node.processing_pool.workers == 2
    assert node.query_pool.workers == 4
    assert len(node.store_servers) == 4


def test_store_server_selection_wraps():
    node = make_cluster().node(0)
    assert node.store_server(0) is node.store_servers[0]
    assert node.store_server(5) is node.store_servers[1]


def test_unknown_node_rejected():
    with pytest.raises(ClusterError):
        make_cluster().node(9)


def test_kill_node_marks_dead_and_reassigns():
    cluster = make_cluster()
    owned_before = cluster.partitioner.partitions_owned_by(1)
    assert owned_before
    cluster.kill_node(1)
    assert not cluster.node(1).alive
    assert cluster.partitioner.partitions_owned_by(1) == []
    assert cluster.surviving_node_ids() == [0, 2]


def test_kill_node_twice_rejected():
    cluster = make_cluster()
    cluster.kill_node(1)
    with pytest.raises(NodeDownError):
        cluster.kill_node(1)


def test_cannot_kill_last_node():
    cluster = make_cluster(2)
    cluster.kill_node(0)
    with pytest.raises(ClusterError):
        cluster.kill_node(1)


def test_failure_listeners_invoked():
    cluster = make_cluster()
    seen = []
    cluster.on_node_failure(seen.append)
    cluster.kill_node(2)
    assert seen == [2]


def test_check_alive_raises_on_dead_node():
    cluster = make_cluster()
    cluster.kill_node(0)
    with pytest.raises(NodeDownError):
        cluster.node(0).check_alive()


def test_restart_node_rejoins_empty():
    cluster = make_cluster()
    cluster.fail_node(1)
    cluster.restart_node(1)
    assert cluster.node(1).alive
    assert cluster.surviving_node_ids() == [0, 1, 2]
    # The rejoined node owns no partitions; its old ones stay promoted.
    assert cluster.partitioner.partitions_owned_by(1) == []


def test_restart_of_alive_node_rejected():
    cluster = make_cluster()
    with pytest.raises(ClusterError):
        cluster.restart_node(0)


def test_recovery_listeners_invoked():
    cluster = make_cluster()
    seen = []
    cluster.on_node_recovery(seen.append)
    cluster.fail_node(2)
    assert seen == []
    cluster.restart_node(2)
    assert seen == [2]


def test_restarted_node_is_reassignment_target():
    cluster = make_cluster()
    cluster.fail_node(1)
    cluster.restart_node(1)
    cluster.fail_node(0)
    # Node 0's partitions were promoted somewhere alive — possibly the
    # rejoined node 1 — and nothing is orphaned on a dead member.
    for p in range(cluster.partitioner.partition_count):
        assert cluster.node(cluster.partitioner.owner_of_partition(p)).alive


def test_repeated_failures_never_promote_to_dead_backup():
    cluster = make_cluster(nodes=4)
    cluster.fail_node(1)
    cluster.fail_node(2)
    survivors = set(cluster.surviving_node_ids())
    for p in range(cluster.partitioner.partition_count):
        assert cluster.partitioner.owner_of_partition(p) in survivors


def test_invalid_cluster_config_rejected():
    from repro.errors import ConfigurationError
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Cluster(sim, ClusterConfig(nodes=0))
    with pytest.raises(ConfigurationError):
        Cluster(sim, ClusterConfig(nodes=2, backup_count=2))
