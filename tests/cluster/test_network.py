"""Tests for the network model."""

from repro.config import NetworkConfig
from repro.cluster import NetworkModel
from repro.simtime import Simulator


def make_network(jitter=0.0):
    sim = Simulator()
    config = NetworkConfig(local_delay_ms=0.01, remote_base_ms=0.25,
                           bytes_per_ms=1000.0, jitter_ms=jitter)
    return sim, NetworkModel(sim, config)


def test_local_delivery_is_cheap():
    sim, net = make_network()
    assert net.delay(0, 0, nbytes=10_000) == 0.01


def test_remote_delay_includes_bandwidth():
    sim, net = make_network()
    assert net.delay(0, 1, nbytes=1000) == 0.25 + 1.0


def test_send_delivers_payload():
    sim, net = make_network()
    got = []
    net.send(0, 1, got.append, "hello")
    sim.run()
    assert got == ["hello"]


def test_send_returns_delivery_time():
    sim, net = make_network()
    arrival = net.send(0, 1, lambda: None)
    assert arrival == 0.25


def test_fifo_per_channel_despite_jitter():
    sim, net = make_network(jitter=1.0)
    got = []
    for i in range(50):
        net.send(0, 1, got.append, i, channel="ch")
    sim.run()
    assert got == list(range(50))


def test_unchannelled_messages_may_reorder_with_jitter():
    sim, net = make_network(jitter=5.0)
    got = []
    for i in range(50):
        net.send(0, 1, got.append, i)
    sim.run()
    assert sorted(got) == list(range(50))
    assert got != list(range(50))  # jitter reorders at least one pair


def test_counters_accumulate():
    sim, net = make_network()
    net.send(0, 1, lambda: None, nbytes=100)
    net.send(1, 2, lambda: None, nbytes=200)
    assert net.messages_sent == 2
    assert net.bytes_sent == 300


def test_separate_channels_do_not_block_each_other():
    sim, net = make_network()
    first = net.send(0, 1, lambda: None, channel="a")
    second = net.send(0, 1, lambda: None, channel="b")
    # Without jitter both arrive after the base delay; channel FIFO
    # only forces ordering within one channel.
    assert first == second


def test_close_channel_forgets_ordering_floor():
    sim, net = make_network()
    net.send(0, 1, lambda: None, channel="a")
    assert net.open_channels == 1
    assert net.close_channel("a") is True
    assert net.open_channels == 0
    assert net.close_channel("a") is False  # already closed


def test_channel_count_bounded_by_eviction():
    sim = Simulator()
    config = NetworkConfig(local_delay_ms=0.01, remote_base_ms=0.25,
                           bytes_per_ms=1000.0, jitter_ms=0.0,
                           max_channels=8)
    net = NetworkModel(sim, config)
    # Churn through many short-lived channels, draining between sends
    # so every floor lies in the past when eviction scans the table.
    for i in range(100):
        net.send(0, 1, lambda: None, channel=("ephemeral", i))
        sim.run()
    assert net.open_channels <= config.max_channels


def test_eviction_preserves_live_floors():
    sim = Simulator()
    config = NetworkConfig(local_delay_ms=0.01, remote_base_ms=0.25,
                           bytes_per_ms=1000.0, jitter_ms=0.0,
                           max_channels=1)
    net = NetworkModel(sim, config)
    got = []
    # Two sends on the same channel without draining: the second must
    # still respect the first's floor even at the eviction threshold.
    net.send(0, 1, got.append, 1, channel="live")
    net.send(0, 1, got.append, 2, channel="live")
    sim.run()
    assert got == [1, 2]
