"""Tests for hash partitioning and placement."""

import pytest

from repro.cluster import Partitioner
from repro.cluster.partition import stable_hash
from repro.errors import ConfigurationError


def test_stable_hash_deterministic_for_strings():
    assert stable_hash("order-1") == stable_hash("order-1")
    assert stable_hash("order-1") != stable_hash("order-2")


def test_stable_hash_int_identity():
    assert stable_hash(12345) == 12345
    assert stable_hash(0) == 0


def test_partition_of_in_range():
    part = Partitioner(271, 3)
    for key in ["a", "b", 1, 42, (1, "x")]:
        assert 0 <= part.partition_of(key) < 271


def test_owner_round_robin():
    part = Partitioner(6, 3)
    owners = [part.owner_of_partition(p) for p in range(6)]
    assert owners == [0, 1, 2, 0, 1, 2]


def test_backups_are_next_nodes():
    part = Partitioner(6, 3, backup_count=1)
    assert part.backups_of_partition(0) == [1]
    assert part.backups_of_partition(2) == [0]


def test_backups_multiple():
    part = Partitioner(4, 4, backup_count=2)
    assert part.backups_of_partition(3) == [0, 1]


def test_partitions_owned_by():
    part = Partitioner(6, 3)
    assert part.partitions_owned_by(1) == [1, 4]


def test_reassign_node_promotes_backups():
    part = Partitioner(6, 3, backup_count=1)
    moved = part.reassign_node(0)
    assert set(moved) == {0, 3}
    for partition, new_owner in moved.items():
        assert new_owner != 0
        assert part.owner_of_partition(partition) == new_owner


def test_reassign_without_backups_fails():
    part = Partitioner(4, 2, backup_count=0)
    with pytest.raises(ConfigurationError):
        part.reassign_node(0)


def test_instance_routing_consistent_with_hash():
    part = Partitioner(271, 3)
    for key in range(100):
        assert part.instance_of(key, 7) == stable_hash(key) % 7


def test_node_of_instance_striped():
    part = Partitioner(271, 3)
    assert [part.node_of_instance(i, 6) for i in range(6)] == [
        0, 1, 2, 0, 1, 2,
    ]


def test_invalid_configs_rejected():
    with pytest.raises(ConfigurationError):
        Partitioner(0, 3)
    with pytest.raises(ConfigurationError):
        Partitioner(10, 0)
    with pytest.raises(ConfigurationError):
        Partitioner(10, 3, backup_count=3)
