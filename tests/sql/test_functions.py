"""Tests for aggregate accumulators and scalar functions."""

import pytest

from repro.errors import SqlExecutionError
from repro.sql.functions import (
    SCALAR_FUNCTIONS,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    make_aggregate,
)


def test_count_star_counts_nulls():
    acc = CountAggregate(count_star=True, distinct=False)
    for value in (1, None, 2):
        acc.add(value)
    assert acc.result() == 3


def test_count_column_skips_nulls():
    acc = CountAggregate(count_star=False, distinct=False)
    for value in (1, None, 2):
        acc.add(value)
    assert acc.result() == 2


def test_count_distinct():
    acc = CountAggregate(count_star=False, distinct=True)
    for value in (1, 1, 2, None, 2):
        acc.add(value)
    assert acc.result() == 2


def test_sum_ignores_nulls_and_empty_is_null():
    acc = SumAggregate(distinct=False)
    assert acc.result() is None
    for value in (1, None, 2.5):
        acc.add(value)
    assert acc.result() == 3.5


def test_sum_distinct():
    acc = SumAggregate(distinct=True)
    for value in (2, 2, 3):
        acc.add(value)
    assert acc.result() == 5


def test_avg():
    acc = AvgAggregate(distinct=False)
    assert acc.result() is None
    for value in (2, 4, None):
        acc.add(value)
    assert acc.result() == 3.0


def test_min_max():
    lo, hi = MinAggregate(), MaxAggregate()
    for value in (5, None, 2, 9):
        lo.add(value)
        hi.add(value)
    assert lo.result() == 2
    assert hi.result() == 9


def test_min_max_strings():
    lo = MinAggregate()
    for value in ("pear", "apple"):
        lo.add(value)
    assert lo.result() == "apple"


def test_make_aggregate_dispatch():
    assert isinstance(make_aggregate("COUNT", True, False), CountAggregate)
    assert isinstance(make_aggregate("SUM", False, False), SumAggregate)
    assert isinstance(make_aggregate("AVG", False, False), AvgAggregate)
    assert isinstance(make_aggregate("MIN", False, False), MinAggregate)
    assert isinstance(make_aggregate("MAX", False, False), MaxAggregate)
    with pytest.raises(SqlExecutionError):
        make_aggregate("MEDIAN", False, False)


@pytest.mark.parametrize("name, args, expected", [
    ("UPPER", ["abc"], "ABC"),
    ("LOWER", ["AbC"], "abc"),
    ("LENGTH", ["hello"], 5),
    ("ABS", [-3], 3),
    ("ROUND", [2.567, 1], 2.6),
    ("FLOOR", [2.9], 2),
    ("CEIL", [2.1], 3),
    ("COALESCE", [None, None, 7], 7),
    ("COALESCE", [None], None),
    ("NULLIF", [3, 3], None),
    ("NULLIF", [3, 4], 3),
    ("SQRT", [16], 4.0),
])
def test_scalar_functions(name, args, expected):
    assert SCALAR_FUNCTIONS[name](args) == expected


@pytest.mark.parametrize("name", ["UPPER", "LOWER", "LENGTH", "ABS",
                                  "FLOOR", "CEIL", "SQRT"])
def test_scalar_functions_null_propagation(name):
    assert SCALAR_FUNCTIONS[name]([None]) is None


def test_scalar_function_arity_checked():
    with pytest.raises(SqlExecutionError):
        SCALAR_FUNCTIONS["UPPER"](["a", "b"])
    with pytest.raises(SqlExecutionError):
        SCALAR_FUNCTIONS["NULLIF"]([1])
