"""Tests for columnar batch execution (repro.sql.batch).

The batch path must be bit-identical to the interpreted
``FragmentAccumulator``: same survivors in the same order, same
partial-group contents, and the same first error when a pushed
expression fails.
"""

import pytest

from repro.errors import SqlExecutionError
from repro.sql import EvalContext, parse
from repro.sql.batch import (
    BatchAccumulator,
    compile_fragment,
    fragment_cache_stats,
    run_fragment_batches,
)
from repro.sql.executor import execute_grouped_select
from repro.sql.fragments import (
    FragmentAccumulator,
    PartialGroups,
    merge_partial_groups,
    split_select,
)

CTX = EvalContext(now_ms=0.0)

ROWS = [
    {"key": k, "partitionKey": k, "value": k % 5, "weight": k % 3,
     "tag": ("alpha", "beta", None)[k % 3], "pad": k * 10}
    for k in range(23)
]


def fragment_of(sql: str):
    plan = split_select(parse(sql))
    return plan, plan.fragment("t")


def interpreted_run(fragment, raws):
    acc = FragmentAccumulator(fragment, CTX)
    lock_rows = [raw for raw in raws if acc.add(raw)]
    return lock_rows, acc.payload()


def groups_as_rows(plan, payload):
    merged = merge_partial_groups([payload], plan.partial, "t")
    return execute_grouped_select(plan.final_select, merged, CTX).rows


@pytest.mark.parametrize("chunk", [1, 4, 7, 100])
def test_projection_fragment_matches_interpreted(chunk):
    plan, fragment = fragment_of(
        'SELECT key, value FROM "t" WHERE value < 3 AND key > 2'
    )
    compiled, _ = compile_fragment(fragment)
    lock_rows, payload, batches = run_fragment_batches(
        fragment, compiled, ROWS, CTX, chunk
    )
    expected_locks, expected_payload = interpreted_run(fragment, ROWS)
    assert lock_rows == expected_locks
    assert payload == expected_payload
    assert batches == (len(ROWS) + chunk - 1) // chunk


@pytest.mark.parametrize("chunk", [1, 6, 100])
def test_partial_aggregate_fragment_matches_interpreted(chunk):
    sql = ('SELECT weight, SUM(value) AS s, COUNT(*) AS c, '
           'MIN(value) AS lo FROM "t" WHERE value <> 1 '
           "GROUP BY weight ORDER BY weight")
    plan, fragment = fragment_of(sql)
    compiled, _ = compile_fragment(fragment)
    lock_rows, payload, _ = run_fragment_batches(
        fragment, compiled, ROWS, CTX, chunk
    )
    expected_locks, expected_payload = interpreted_run(fragment, ROWS)
    assert lock_rows == expected_locks
    assert isinstance(payload, PartialGroups)
    # Group insertion order and representative rows match exactly...
    assert [(key, rep) for key, rep, _ in payload.entries] == \
        [(key, rep) for key, rep, _ in expected_payload.entries]
    # ...and the merged final result is identical.
    assert groups_as_rows(plan, payload) == \
        groups_as_rows(plan, expected_payload)


def test_null_heavy_group_keys_match():
    sql = ('SELECT tag, COUNT(*) AS c FROM "t" GROUP BY tag '
           "ORDER BY c")
    plan, fragment = fragment_of(sql)
    compiled, _ = compile_fragment(fragment)
    _, payload, _ = run_fragment_batches(fragment, compiled, ROWS, CTX, 5)
    _, expected = interpreted_run(fragment, ROWS)
    assert [entry[0] for entry in payload.entries] == \
        [entry[0] for entry in expected.entries]
    assert groups_as_rows(plan, payload) == groups_as_rows(plan, expected)


def test_interpreted_fallback_when_not_compiled():
    plan, fragment = fragment_of('SELECT key FROM "t" WHERE value = 0')
    lock_rows, payload, batches = run_fragment_batches(
        fragment, None, ROWS, CTX, 4
    )
    expected_locks, expected_payload = interpreted_run(fragment, ROWS)
    assert lock_rows == expected_locks
    assert payload == expected_payload
    assert batches == 0


def error_rows():
    rows = [dict(raw) for raw in ROWS]
    rows[9]["value"] = "boom"   # first error in row-major order
    rows[15]["value"] = object()  # later error must not win
    return rows


@pytest.mark.parametrize("chunk", [1, 4, 100])
def test_first_error_matches_interpreted_sweep(chunk):
    _, fragment = fragment_of('SELECT key FROM "t" WHERE value < 3')
    compiled, _ = compile_fragment(fragment)
    rows = error_rows()
    with pytest.raises(SqlExecutionError) as interpreted_error:
        interpreted_run(fragment, rows)
    with pytest.raises(SqlExecutionError) as batch_error:
        run_fragment_batches(fragment, compiled, rows, CTX, chunk)
    assert str(batch_error.value) == str(interpreted_error.value)
    assert "cannot compare str with int" in str(batch_error.value)


def test_error_in_aggregate_feed_matches_interpreted():
    _, fragment = fragment_of(
        'SELECT weight, SUM(value) AS s FROM "t" GROUP BY weight'
    )
    compiled, _ = compile_fragment(fragment)
    rows = [dict(raw) for raw in ROWS]
    del rows[7]["value"]  # unknown column mid-chunk
    with pytest.raises(SqlExecutionError) as interpreted_error:
        interpreted_run(fragment, rows)
    with pytest.raises(SqlExecutionError) as batch_error:
        run_fragment_batches(fragment, compiled, rows, CTX, 10)
    assert str(batch_error.value) == str(interpreted_error.value)


def test_eliminated_rows_never_error():
    # A row killed by an earlier conjunct must not surface errors from
    # later conjuncts — conjunct-major order preserves the interpreted
    # early-exit exactly.
    _, fragment = fragment_of(
        'SELECT key FROM "t" WHERE value < 2 AND pad / value > 0'
    )
    compiled, _ = compile_fragment(fragment)
    rows = [
        {"key": 0, "partitionKey": 0, "value": 0, "pad": 10},  # v<2, /0!
        {"key": 1, "partitionKey": 1, "value": 9, "pad": 10},  # killed
        {"key": 2, "partitionKey": 2, "value": 1, "pad": 10},
    ]
    with pytest.raises(SqlExecutionError) as interpreted_error:
        interpreted_run(fragment, rows)
    with pytest.raises(SqlExecutionError) as batch_error:
        run_fragment_batches(fragment, compiled, rows, CTX, 10)
    assert str(batch_error.value) == str(interpreted_error.value)
    assert "division by zero" in str(batch_error.value)


def test_fragment_cache_hits_on_identical_shape():
    _, fragment = fragment_of('SELECT key FROM "t" WHERE value < 4')
    _, plan_fragment = fragment_of('SELECT key FROM "t" WHERE value < 4')
    first, first_hit = compile_fragment(fragment)
    again, again_hit = compile_fragment(plan_fragment)
    assert again is first  # frozen fragments hash by value
    assert again_hit is True
    hits, misses = fragment_cache_stats()
    assert hits >= 1 and misses >= 1


def test_batch_accumulator_survivor_order_is_row_order():
    _, fragment = fragment_of('SELECT key FROM "t" WHERE value >= 0')
    compiled, _ = compile_fragment(fragment)
    acc = BatchAccumulator(compiled, CTX)
    survivors = acc.add_batch(list(reversed(ROWS)))
    assert [row["key"] for row in survivors] == \
        [raw["key"] for raw in reversed(ROWS)]
    assert acc.survived == len(ROWS)
