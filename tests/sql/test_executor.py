"""Tests for SQL execution over dict rows."""

import pytest

from repro.errors import SqlExecutionError, SqlPlanError
from repro.sql import EvalContext, execute_select, parse
from repro.sql.planner import DictCatalog, ListTable


def catalog(**tables):
    return DictCatalog({
        name: ListTable(name, tuple(rows))
        for name, rows in tables.items()
    })


def run(sql, cat, now_ms=0.0):
    return execute_select(parse(sql), cat, EvalContext(now_ms=now_ms))


PEOPLE = [
    {"id": 1, "name": "ada", "age": 36, "city": "delft"},
    {"id": 2, "name": "bob", "age": 20, "city": "delft"},
    {"id": 3, "name": "cyd", "age": 52, "city": "berlin"},
    {"id": 4, "name": "dan", "age": None, "city": "berlin"},
]

ORDERS = [
    {"id": 10, "person": 1, "total": 5.0},
    {"id": 11, "person": 1, "total": 7.5},
    {"id": 12, "person": 3, "total": 1.0},
    {"id": 13, "person": 9, "total": 2.0},  # dangling person
]


def test_select_star_returns_all_columns():
    result = run("SELECT * FROM people", catalog(people=PEOPLE))
    assert result.columns == ["id", "name", "age", "city"]
    assert len(result) == 4


def test_projection_and_alias():
    result = run("SELECT name, age * 2 AS dbl FROM people",
                 catalog(people=PEOPLE))
    assert result.columns == ["name", "dbl"]
    assert result.rows[0] == {"name": "ada", "dbl": 72}


def test_where_filters():
    result = run("SELECT name FROM people WHERE age > 30",
                 catalog(people=PEOPLE))
    assert result.column("name") == ["ada", "cyd"]


def test_where_null_excluded():
    result = run("SELECT name FROM people WHERE age < 100",
                 catalog(people=PEOPLE))
    assert "dan" not in result.column("name")


def test_comparison_operators():
    cat = catalog(people=PEOPLE)
    assert len(run("SELECT id FROM people WHERE age = 20", cat)) == 1
    assert len(run("SELECT id FROM people WHERE age <> 20", cat)) == 2
    assert len(run("SELECT id FROM people WHERE age >= 36", cat)) == 2
    assert len(run("SELECT id FROM people WHERE age <= 36", cat)) == 2


def test_and_or_not():
    cat = catalog(people=PEOPLE)
    result = run(
        "SELECT name FROM people WHERE city = 'delft' AND age > 30", cat
    )
    assert result.column("name") == ["ada"]
    result = run(
        "SELECT name FROM people WHERE NOT city = 'delft'", cat
    )
    assert result.column("name") == ["cyd", "dan"]


def test_in_and_between():
    cat = catalog(people=PEOPLE)
    assert run("SELECT name FROM people WHERE id IN (1, 3)",
               cat).column("name") == ["ada", "cyd"]
    assert run("SELECT name FROM people WHERE age BETWEEN 20 AND 40",
               cat).column("name") == ["ada", "bob"]


def test_like():
    cat = catalog(people=PEOPLE)
    assert run("SELECT name FROM people WHERE name LIKE '%a%'",
               cat).column("name") == ["ada", "dan"]
    assert run("SELECT name FROM people WHERE name LIKE '_o_'",
               cat).column("name") == ["bob"]


def test_is_null():
    cat = catalog(people=PEOPLE)
    assert run("SELECT name FROM people WHERE age IS NULL",
               cat).column("name") == ["dan"]
    assert len(run("SELECT name FROM people WHERE age IS NOT NULL",
                   cat)) == 3


def test_arithmetic_and_division_by_zero():
    cat = catalog(t=[{"a": 10, "b": 3}])
    result = run("SELECT a + b, a - b, a * b, a / b, a % b FROM t", cat)
    assert result.tuples() == [(13, 7, 30, pytest.approx(10 / 3), 1)]
    with pytest.raises(SqlExecutionError):
        run("SELECT a / 0 FROM t", cat)


def test_unknown_column_raises():
    with pytest.raises(SqlExecutionError):
        run("SELECT nope FROM people", catalog(people=PEOPLE))


def test_unknown_table_raises():
    with pytest.raises(SqlPlanError):
        run("SELECT a FROM missing", catalog(people=PEOPLE))


# -- joins -------------------------------------------------------------------


def test_inner_join_using():
    cat = catalog(
        a=[{"k": 1, "x": "a1"}, {"k": 2, "x": "a2"}],
        b=[{"k": 1, "y": "b1"}, {"k": 3, "y": "b3"}],
    )
    result = run("SELECT k, x, y FROM a JOIN b USING(k)", cat)
    assert result.tuples() == [(1, "a1", "b1")]


def test_join_on_equality_uses_hash_join():
    cat = catalog(people=PEOPLE, orders=ORDERS)
    result = run(
        "SELECT name, total FROM people p JOIN orders o "
        "ON p.id = o.person ORDER BY total",
        cat,
    )
    assert result.tuples() == [
        ("cyd", 1.0), ("ada", 5.0), ("ada", 7.5),
    ]


def test_left_join_null_extends():
    cat = catalog(
        a=[{"k": 1}, {"k": 2}],
        b=[{"k": 1, "y": "hit"}],
    )
    result = run("SELECT k, y FROM a LEFT JOIN b USING(k) ORDER BY k", cat)
    assert result.tuples() == [(1, "hit"), (2, None)]


def test_nested_loop_join_inequality():
    cat = catalog(
        a=[{"v": 1}, {"v": 5}],
        b=[{"w": 3}],
    )
    result = run("SELECT v, w FROM a JOIN b ON a.v < b.w", cat)
    assert result.tuples() == [(1, 3)]


def test_three_way_join():
    cat = catalog(
        a=[{"k": 1, "x": 1}],
        b=[{"k": 1, "y": 2}],
        c=[{"k": 1, "z": 3}],
    )
    result = run("SELECT x, y, z FROM a JOIN b USING(k) JOIN c USING(k)",
                 cat)
    assert result.tuples() == [(1, 2, 3)]


def test_duplicate_binding_rejected():
    cat = catalog(a=[{"k": 1}])
    with pytest.raises(SqlPlanError):
        run("SELECT k FROM a JOIN a USING(k)", cat)


def test_self_join_with_alias():
    cat = catalog(a=[{"k": 1, "v": 2}, {"k": 2, "v": 1}])
    result = run(
        "SELECT x.k FROM a x JOIN a y ON x.v = y.k ORDER BY x.k", cat
    )
    assert result.column("k") == [1, 2]


# -- aggregation ----------------------------------------------------------------


def test_count_star_and_column():
    cat = catalog(people=PEOPLE)
    result = run("SELECT COUNT(*), COUNT(age) FROM people", cat)
    assert result.tuples() == [(4, 3)]  # COUNT(col) skips NULL


def test_sum_avg_min_max():
    cat = catalog(people=PEOPLE)
    result = run("SELECT SUM(age), AVG(age), MIN(age), MAX(age) "
                 "FROM people", cat)
    assert result.tuples() == [(108, 36.0, 20, 52)]


def test_group_by():
    cat = catalog(people=PEOPLE)
    result = run(
        "SELECT city, COUNT(*) AS n FROM people GROUP BY city "
        "ORDER BY city",
        cat,
    )
    assert result.tuples() == [("berlin", 2), ("delft", 2)]


def test_group_by_having():
    cat = catalog(orders=ORDERS)
    result = run(
        "SELECT person, SUM(total) AS t FROM orders GROUP BY person "
        "HAVING SUM(total) > 2 ORDER BY t DESC",
        cat,
    )
    assert result.tuples() == [(1, 12.5)]


def test_aggregate_empty_input_no_group_by():
    cat = catalog(t=[])
    result = run("SELECT COUNT(*), SUM(x), MIN(x) FROM t", cat)
    assert result.tuples() == [(0, None, None)]


def test_aggregate_empty_input_with_group_by():
    cat = catalog(t=[])
    result = run("SELECT x, COUNT(*) FROM t GROUP BY x", cat)
    assert result.tuples() == []


def test_count_distinct():
    cat = catalog(people=PEOPLE)
    result = run("SELECT COUNT(DISTINCT city) FROM people", cat)
    assert result.tuples() == [(2,)]


def test_aggregate_of_expression():
    cat = catalog(t=[{"a": 1}, {"a": 2}])
    result = run("SELECT SUM(a * 10) FROM t", cat)
    assert result.tuples() == [(30,)]


def test_star_with_aggregation_rejected():
    with pytest.raises(SqlPlanError):
        run("SELECT * FROM people GROUP BY city", catalog(people=PEOPLE))


def test_having_without_aggregate_rejected():
    with pytest.raises(SqlPlanError):
        run("SELECT name FROM people HAVING age > 1",
            catalog(people=PEOPLE))


# -- ordering, distinct, limit -------------------------------------------------


def test_order_by_asc_desc():
    cat = catalog(people=PEOPLE)
    result = run("SELECT name FROM people WHERE age IS NOT NULL "
                 "ORDER BY age DESC", cat)
    assert result.column("name") == ["cyd", "ada", "bob"]


def test_order_by_nulls_last():
    cat = catalog(people=PEOPLE)
    result = run("SELECT name FROM people ORDER BY age", cat)
    assert result.column("name") == ["bob", "ada", "cyd", "dan"]
    result = run("SELECT name FROM people ORDER BY age DESC", cat)
    assert result.column("name") == ["cyd", "ada", "bob", "dan"]


def test_order_by_alias():
    cat = catalog(t=[{"a": 1}, {"a": 3}, {"a": 2}])
    result = run("SELECT a * 10 AS tens FROM t ORDER BY tens DESC", cat)
    assert result.column("tens") == [30, 20, 10]


def test_order_by_aggregate():
    cat = catalog(orders=ORDERS)
    result = run(
        "SELECT person FROM orders GROUP BY person ORDER BY SUM(total)",
        cat,
    )
    assert result.column("person") == [3, 9, 1]


def test_limit_offset():
    cat = catalog(t=[{"a": i} for i in range(10)])
    result = run("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 4", cat)
    assert result.column("a") == [4, 5, 6]


def test_distinct_rows():
    cat = catalog(t=[{"a": 1}, {"a": 1}, {"a": 2}])
    result = run("SELECT DISTINCT a FROM t ORDER BY a", cat)
    assert result.column("a") == [1, 2]


# -- misc ----------------------------------------------------------------


def test_localtimestamp_uses_context():
    cat = catalog(t=[{"deadline": 100.0}, {"deadline": 900.0}])
    result = run("SELECT deadline FROM t WHERE deadline < LOCALTIMESTAMP",
                 cat, now_ms=500.0)
    assert result.column("deadline") == [100.0]


def test_case_when():
    cat = catalog(t=[{"a": 1}, {"a": 5}])
    result = run(
        "SELECT CASE WHEN a > 3 THEN 'big' ELSE 'small' END AS size "
        "FROM t",
        cat,
    )
    assert result.column("size") == ["small", "big"]


def test_scalar_functions():
    cat = catalog(t=[{"s": "MiXeD", "x": -2.7}])
    result = run(
        "SELECT UPPER(s), LOWER(s), LENGTH(s), ABS(x), ROUND(x), "
        "COALESCE(NULL, s) FROM t",
        cat,
    )
    assert result.tuples() == [("MIXED", "mixed", 5, 2.7, -3, "MiXeD")]


def test_derived_column_names():
    cat = catalog(t=[{"a": 1}])
    result = run("SELECT COUNT(*), a FROM t GROUP BY a", cat)
    assert result.columns == ["COUNT(*)", "a"]


def test_scanned_counts_all_inputs():
    cat = catalog(
        a=[{"k": i} for i in range(5)],
        b=[{"k": i} for i in range(7)],
    )
    result = run("SELECT COUNT(*) FROM a JOIN b USING(k)", cat)
    assert result.scanned == 12


# -- UNION ---------------------------------------------------------------


def test_union_all_concatenates():
    cat = catalog(a=[{"x": 1}], b=[{"x": 1}, {"x": 2}])
    result = run("SELECT x FROM a UNION ALL SELECT x FROM b", cat)
    assert sorted(result.column("x")) == [1, 1, 2]


def test_union_deduplicates():
    cat = catalog(a=[{"x": 1}], b=[{"x": 1}, {"x": 2}])
    result = run("SELECT x FROM a UNION SELECT x FROM b", cat)
    assert sorted(result.column("x")) == [1, 2]


def test_union_uses_first_branch_column_names():
    cat = catalog(a=[{"x": 1}], b=[{"y": 9}])
    result = run("SELECT x AS v FROM a UNION ALL SELECT y FROM b", cat)
    assert result.columns == ["v"]
    assert sorted(result.column("v")) == [1, 9]


def test_union_width_mismatch_rejected():
    cat = catalog(a=[{"x": 1}], b=[{"x": 1, "y": 2}])
    with pytest.raises(SqlExecutionError):
        run("SELECT x FROM a UNION ALL SELECT x, y FROM b", cat)


def test_union_of_aggregates():
    cat = catalog(a=[{"x": 1}, {"x": 2}], b=[{"x": 10}])
    result = run(
        "SELECT 'a' AS src, COUNT(*) AS n FROM a "
        "UNION ALL SELECT 'b', COUNT(*) FROM b",
        cat,
    )
    assert sorted(result.tuples()) == [("a", 2), ("b", 1)]


def test_union_three_branches():
    cat = catalog(a=[{"x": 1}], b=[{"x": 2}], c=[{"x": 3}])
    result = run(
        "SELECT x FROM a UNION ALL SELECT x FROM b "
        "UNION ALL SELECT x FROM c",
        cat,
    )
    assert sorted(result.column("x")) == [1, 2, 3]


def test_mixed_union_kinds_rejected():
    from repro.errors import SqlParseError

    cat = catalog(a=[{"x": 1}], b=[{"x": 2}], c=[{"x": 3}])
    with pytest.raises(SqlParseError):
        run("SELECT x FROM a UNION SELECT x FROM b "
            "UNION ALL SELECT x FROM c", cat)
