"""Tests for the logical planner's join-strategy selection."""

import pytest

from repro.errors import SqlPlanError
from repro.sql import parse
from repro.sql.ast import Column
from repro.sql.planner import DictCatalog, ListTable, plan_select


def catalog():
    return DictCatalog({
        "a": ListTable("a", ({"k": 1},)),
        "b": ListTable("b", ({"k": 1},)),
    })


def plan(sql):
    return plan_select(parse(sql), catalog())


def test_using_join_plans_hash_using():
    step = plan("SELECT k FROM a JOIN b USING(k)").joins[0]
    assert step.using == ("k",)
    assert step.hash_on is None


def test_equality_on_plans_hash_join():
    step = plan("SELECT a.k FROM a JOIN b ON a.k = b.k").joins[0]
    assert step.hash_on is not None
    probe, build = step.hash_on
    assert build == Column("k", table="b")
    assert probe == Column("k", table="a")


def test_equality_on_reversed_sides_normalised():
    step = plan("SELECT a.k FROM a JOIN b ON b.k = a.k").joins[0]
    probe, build = step.hash_on
    assert build.table == "b"
    assert probe.table == "a"


def test_inequality_on_falls_back_to_nested_loop():
    step = plan("SELECT a.k FROM a JOIN b ON a.k < b.k").joins[0]
    assert step.hash_on is None
    assert step.on is not None


def test_unqualified_on_falls_back():
    step = plan("SELECT a.k FROM a JOIN b ON k = k").joins[0]
    assert step.hash_on is None


def test_aggregate_detection():
    assert plan("SELECT COUNT(*) FROM a").is_aggregate
    assert plan("SELECT k FROM a GROUP BY k").is_aggregate
    assert not plan("SELECT k FROM a").is_aggregate


def test_aggregate_inside_expression_detected():
    assert plan("SELECT COUNT(*) + 1 FROM a").is_aggregate


def test_unknown_table():
    with pytest.raises(SqlPlanError):
        plan_select(parse("SELECT x FROM zzz"), catalog())


def test_base_binding_uses_alias():
    result = plan_select(parse("SELECT x FROM a alias_name"), catalog())
    assert result.base_binding == "alias_name"
