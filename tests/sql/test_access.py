"""Tests for cost-based access-path selection (repro.sql.access)."""

from repro.config import CostModel
from repro.kvstore.indexes import EqProbe, RangeProbe
from repro.sql import parse
from repro.sql.access import choose_access_path, probe_for
from repro.sql.executor import like_literal_prefix
from repro.sql.fragments import (
    KeyRange,
    KeySet,
    _prefix_upper_bound,
    extract_column_filter,
    extract_key_filter,
    split_select,
)
from repro.sql.planner import split_conjuncts


def column_filter_of(sql: str, column: str):
    select = parse(sql)
    return extract_column_filter(
        split_conjuncts(select.where), column, select.table.binding
    )


# -- LIKE prefix extraction --------------------------------------------------


def test_like_literal_prefix():
    assert like_literal_prefix("item-0%") == "item-0"
    assert like_literal_prefix("exact") == "exact"  # wildcard-free
    assert like_literal_prefix("%suffix") is None
    assert like_literal_prefix("a_c") == "a"
    assert like_literal_prefix("_") is None
    assert like_literal_prefix("") is None


def test_prefix_upper_bound():
    assert _prefix_upper_bound("abc") == "abd"
    assert _prefix_upper_bound("a") == "b"
    # A trailing max code point falls back to the previous character.
    top = chr(0x10FFFF)
    assert _prefix_upper_bound("a" + top) == "b"
    assert _prefix_upper_bound(top * 3) is None


def test_prefix_upper_bound_skips_surrogate_block():
    # Regression: a prefix ending in U+D7FF used to increment straight
    # into the surrogate block, producing a lone surrogate bound that
    # no UTF-8 serialization of the plan could encode.  The increment
    # must skip to U+E000, the first character after the block.
    bound = _prefix_upper_bound("a퟿")
    assert bound == "a"
    assert bound is not None and not any(
        0xD800 <= ord(ch) <= 0xDFFF for ch in bound
    )
    bound.encode("utf-8")  # must be a valid, encodable string
    # The bound is still correct: above the prefix and above every
    # real string that starts with it.
    assert "a퟿" < bound
    assert "a퟿￿" < bound
    # A LIKE over such a prefix builds the same surrogate-free range.
    like_range = column_filter_of(
        "SELECT * FROM \"t\" WHERE v LIKE 'a퟿%'", "v"
    )
    assert like_range == (
        KeyRange(low="a퟿", high="a", high_inclusive=False),
        True,  # the LIKE itself still re-checks each candidate
    )


# -- column filter extraction ------------------------------------------------


def test_equality_and_in_column_filters():
    assert column_filter_of(
        'SELECT * FROM "t" WHERE v = 5', "v"
    ) == (KeySet((5,)), False)
    assert column_filter_of(
        'SELECT * FROM "t" WHERE v IN (3, 1, 3)', "v"
    ) == (KeySet((3, 1)), False)


def test_range_and_between_column_filters():
    assert column_filter_of(
        'SELECT * FROM "t" WHERE v > 10 AND v <= 20', "v"
    ) == (KeyRange(low=10, high=20, low_inclusive=False), False)
    assert column_filter_of(
        'SELECT * FROM "t" WHERE v BETWEEN 2 AND 9', "v"
    ) == (KeyRange(low=2, high=9), False)


def test_like_prefix_column_filter_is_a_string_range():
    extracted = column_filter_of(
        "SELECT * FROM \"t\" WHERE label LIKE 'item-0%'", "label"
    )
    assert extracted == (
        KeyRange(low="item-0", high="item-1", high_inclusive=False),
        True,  # bounds constrain str(value): needs_str
    )


def test_wildcard_free_like_is_an_exact_string_match():
    assert column_filter_of(
        "SELECT * FROM \"t\" WHERE label LIKE 'item-1'", "label"
    ) == (KeySet(("item-1",)), True)


def test_negated_and_leading_wildcard_like_do_not_contribute():
    assert column_filter_of(
        "SELECT * FROM \"t\" WHERE label NOT LIKE 'item%'", "label"
    ) is None
    assert column_filter_of(
        "SELECT * FROM \"t\" WHERE label LIKE '%-1'", "label"
    ) is None


def test_like_and_equality_filters_intersect():
    extracted = column_filter_of(
        "SELECT * FROM \"t\" WHERE label LIKE 'item%' "
        "AND label IN ('item-1', 'other')", "label"
    )
    assert extracted == (KeySet(("item-1",)), True)


def test_unrestricted_column_yields_none():
    assert column_filter_of(
        'SELECT * FROM "t" WHERE v = 1', "other"
    ) is None
    assert column_filter_of('SELECT * FROM "t"', "v") is None


def test_like_never_feeds_key_filters():
    # str-coerced bounds are unsound for raw-key routing: the key
    # extractor must ignore LIKE even on the key column.
    select = parse("SELECT * FROM \"t\" WHERE key LIKE 'a%'")
    assert extract_key_filter(
        split_conjuncts(select.where), "key", select.table.binding
    ) is None


# -- probe translation -------------------------------------------------------


def test_probe_for_key_set_strips_nulls():
    probe = probe_for(KeySet((1, None, 2)), needs_str=False)
    assert probe == EqProbe((1, 2))


def test_probe_for_key_range_copies_bounds():
    probe = probe_for(
        KeyRange(low=3, high=9, low_inclusive=False), needs_str=True
    )
    assert probe == RangeProbe(low=3, high=9, low_inclusive=False,
                               needs_str=True)


# -- the chooser -------------------------------------------------------------


class FakeView:
    """Per-partition candidate counts the chooser prices against."""

    def __init__(self, columns, counts):
        self._columns = columns
        self._counts = counts  # (partition, column) -> (probes, cands)

    def index_columns(self):
        return self._columns

    def index_probe_count(self, partition, column, probe):
        return self._counts.get((partition, column))


COSTS = CostModel()


def fragment_of(sql: str):
    plan = split_select(parse(sql))
    return plan.fragments[parse(sql).table.name]


def test_selective_equality_chooses_index_eq():
    fragment = fragment_of('SELECT * FROM "t" WHERE v = 5')
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 3), (1, "v"): (1, 2)})
    choice = choose_access_path(fragment, view, (), [0, 1], 1000, COSTS)
    assert choice.kind == "index-eq"
    assert choice.column == "v"
    assert choice.probes == 2
    assert choice.candidates == 5
    assert choice.cost_ms < choice.scan_cost_ms
    assert "index probe on 'v'" in choice.describe()


def test_selective_range_chooses_index_range():
    fragment = fragment_of('SELECT * FROM "t" WHERE v BETWEEN 2 AND 4')
    view = FakeView({"v": "sorted"}, {(0, "v"): (1, 10)})
    choice = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    assert choice.kind == "index-range"
    assert "index range on 'v'" in choice.describe()


def test_non_selective_predicate_keeps_full_scan():
    fragment = fragment_of('SELECT * FROM "t" WHERE v = 5')
    # The index resolves nearly every row: probing cannot win.
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 1000)})
    choice = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    assert choice.kind == "scan"
    assert choice.candidates == choice.scan_entries == 1000
    assert "full scan" in choice.describe()


def test_hash_index_rejects_range_probes():
    fragment = fragment_of('SELECT * FROM "t" WHERE v > 5')
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 0)})
    choice = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    assert choice.kind == "scan"


def test_unprobeable_partition_vetoes_the_index_path():
    fragment = fragment_of('SELECT * FROM "t" WHERE v = 5')
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 1)})  # 1 missing
    choice = choose_access_path(fragment, view, (), [0, 1], 1000, COSTS)
    assert choice.kind == "scan"


def test_unrestricted_index_column_is_skipped():
    fragment = fragment_of('SELECT * FROM "t" WHERE other = 1')
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 0)})
    choice = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    assert choice.kind == "scan"


def test_cheapest_index_wins_across_columns():
    fragment = fragment_of('SELECT * FROM "t" WHERE v = 5 AND w = 2')
    view = FakeView(
        {"v": "hash", "w": "hash"},
        {(0, "v"): (1, 200), (0, "w"): (1, 4)},
    )
    choice = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    assert choice.kind == "index-eq"
    assert choice.column == "w"


def test_surcharge_prices_both_paths():
    fragment = fragment_of('SELECT * FROM "t" WHERE v = 5')
    view = FakeView({"v": "hash"}, {(0, "v"): (1, 100)})
    flat = choose_access_path(fragment, view, (), [0], 1000, COSTS)
    taxed = choose_access_path(fragment, view, (), [0], 1000, COSTS,
                               surcharge_ms=0.01)
    assert taxed.cost_ms > flat.cost_ms
    assert taxed.scan_cost_ms > flat.scan_cost_ms
    # The surcharge applies per candidate vs per scanned row, so the
    # selective index win only widens.
    assert taxed.scan_cost_ms - taxed.cost_ms > \
        flat.scan_cost_ms - flat.cost_ms
