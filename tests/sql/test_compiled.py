"""Unit tests for the predicate/expression compiler (repro.sql.compiled).

Every ``Expr`` node kind is compiled and checked against the interpreted
executor on the same rows — values, three-valued logic, and error
messages must match exactly, because the vectorized scan path promises
bit-identical results to the ``vectorized=False`` baseline.
"""

import pytest

from repro.errors import SqlExecutionError
from repro.sql import EvalContext, parse
from repro.sql.ast import (
    Between,
    Binary,
    CaseWhen,
    Column,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    LocalTimestamp,
    Star,
    Unary,
)
from repro.sql.compiled import (
    compile_expr,
    compile_predicate,
    compile_projection,
)
from repro.sql.executor import bind_row, eval_expr, eval_predicate

CTX = EvalContext(now_ms=123.0)
BINDING = "t"


def outcome_interpreted(expr, raw):
    try:
        value = eval_expr(expr, bind_row(raw, BINDING), CTX)
        return ("value", type(value), value)
    except SqlExecutionError as exc:
        return ("error", str(exc))


def outcome_compiled(expr, raw):
    fn = compile_expr(expr, BINDING)
    try:
        value = fn(raw, CTX)
        return ("value", type(value), value)
    except SqlExecutionError as exc:
        return ("error", str(exc))


def assert_equivalent(expr, raw):
    expected = outcome_interpreted(expr, raw)
    actual = outcome_compiled(expr, raw)
    assert actual == expected, (expr, raw)
    return actual


# -- literals, clock, and columns -------------------------------------------


def test_literal_and_localtimestamp():
    assert_equivalent(Literal(7), {})
    assert_equivalent(Literal("abc"), {})
    assert_equivalent(Literal(None), {})
    assert assert_equivalent(LocalTimestamp(), {}) == \
        ("value", float, 123.0)


def test_unqualified_column_resolution():
    assert_equivalent(Column("v"), {"v": 9})
    assert_equivalent(Column("v"), {"v": None})  # stored NULL, not missing
    missing = assert_equivalent(Column("nope"), {"v": 9})
    assert missing == ("error", "unknown column 'nope'")


def test_binding_qualified_column_prefers_raw_value():
    # bind_row overlays {binding}.{col} aliases after dict(raw), so the
    # unqualified raw value shadows a literal dotted raw key.
    raw = {"v": 1, "t.v": 2}
    assert assert_equivalent(Column("v", table="t"), raw) == \
        ("value", int, 1)
    # Falls back to the literal dotted key when unqualified is absent.
    assert assert_equivalent(Column("w", table="t"), {"t.w": 3}) == \
        ("value", int, 3)
    assert assert_equivalent(Column("x", table="t"), raw) == \
        ("error", "unknown column 't.x'")


def test_foreign_qualified_column_sees_only_dotted_keys():
    raw = {"v": 1, "u.v": 5}
    assert assert_equivalent(Column("v", table="u"), raw) == \
        ("value", int, 5)
    assert assert_equivalent(Column("v", table="u"), {"v": 1}) == \
        ("error", "unknown column 'u.v'")


# -- function calls ----------------------------------------------------------


def test_scalar_functions():
    raw = {"s": "abc", "v": -4, "n": None}
    assert_equivalent(FuncCall("UPPER", (Column("s"),)), raw)
    assert_equivalent(FuncCall("ABS", (Column("v"),)), raw)
    assert_equivalent(
        FuncCall("COALESCE", (Column("n"), Literal(9))), raw
    )
    assert_equivalent(FuncCall("LENGTH", (Column("s"),)), raw)


def test_unknown_function_and_aggregate_errors():
    assert assert_equivalent(FuncCall("FROBNICATE", ()), {}) == \
        ("error", "unknown function FROBNICATE")
    assert assert_equivalent(FuncCall("SUM", (Column("v"),)), {"v": 1}) \
        == ("error", "aggregate SUM used outside aggregation")
    assert_equivalent(FuncCall("COUNT", (Star(),)), {})


# -- unary and binary operators ---------------------------------------------


def test_unary_operators_and_null_propagation():
    for value in (True, False, 0, 1, None, 3.5):
        raw = {"v": value}
        assert_equivalent(Unary("NOT", Column("v")), raw)
        if not isinstance(value, bool):
            assert_equivalent(Unary("-", Column("v")), raw)
            assert_equivalent(Unary("+", Column("v")), raw)


TRILEAN = (Literal(True), Literal(False), Literal(None))


def test_and_or_three_valued_logic_full_table():
    for left in TRILEAN:
        for right in TRILEAN:
            assert_equivalent(Binary("AND", left, right), {})
            assert_equivalent(Binary("OR", left, right), {})


def test_and_or_short_circuit_skips_right_errors():
    # FALSE AND <error> short-circuits identically on both paths.
    boom = Column("nope")
    assert assert_equivalent(
        Binary("AND", Literal(False), boom), {}
    ) == ("value", bool, False)
    assert assert_equivalent(
        Binary("OR", Literal(True), boom), {}
    ) == ("value", bool, True)
    assert assert_equivalent(
        Binary("AND", Literal(True), boom), {}
    ) == ("error", "unknown column 'nope'")


def test_comparisons_and_mixed_type_error():
    raw = {"a": 3, "b": 7, "s": "x"}
    for op in ("=", "<>", "<", "<=", ">", ">="):
        assert_equivalent(Binary(op, Column("a"), Column("b")), raw)
        assert_equivalent(Binary(op, Column("a"), Literal(None)), raw)
    mixed = assert_equivalent(Binary("<", Column("a"), Column("s")), raw)
    assert mixed == ("error", "cannot compare int with str")
    # = and <> never raise on mixed types (Python equality is total).
    assert_equivalent(Binary("=", Column("a"), Column("s")), raw)


def test_arithmetic_division_and_modulo():
    raw = {"a": 7, "b": 2, "z": 0, "n": None}
    for op in ("+", "-", "*", "/", "%"):
        assert_equivalent(Binary(op, Column("a"), Column("b")), raw)
        assert_equivalent(Binary(op, Column("a"), Column("n")), raw)
    assert assert_equivalent(
        Binary("/", Column("a"), Column("z")), raw
    ) == ("error", "division by zero")
    assert assert_equivalent(
        Binary("%", Column("a"), Column("z")), raw
    ) == ("error", "modulo by zero")


def test_unknown_operator_evaluates_operands_first():
    # The interpreted path evaluates both operands and NULL-propagates
    # before rejecting the operator; the compiled closure must too.
    assert assert_equivalent(
        Binary("^", Literal(1), Literal(2)), {}
    ) == ("error", "unknown operator ^")
    assert assert_equivalent(
        Binary("^", Literal(None), Literal(2)), {}
    ) == ("value", type(None), None)
    assert assert_equivalent(
        Binary("^", Column("nope"), Literal(2)), {}
    ) == ("error", "unknown column 'nope'")


# -- IN, BETWEEN, LIKE, IS NULL, CASE ---------------------------------------


def test_in_list_with_null_sentinel():
    items = (Literal(1), Literal(None), Literal(3))
    for value in (1, 3, 5, None):
        raw = {"v": value}
        assert_equivalent(InList(Column("v"), items), raw)
        assert_equivalent(InList(Column("v"), items, negated=True), raw)
    # Without a NULL item, a miss is plain FALSE (TRUE when negated).
    plain = (Literal(1), Literal(3))
    assert_equivalent(InList(Column("v"), plain), {"v": 5})
    assert_equivalent(InList(Column("v"), plain, negated=True), {"v": 5})


def test_between_and_negation():
    for value in (1, 5, 9, None):
        raw = {"v": value}
        expr = Between(Column("v"), Literal(2), Literal(8))
        assert_equivalent(expr, raw)
        assert_equivalent(
            Between(Column("v"), Literal(2), Literal(8), negated=True),
            raw,
        )
    # NULL bounds propagate; all three sub-expressions evaluate first.
    assert_equivalent(
        Between(Column("v"), Literal(None), Literal(8)), {"v": 5}
    )
    assert_equivalent(
        Between(Column("v"), Literal(2), Column("nope")), {"v": 5}
    )


def test_like_literal_and_dynamic_patterns():
    rows = [{"s": "alpha", "p": "a%"}, {"s": "beta", "p": "a%"},
            {"s": None, "p": "a%"}, {"s": "aXc", "p": None}]
    literal = Like(Column("s"), Literal("a%"))
    dynamic = Like(Column("s"), Column("p"))
    underscore = Like(Column("s"), Literal("a_c"))
    for raw in rows:
        assert_equivalent(literal, raw)
        assert_equivalent(Like(Column("s"), Literal("a%"),
                               negated=True), raw)
        assert_equivalent(dynamic, raw)
        assert_equivalent(underscore, raw)
    # Non-string operands stringify on both paths.
    assert_equivalent(Like(Column("s"), Literal("1%")), {"s": 123})


def test_is_null_and_is_not_null():
    for value in (None, 0, "x"):
        raw = {"v": value}
        assert_equivalent(IsNull(Column("v")), raw)
        assert_equivalent(IsNull(Column("v"), negated=True), raw)


def test_case_when_branch_dispatch_and_default():
    expr = CaseWhen(
        branches=(
            (Binary("<", Column("v"), Literal(3)), Literal("low")),
            (Binary("<", Column("v"), Literal(7)), Literal("mid")),
        ),
        default=Literal("high"),
    )
    no_default = CaseWhen(
        branches=((Binary("<", Column("v"), Literal(3)), Literal("low")),)
    )
    for value in (1, 5, 9, None):
        raw = {"v": value}
        assert_equivalent(expr, raw)
        assert_equivalent(no_default, raw)


def test_star_and_unknown_node_errors():
    assert assert_equivalent(Star(), {}) == \
        ("error", "* is only valid in COUNT(*) or SELECT *")

    class Mystery(Expr):
        pass

    assert assert_equivalent(Mystery(), {}) == \
        ("error", "cannot evaluate Mystery")


# -- predicate and projection wrappers --------------------------------------


def test_compile_predicate_matches_eval_predicate():
    cases = [
        'SELECT * FROM "t" WHERE v < 5',
        'SELECT * FROM "t" WHERE v IS NULL OR g = 2',
        'SELECT * FROM "t" WHERE s LIKE \'a%\' AND v % 2 = 0',
        'SELECT * FROM "t" WHERE v IN (1, 2, NULL)',
        'SELECT * FROM "t" WHERE NOT (v > 3)',
    ]
    rows = [
        {"v": 1, "g": 2, "s": "abc"},
        {"v": None, "g": None, "s": None},
        {"v": 8, "g": 5, "s": "zzz"},
        {"v": 4, "g": 2, "s": "aX"},
    ]
    for sql in cases:
        where = parse(sql).where
        predicate = compile_predicate(where, BINDING)
        for raw in rows:
            assert predicate(raw, CTX) == eval_predicate(
                where, bind_row(raw, BINDING), CTX
            ), (sql, raw)


def test_compile_projection_identity_and_strip():
    raw = {"key": 1, "v": 2, "pad": 3}
    assert compile_projection(None)(raw) is raw
    projected = compile_projection(("key", "v"))(raw)
    assert projected == {"key": 1, "v": 2}
    # Missing projected columns are simply absent, never errors.
    assert compile_projection(("key", "nope"))(raw) == {"key": 1}


def test_predicate_null_is_not_true():
    where = parse('SELECT * FROM "t" WHERE v < 5').where
    predicate = compile_predicate(where, BINDING)
    assert predicate({"v": None}, CTX) is False


def test_error_raised_not_swallowed():
    predicate = compile_predicate(
        parse('SELECT * FROM "t" WHERE v < 5').where, BINDING
    )
    with pytest.raises(SqlExecutionError, match="cannot compare"):
        predicate({"v": "str"}, CTX)
