"""Tests for EXPLAIN plan rendering."""

from repro.sql.explain import explain
from repro.sql.planner import DictCatalog, ListTable


def catalog():
    return DictCatalog({
        "a": ListTable("a", ({"k": 1, "x": 1},)),
        "b": ListTable("b", ({"k": 1, "y": 2},)),
    })


def test_simple_scan_plan():
    text = explain("SELECT x FROM a", catalog())
    assert "select: x" in text
    assert "scan: a" in text


def test_filter_rendered():
    text = explain("SELECT x FROM a WHERE x > 3 AND k = 1", catalog())
    assert "filter:" in text
    assert ">" in text


def test_hash_join_using_identified():
    text = explain("SELECT x, y FROM a JOIN b USING(k)", catalog())
    assert "hash join USING(k)" in text
    assert "with b" in text


def test_hash_join_on_identified():
    text = explain("SELECT x FROM a JOIN b ON a.k = b.k", catalog())
    assert "hash join ON a.k = b.k" in text


def test_nested_loop_identified():
    text = explain("SELECT x FROM a JOIN b ON a.k < b.k", catalog())
    assert "nested-loop join" in text


def test_aggregate_and_group_by():
    text = explain(
        "SELECT k, COUNT(*) FROM a GROUP BY k HAVING COUNT(*) > 1",
        catalog(),
    )
    assert "aggregate: group by k" in text
    assert "having:" in text


def test_order_and_limit():
    text = explain("SELECT x FROM a ORDER BY x DESC LIMIT 5", catalog())
    assert "sort: x DESC" in text
    assert "limit 5" in text


def test_table_alias_shown():
    text = explain("SELECT t.x FROM a t", catalog())
    assert "scan: a AS t" in text


def test_union_plan():
    text = explain(
        "SELECT x FROM a UNION ALL SELECT y FROM b", catalog()
    )
    assert text.startswith("UNION ALL [2 branches]")
    assert "branch 1:" in text and "branch 2:" in text


def test_distinct_shown():
    text = explain("SELECT DISTINCT x FROM a", catalog())
    assert "select distinct" in text
