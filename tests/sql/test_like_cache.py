"""Regression tests for the compiled-LIKE pattern cache.

The cache used to be an unbounded dict flushed wholesale at a fixed
cap — one unlucky data-derived pattern evicted every hot literal
pattern at once.  It is now a proper LRU keyed by pattern: under churn
it stays exactly at capacity and keeps recently-used patterns
resident.  The bound comes from ``CostModel.like_cache_max_patterns``
and is applied per :class:`~repro.env.Environment`.
"""

import pytest

from repro.config import ClusterConfig, CostModel
from repro.env import Environment
from repro.errors import ConfigurationError
from repro.sql.executor import (
    _LIKE_CACHE,
    like_cache_stats,
    match_like,
    set_like_cache_capacity,
)
from repro.sql.lru import LruCache


@pytest.fixture
def small_cache():
    original = _LIKE_CACHE.capacity
    _LIKE_CACHE.clear()
    set_like_cache_capacity(4)
    yield _LIKE_CACHE
    set_like_cache_capacity(original)
    _LIKE_CACHE.clear()


# -- the LruCache itself -----------------------------------------------------


def test_lru_cache_evicts_least_recently_used():
    cache: LruCache[str, int] = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a": "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert len(cache) == 2


def test_lru_cache_counts_hits_and_misses():
    cache: LruCache[str, int] = LruCache(2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("zz") is None
    assert (cache.hits, cache.misses) == (1, 1)
    cache.clear()  # clearing entries keeps the counters
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 0


def test_lru_cache_set_capacity_shrinks_and_validates():
    cache: LruCache[int, int] = LruCache(8)
    for index in range(8):
        cache.put(index, index)
    cache.set_capacity(3)
    assert len(cache) == 3
    assert all(key in cache for key in (5, 6, 7))
    with pytest.raises(ValueError):
        cache.set_capacity(0)
    with pytest.raises(ValueError):
        LruCache(0)


# -- the LIKE cache under churn ----------------------------------------------


def test_like_cache_stays_at_cap_under_churn(small_cache):
    # The old behaviour flushed the whole cache at the cap; the LRU
    # must instead sit exactly at capacity while patterns churn.
    for round_no in range(5):
        for index in range(20):
            assert match_like("abc", f"a%{round_no}-{index}") is False
            assert len(small_cache) <= 4
    assert len(small_cache) == 4


def test_like_cache_keeps_hot_pattern_resident(small_cache):
    hot = "hot-%"
    match_like("hot-1", hot)
    for index in range(50):
        match_like("x", f"cold-{index}%")
        match_like("hot-2", hot)  # refresh recency every round
    assert hot in small_cache


def test_like_cache_stats_accumulate(small_cache):
    hits_before, misses_before = like_cache_stats()
    match_like("abc", "zzz-%")   # miss (fresh pattern)
    match_like("abd", "zzz-%")   # hit
    hits_after, misses_after = like_cache_stats()
    assert hits_after == hits_before + 1
    assert misses_after == misses_before + 1


# -- configuration plumbing --------------------------------------------------


def test_cost_model_validates_like_cache_bound():
    with pytest.raises(ConfigurationError,
                       match="like_cache_max_patterns"):
        CostModel(like_cache_max_patterns=0).validate()
    CostModel(like_cache_max_patterns=1).validate()


def test_environment_applies_configured_capacity():
    original = _LIKE_CACHE.capacity
    try:
        Environment(ClusterConfig(nodes=2),
                    costs=CostModel(like_cache_max_patterns=7))
        assert _LIKE_CACHE.capacity == 7
    finally:
        set_like_cache_capacity(original)


def test_report_carries_like_cache_counters():
    from repro.observability import collect_report, format_report

    env = Environment(ClusterConfig(nodes=2))
    match_like("abc", "ab%")
    report = collect_report(env)
    assert report.like_cache_hits >= 0
    assert report.like_cache_misses >= 1
    # The footer appears whenever the columnar counters are non-zero;
    # the LIKE stats ride in the same line.
    report.batches_evaluated = 1
    assert "LIKE cache:" in format_report(report)
