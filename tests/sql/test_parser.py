"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError
from repro.sql import parse
from repro.sql.ast import (
    Between,
    Binary,
    Column,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    LocalTimestamp,
    Star,
    Unary,
)


def test_select_star():
    select = parse("SELECT * FROM t")
    assert select.select_star
    assert select.table.name == "t"


def test_select_columns_with_aliases():
    select = parse("SELECT a, b AS x, c y FROM t")
    names = [(item.expr.name, item.alias) for item in select.items]
    assert names == [("a", None), ("b", "x"), ("c", "y")]


def test_table_alias():
    select = parse("SELECT a FROM orders AS o")
    assert select.table.name == "orders"
    assert select.table.binding == "o"


def test_quoted_table_name():
    select = parse('SELECT a FROM "snapshot_orderinfo"')
    assert select.table.name == "snapshot_orderinfo"


def test_where_comparison():
    select = parse("SELECT a FROM t WHERE a > 3")
    assert isinstance(select.where, Binary)
    assert select.where.op == ">"


def test_and_or_precedence():
    select = parse("SELECT a FROM t WHERE a=1 OR b=2 AND c=3")
    # AND binds tighter: OR(a=1, AND(b=2, c=3))
    assert select.where.op == "OR"
    assert select.where.right.op == "AND"


def test_not_precedence():
    select = parse("SELECT a FROM t WHERE NOT a=1 AND b=2")
    assert select.where.op == "AND"
    assert isinstance(select.where.left, Unary)


def test_arithmetic_precedence():
    select = parse("SELECT a + b * c FROM t")
    expr = select.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parentheses_override():
    select = parse("SELECT (a + b) * c FROM t")
    assert select.items[0].expr.op == "*"


def test_in_list():
    select = parse("SELECT a FROM t WHERE s IN ('x', 'y')")
    assert isinstance(select.where, InList)
    assert len(select.where.items) == 2


def test_not_in():
    select = parse("SELECT a FROM t WHERE s NOT IN (1)")
    assert select.where.negated


def test_between():
    select = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
    assert isinstance(select.where, Between)


def test_like_and_not_like():
    select = parse("SELECT a FROM t WHERE s LIKE 'z%' AND s NOT LIKE '_q'")
    left, right = select.where.left, select.where.right
    assert isinstance(left, Like) and not left.negated
    assert isinstance(right, Like) and right.negated


def test_is_null_and_is_not_null():
    select = parse("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
    assert isinstance(select.where.left, IsNull)
    assert select.where.right.negated


def test_join_using():
    select = parse(
        'SELECT COUNT(*) FROM "a" JOIN "b" USING(partitionKey)'
    )
    assert len(select.joins) == 1
    assert select.joins[0].using == ("partitionKey",)


def test_multiple_joins():
    select = parse("SELECT x FROM a JOIN b USING(k) JOIN c ON a.k = c.k")
    assert len(select.joins) == 2
    assert select.joins[1].on is not None


def test_left_join():
    select = parse("SELECT x FROM a LEFT JOIN b ON a.k = b.k")
    assert select.joins[0].kind == "LEFT"


def test_join_requires_condition():
    with pytest.raises(SqlParseError):
        parse("SELECT x FROM a JOIN b")


def test_group_by_and_having():
    select = parse(
        "SELECT COUNT(*), z FROM t GROUP BY z HAVING COUNT(*) > 2"
    )
    assert len(select.group_by) == 1
    assert isinstance(select.having, Binary)


def test_order_by_directions():
    select = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
    directions = [item.descending for item in select.order_by]
    assert directions == [True, False, False]


def test_limit_offset():
    select = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
    assert select.limit == 10
    assert select.offset == 5


def test_limit_requires_integer():
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t LIMIT 2.5")


def test_distinct():
    assert parse("SELECT DISTINCT a FROM t").distinct


def test_count_star_and_distinct_arg():
    select = parse("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
    star_call, distinct_call = (item.expr for item in select.items)
    assert isinstance(star_call.args[0], Star)
    assert distinct_call.distinct


def test_localtimestamp():
    select = parse("SELECT a FROM t WHERE d < LOCALTIMESTAMP")
    assert isinstance(select.where.right, LocalTimestamp)


def test_case_when():
    select = parse(
        "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t"
    )
    expr = select.items[0].expr
    assert len(expr.branches) == 1
    assert expr.default == Literal("other")


def test_qualified_column():
    select = parse("SELECT o.total FROM orders o")
    assert select.items[0].expr == Column("total", table="o")


def test_negative_literal():
    select = parse("SELECT a FROM t WHERE a > -5")
    assert isinstance(select.where.right, Unary)


def test_trailing_garbage_rejected():
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t x y WHERE")


def test_missing_from_rejected():
    with pytest.raises(SqlParseError):
        parse("SELECT a")


def test_paper_query_1_parses():
    from repro.workloads.qcommerce import QUERY_1

    select = parse(QUERY_1)
    assert select.table.name == "snapshot_orderinfo"
    assert select.joins[0].table.name == "snapshot_orderstate"
    assert select.group_by
    assert select.table_names() == [
        "snapshot_orderinfo", "snapshot_orderstate",
    ]


def test_all_paper_queries_parse():
    from repro.workloads.qcommerce import ALL_QUERIES

    for sql in ALL_QUERIES:
        assert parse(sql).joins
