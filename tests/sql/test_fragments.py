"""Tests for distributed plan splitting (repro.sql.fragments)."""

from repro.sql import EvalContext, parse
from repro.sql.executor import _LIKE_CACHE, _like_regex
from repro.sql.fragments import (
    FragmentAccumulator,
    KeyRange,
    KeySet,
    PartialGroups,
    extract_key_filter,
    merge_partial_groups,
    split_select,
)
from repro.sql.planner import conjoin, split_conjuncts


def key_filter_of(sql: str):
    select = parse(sql)
    return extract_key_filter(
        split_conjuncts(select.where), "key", select.table.binding
    )


# -- key filter extraction ---------------------------------------------------


def test_equality_key_filter():
    assert key_filter_of('SELECT * FROM "t" WHERE key = 5') == KeySet((5,))
    assert key_filter_of('SELECT * FROM "t" WHERE 5 = key') == KeySet((5,))


def test_in_list_key_filter_dedups_preserving_order():
    kf = key_filter_of('SELECT * FROM "t" WHERE key IN (3, 1, 3, 2)')
    assert kf == KeySet((3, 1, 2))


def test_or_of_equalities_key_filter():
    kf = key_filter_of('SELECT * FROM "t" WHERE key = 1 OR key = 7')
    assert kf == KeySet((1, 7))
    # Any non-equality arm disables the OR extraction.
    assert key_filter_of(
        'SELECT * FROM "t" WHERE key = 1 OR value > 2'
    ) is None


def test_range_key_filters():
    kf = key_filter_of('SELECT * FROM "t" WHERE key > 10 AND key <= 20')
    assert kf == KeyRange(low=10, high=20, low_inclusive=False)
    # Literal-on-the-left comparisons flip.
    assert key_filter_of('SELECT * FROM "t" WHERE 10 < key') == \
        KeyRange(low=10, low_inclusive=False)
    assert key_filter_of(
        'SELECT * FROM "t" WHERE key BETWEEN 2 AND 9'
    ) == KeyRange(low=2, high=9)


def test_intersection_tightens_to_key_set():
    kf = key_filter_of(
        'SELECT * FROM "t" WHERE key IN (1, 2, 3) AND key >= 2'
    )
    assert kf == KeySet((2, 3))
    # Contradictory pins intersect to the empty set (provably no rows).
    assert key_filter_of(
        'SELECT * FROM "t" WHERE key = 1 AND key = 2'
    ) == KeySet(())


def test_negated_and_non_literal_predicates_do_not_pin():
    assert key_filter_of(
        'SELECT * FROM "t" WHERE key NOT IN (1, 2)'
    ) is None
    assert key_filter_of('SELECT * FROM "t" WHERE key = value') is None


def test_key_range_overlap_and_incomparables():
    kf = KeyRange(low=10, high=20)
    assert kf.overlaps(0, 10)
    assert kf.overlaps(15, 100)
    assert not kf.overlaps(21, 30)
    assert not kf.overlaps(0, 9)
    # Incomparable bounds must never justify pruning.
    assert kf.overlaps("a", "z")
    assert KeyRange(low="m").contains(5)


# -- split_select ------------------------------------------------------------


def test_single_table_pushes_all_plain_conjuncts():
    plan = split_select(parse(
        'SELECT key, value FROM "t" WHERE value > 3 AND key < 10'
    ))
    fragment = plan.fragment("t")
    assert len(fragment.pushed) == 2
    assert plan.residual is None
    assert plan.final_select.where is None
    assert fragment.projection is not None
    assert "value" in fragment.projection
    assert "key" in fragment.projection
    assert "pad" not in fragment.projection


def test_localtimestamp_conjunct_stays_residual():
    plan = split_select(parse(
        'SELECT key FROM "t" WHERE value > 3 AND ts < LOCALTIMESTAMP'
    ))
    assert len(plan.fragment("t").pushed) == 1
    assert plan.residual is not None
    assert plan.final_select.where is plan.residual


def test_join_pushes_only_qualified_single_table_conjuncts():
    plan = split_select(parse(
        'SELECT a.key FROM "t" AS a JOIN "u" AS b ON a.key = b.key '
        "WHERE a.value > 1 AND b.value > 2 AND value > 3"
    ))
    assert len(plan.fragment("t").pushed) == 1
    assert len(plan.fragment("u").pushed) == 1
    # The unqualified conjunct is ambiguous against the merged row.
    assert plan.residual is not None
    assert plan.partial is None  # no partial aggregation across joins


def test_left_join_right_side_is_passthrough_filterable_base():
    plan = split_select(parse(
        'SELECT a.key FROM "t" AS a LEFT JOIN "u" AS b ON a.key = b.key '
        "WHERE a.value > 1 AND b.value > 2"
    ))
    assert len(plan.fragment("t").pushed) == 1
    # Filtering the LEFT join's right side would change null extension.
    assert plan.fragment("u").pushed == ()
    assert plan.residual is not None


def test_self_join_tables_are_passthrough():
    plan = split_select(parse(
        'SELECT a.key FROM "t" AS a JOIN "t" AS b ON a.key = b.key '
        "WHERE a.value > 1"
    ))
    assert plan.fragment("t").is_passthrough
    assert plan.residual is not None


def test_partial_aggregate_for_group_by():
    plan = split_select(parse(
        'SELECT weight, SUM(value) AS s, COUNT(*) AS c FROM "t" '
        "WHERE value > 0 GROUP BY weight HAVING COUNT(*) > 1 "
        "ORDER BY weight LIMIT 3"
    ))
    partial = plan.partial
    assert partial is not None
    assert len(partial.calls) == 2
    assert partial.rep_columns == ("weight",)
    assert plan.fragment("t").partial is partial
    assert plan.fragment("t").projection is None


def test_no_partial_aggregate_with_distinct_or_residual():
    assert split_select(parse(
        'SELECT COUNT(DISTINCT value) FROM "t"'
    )).partial is None
    assert split_select(parse(
        'SELECT COUNT(*) FROM "t" WHERE ts < LOCALTIMESTAMP'
    )).partial is None
    assert split_select(parse(
        "SELECT LOCALTIMESTAMP, COUNT(*) FROM \"t\" "
        "GROUP BY LOCALTIMESTAMP"
    )).partial is None


# -- scan-side execution -----------------------------------------------------


ROWS = [
    {"key": k, "partitionKey": k, "value": k % 4, "weight": k % 2,
     "pad": k * 10}
    for k in range(12)
]


def test_fragment_accumulator_filters_and_projects():
    plan = split_select(parse(
        'SELECT key, value FROM "t" WHERE value = 1'
    ))
    acc = FragmentAccumulator(plan.fragment("t"), EvalContext(now_ms=0))
    survivors = [raw for raw in ROWS if acc.add(raw)]
    assert [row["key"] for row in survivors] == [1, 5, 9]
    payload = acc.payload()
    assert all("pad" not in row for row in payload)
    assert all(set(row) == {"key", "value"} for row in payload)


def test_partial_groups_merge_matches_central_execution():
    from repro.sql.executor import execute_select
    from repro.sql.planner import DictCatalog, ListTable

    sql = ('SELECT weight, SUM(value) AS s, COUNT(*) AS c FROM "t" '
           "GROUP BY weight ORDER BY weight")
    plan = split_select(parse(sql))
    context = EvalContext(now_ms=0)
    # Two "nodes", each scanning half the rows.
    payloads = []
    for shard in (ROWS[:6], ROWS[6:]):
        acc = FragmentAccumulator(plan.fragment("t"), context)
        for raw in shard:
            acc.add(raw)
        payloads.append(acc.payload())
    assert all(isinstance(p, PartialGroups) for p in payloads)
    groups = merge_partial_groups(payloads, plan.partial, "t")

    from repro.sql.executor import execute_grouped_select
    distributed = execute_grouped_select(plan.final_select, groups,
                                         context)
    catalog = DictCatalog()
    catalog.add(ListTable("t", tuple(ROWS)))
    central = execute_select(parse(sql), catalog, context)
    assert distributed.columns == central.columns
    assert distributed.rows == central.rows


def test_merge_is_idempotent_for_repeated_merges_of_fresh_state():
    # The merge builds fresh accumulators and never mutates shipped
    # ones, so merging the same payload list twice gives equal results
    # (the retry path re-ships a whole table attempt).
    sql = 'SELECT SUM(value) AS s, COUNT(*) AS c FROM "t"'
    plan = split_select(parse(sql))
    context = EvalContext(now_ms=0)
    acc = FragmentAccumulator(plan.fragment("t"), context)
    for raw in ROWS:
        acc.add(raw)
    payloads = [acc.payload()]
    first = merge_partial_groups(payloads, plan.partial, "t")
    second = merge_partial_groups(payloads, plan.partial, "t")
    from repro.sql.executor import execute_grouped_select
    one = execute_grouped_select(plan.final_select, first, context)
    two = execute_grouped_select(plan.final_select, second, context)
    assert one.rows == two.rows


# -- LIKE regex cache --------------------------------------------------------


def test_like_regex_is_cached_and_correct():
    _LIKE_CACHE.clear()
    pattern = _like_regex("ab%_d")
    assert _like_regex("ab%_d") is pattern  # cached instance
    assert pattern.fullmatch("abXYZcd")
    assert pattern.fullmatch("abcd")  # % matches empty, _ exactly one
    assert not pattern.fullmatch("abd")
    assert len(_LIKE_CACHE) == 1
