"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import Token, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_keywords_uppercased():
    assert kinds("select from") == [
        ("KEYWORD", "SELECT"), ("KEYWORD", "FROM"),
    ]


def test_identifiers_preserve_case():
    assert kinds("deliveryZone") == [("IDENT", "deliveryZone")]


def test_quoted_identifier():
    assert kinds('"snapshot_orderinfo"') == [
        ("IDENT", "snapshot_orderinfo"),
    ]


def test_quoted_identifier_with_doubled_quote():
    assert kinds('"we""ird"') == [("IDENT", 'we"ird')]


def test_string_literal():
    assert kinds("'VENDOR_ACCEPTED'") == [("STRING", "VENDOR_ACCEPTED")]


def test_string_with_escaped_quote():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_unterminated_string_raises():
    with pytest.raises(SqlLexError):
        tokenize("'oops")


def test_integer_and_float_literals():
    assert kinds("42 3.14 .5 1e3 2.5E-2") == [
        ("NUMBER", 42), ("NUMBER", 3.14), ("NUMBER", 0.5),
        ("NUMBER", 1000.0), ("NUMBER", 0.025),
    ]


def test_operators_longest_match():
    assert kinds("a <= b <> c != d") == [
        ("IDENT", "a"), ("OP", "<="), ("IDENT", "b"), ("OP", "<>"),
        ("IDENT", "c"), ("OP", "!="), ("IDENT", "d"),
    ]


def test_punctuation_and_arithmetic():
    assert [k for k, _ in kinds("(a + b) * c.d, e % f / g")] == [
        "OP", "IDENT", "OP", "IDENT", "OP", "OP", "IDENT", "OP",
        "IDENT", "OP", "IDENT", "OP", "IDENT", "OP", "IDENT",
    ]


def test_line_comments_skipped():
    assert kinds("select -- comment here\n 1") == [
        ("KEYWORD", "SELECT"), ("NUMBER", 1),
    ]


def test_unexpected_character_raises():
    with pytest.raises(SqlLexError):
        tokenize("select @ from x")


def test_eof_token_present():
    tokens = tokenize("select")
    assert tokens[-1] == Token("EOF", None, len("select"))


def test_localtimestamp_is_keyword():
    assert kinds("LOCALTIMESTAMP") == [("KEYWORD", "LOCALTIMESTAMP")]


def test_keywords_case_insensitive():
    assert kinds("SeLeCt") == [("KEYWORD", "SELECT")]
