"""APPROX SQL surface: parsing, planning, shape analysis, pricing.

Covers the lexer/parser flag, the planner's aggregate-only rule, the
sketch-answerable shape analysis, the cost chooser's sketch candidate,
and the per-candidate rejection reasons threaded into explain output
(the regression surface for access-path debugging).
"""

import pytest

from repro.approx.planning import analyze_approx_select
from repro.config import CostModel
from repro.errors import SqlParseError, SqlPlanError
from repro.sql.access import SketchCandidate, choose_access_path
from repro.sql.ast import Select
from repro.sql.executor import execute_select
from repro.sql.fragments import ScanFragment, split_select
from repro.sql.parser import parse
from repro.sql.planner import DictCatalog, ListTable, plan_select


def parse_select(sql: str) -> Select:
    statement = parse(sql)
    assert isinstance(statement, Select)
    return statement


class TestParsing:
    def test_approx_flag_set(self):
        select = parse_select("SELECT APPROX COUNT(*) FROM t WHERE v = 1")
        assert select.approx

    def test_plain_select_not_approx(self):
        assert not parse_select("SELECT COUNT(*) FROM t").approx

    def test_approx_before_distinct(self):
        select = parse_select("SELECT APPROX COUNT(DISTINCT v) FROM t")
        assert select.approx and not select.distinct

    def test_approx_must_follow_select(self):
        with pytest.raises(SqlParseError):
            parse("SELECT COUNT(*) APPROX FROM t")


class TestPlanning:
    def test_approx_requires_aggregate(self):
        catalog = DictCatalog({"t": ListTable("t", ())})
        with pytest.raises(SqlPlanError):
            plan_select(parse_select("SELECT APPROX v FROM t"), catalog)
        plan = plan_select(
            parse_select("SELECT APPROX COUNT(*) FROM t WHERE v = 1"),
            catalog,
        )
        assert plan.is_aggregate

    def test_approx_survives_fragment_split(self):
        select = parse_select(
            "SELECT APPROX COUNT(*) AS n FROM t WHERE v = 1"
        )
        plan = split_select(select)
        assert plan.final_select.approx


class TestShapeAnalysis:
    def test_count_star_with_equality(self):
        aggregate = analyze_approx_select(parse_select(
            "SELECT APPROX COUNT(*) FROM t WHERE v = 7"
        ))
        assert aggregate.mode == "count_eq"
        assert aggregate.column == "v" and aggregate.value == 7
        assert aggregate.kind == "countmin"

    def test_count_distinct(self):
        aggregate = analyze_approx_select(parse_select(
            "SELECT APPROX COUNT(DISTINCT zone) FROM t"
        ))
        assert aggregate.mode == "distinct" and aggregate.column == "zone"

    def test_sum_and_avg(self):
        assert analyze_approx_select(parse_select(
            "SELECT APPROX SUM(x) FROM t"
        )).mode == "sum"
        assert analyze_approx_select(parse_select(
            "SELECT APPROX AVG(x) FROM t"
        )).mode == "avg"

    def test_ssid_pin_recognised(self):
        aggregate = analyze_approx_select(parse_select(
            "SELECT APPROX COUNT(*) FROM t WHERE v = 7 AND ssid = 3"
        ))
        assert aggregate.ssid_eq == 3 and aggregate.value == 7

    @pytest.mark.parametrize("sql", [
        "SELECT COUNT(*) FROM t WHERE v = 1",            # not APPROX
        "SELECT APPROX COUNT(*) FROM t",                 # no equality
        "SELECT APPROX COUNT(*) FROM t WHERE v > 1",     # range
        "SELECT APPROX COUNT(*) FROM t WHERE v = 1 OR v = 2",
        "SELECT APPROX COUNT(*) FROM t WHERE v = 1 AND g = 2",
        "SELECT APPROX COUNT(*), SUM(x) FROM t WHERE v = 1",
        "SELECT APPROX SUM(x) FROM t WHERE v = 1",       # filtered SUM
        "SELECT APPROX SUM(x + 1) FROM t",               # expression
        "SELECT APPROX COUNT(DISTINCT v) FROM t WHERE v = 1",
        "SELECT APPROX COUNT(*) FROM t WHERE v = NULL",
        "SELECT APPROX SUM(x) FROM t GROUP BY g",
        "SELECT APPROX AVG(x) FROM t ORDER BY 1 LIMIT 1",
        "SELECT APPROX COUNT(*) FROM t JOIN u USING(k) WHERE v = 1",
    ])
    def test_unsupported_shapes_fall_back(self, sql):
        statement = parse(sql)
        if isinstance(statement, Select):
            assert analyze_approx_select(statement) is None


class _SketchlessView:
    """Minimal table view for the chooser: no indexes."""

    def index_columns(self):
        return {}

    def index_probe_count(self, partition, column, probe):
        raise AssertionError("no indexes to probe")


class TestAccessPathPricing:
    COSTS = CostModel()

    def fragment(self):
        select = parse_select(
            "SELECT APPROX COUNT(*) AS n FROM t WHERE v = 1"
        )
        return ScanFragment(table="t", binding="t",
                            pushed=tuple([select.where]))

    def test_sketch_wins_on_large_scans(self):
        choice = choose_access_path(
            self.fragment(), _SketchlessView(), (), list(range(16)),
            scan_entries=50_000, costs=self.COSTS,
            sketch=SketchCandidate("countmin('v')", probes=16),
        )
        assert choice.kind == "sketch"
        assert choice.probes == 16 and choice.candidates == 0
        assert choice.cost_ms < choice.scan_cost_ms
        assert "sketch countmin('v')" in choice.describe()

    def test_scan_wins_on_tiny_tables(self):
        choice = choose_access_path(
            self.fragment(), _SketchlessView(), (), list(range(16)),
            scan_entries=10, costs=self.COSTS,
            sketch=SketchCandidate("countmin('v')", probes=16),
        )
        assert choice.kind == "scan"

    def test_rejection_reasons_for_losing_candidates(self):
        # Sketch loses: the reason names it with both estimates.
        choice = choose_access_path(
            self.fragment(), _SketchlessView(), (), list(range(16)),
            scan_entries=10, costs=self.COSTS,
            sketch=SketchCandidate("countmin('v')", probes=16),
        )
        assert any(
            reason.startswith("sketch countmin('v'): est.")
            for reason in choice.rejected
        )
        # Sketch wins: the full scan's displacement is recorded.
        choice = choose_access_path(
            self.fragment(), _SketchlessView(), (), list(range(16)),
            scan_entries=50_000, costs=self.COSTS,
            sketch=SketchCandidate("countmin('v')", probes=16),
        )
        assert any(
            reason.startswith("full scan: est.")
            for reason in choice.rejected
        )

    def test_disabled_indexes_are_not_priced(self):
        # With the service-level index ablation off, index candidates
        # must not compete against the sketch (a disabled index is not
        # a legal exact path).
        class _ExplodingView:
            def index_columns(self):
                raise AssertionError("indexes consulted while disabled")

            index_probe_count = index_columns

        choice = choose_access_path(
            self.fragment(), _ExplodingView(), (), list(range(16)),
            scan_entries=50_000, costs=self.COSTS,
            sketch=SketchCandidate("countmin('v')", probes=16),
            indexes=False,
        )
        assert choice.kind == "sketch"

    def test_no_sketch_candidate_means_no_sketch_path(self):
        choice = choose_access_path(
            self.fragment(), _SketchlessView(), (), list(range(16)),
            scan_entries=50_000, costs=self.COSTS,
        )
        assert choice.kind == "scan"
        assert choice.rejected == ()


class TestExactFallbackShape:
    def test_exact_approx_appends_zero_bound_columns(self):
        catalog = DictCatalog({"t": ListTable("t", (
            {"v": 1}, {"v": 1}, {"v": 2},
        ))})
        result = execute_select(
            parse_select("SELECT APPROX COUNT(*) AS n FROM t "
                         "WHERE v = 1"),
            catalog,
        )
        assert result.columns == ["n", "error_bound", "confidence"]
        assert result.rows == [
            {"n": 2, "error_bound": 0.0, "confidence": 1.0}
        ]

    def test_exact_approx_group_by_rows_all_tagged(self):
        catalog = DictCatalog({"t": ListTable("t", (
            {"v": 1, "g": "a"}, {"v": 2, "g": "a"}, {"v": 3, "g": "b"},
        ))})
        result = execute_select(
            parse_select("SELECT APPROX g, SUM(v) AS s FROM t "
                         "GROUP BY g ORDER BY g"),
            catalog,
        )
        assert result.columns == ["g", "s", "error_bound", "confidence"]
        assert all(
            row["error_bound"] == 0.0 and row["confidence"] == 1.0
            for row in result.rows
        )
