#!/usr/bin/env python3
"""A live dashboard over windowed state, unions, and utilisation.

Runs the windowed NEXMark bid-price job and shows three S-QUERY
capabilities working together:

* querying *open* windows (state that classic streaming only reveals
  after the window closes);
* ``UNION ALL`` over the live and snapshot views of the same operator
  in one statement;
* the cluster utilisation report behind the measurements.

Run:  python examples/windowed_dashboard.py
"""

from repro import (
    ClusterConfig,
    Environment,
    QueryService,
    SQueryBackend,
    SQueryConfig,
    collect_report,
    format_report,
)
from repro.sql.explain import explain
from repro.sql.planner import DictCatalog, ListTable
from repro.workloads.nexmark import build_windowed_price_job


def main() -> None:
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig())
    job = build_windowed_price_job(
        env, backend, rate_per_s=8_000, auctions=120, window_ms=500,
        parallelism=3,
    )
    job.start()
    env.run_for(3_200)

    service = QueryService(env)

    # Peek inside the OPEN tumbling windows — no need to wait for them
    # to close.
    open_windows = service.execute(
        'SELECT COUNT(*) AS windows, SUM(count) AS bids_in_flight, '
        'MIN(window_start) AS oldest FROM "bidwindow"'
    ).result.rows[0]
    print("open windows right now :", open_windows)

    busiest = service.execute(
        'SELECT partitionKey, count FROM "bidwindow" '
        "ORDER BY count DESC LIMIT 3"
    )
    print("busiest open windows   :", busiest.result.tuples())

    # One statement spanning both state modes (UNION ALL).
    both = service.execute(
        "SELECT 'live' AS view, COUNT(*) AS windows, SUM(count) AS bids "
        'FROM "bidwindow" '
        "UNION ALL "
        "SELECT 'snapshot', COUNT(*), SUM(count) "
        'FROM "snapshot_bidwindow"'
    )
    for row in both.result.rows:
        print(f"{row['view']:<9} view          : {row['windows']} windows,"
              f" {row['bids']} bids")

    # What does that union actually execute?  EXPLAIN shows the plan.
    demo_catalog = DictCatalog({
        "bidwindow": ListTable("bidwindow", ()),
        "snapshot_bidwindow": ListTable("snapshot_bidwindow", ()),
    })
    print("\nEXPLAIN of the union query:")
    print(explain(
        'SELECT COUNT(*) FROM "bidwindow" UNION ALL '
        'SELECT COUNT(*) FROM "snapshot_bidwindow"',
        demo_catalog,
    ))

    # And the cluster-side story behind it all.
    print()
    print(format_report(collect_report(env)))


if __name__ == "__main__":
    main()
