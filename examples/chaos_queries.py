#!/usr/bin/env python3
"""Chaos: querying a stream processor's state while its nodes die.

Runs the paper's running example (Fig. 2) on a four-node cluster,
subjects the cluster to scripted *and* seeded-random node kills and
restarts, and keeps firing live and snapshot SQL queries the whole
time.  The failure-aware query path (§IV interplay) either reschedules
the interrupted scans onto survivors or fails fast — no query ever
hangs — and the run ends by checking the harness invariants: no
in-flight queries, no leaked locks, and snapshot results bit-identical
before and after a kill.

Run:  python examples/chaos_queries.py
"""

from dataclasses import dataclass

from repro import (
    ChaosHarness,
    ClusterConfig,
    CostModel,
    Environment,
    Job,
    JobConfig,
    KeyedAggregateOperator,
    Pipeline,
    QueryAbortedError,
    QueryRetryPolicy,
    QueryService,
    SinkOperator,
    SQueryBackend,
    SQueryConfig,
    assert_invariants,
    collect_report,
    format_report,
    snapshot_fingerprint,
)
from repro.dataflow.sources import CallableSource


@dataclass
class Average:
    """The operator state of Fig. 2: a count and a running total."""

    count: int
    total: float


def accumulate(state: Average | None, value: float) -> Average:
    if state is None:
        return Average(1, value)
    return Average(state.count + 1, state.total + value)


def build_job(env: Environment) -> Job:
    # Retention is raised so the reference snapshot taken before the
    # chaos window is still queryable after it (default keeps only 2).
    backend = SQueryBackend(env.cluster, env.store,
                            SQueryConfig(retained_snapshots=64))
    pipeline = Pipeline()
    pipeline.add_source(
        "nums",
        CallableSource(lambda i, seq: ((i * 31 + seq) % 400, float(seq % 9)),
                       4_000.0),
    )
    pipeline.add_operator(
        "average",
        lambda: KeyedAggregateOperator(
            accumulate, lambda k, s: s.total / s.count
        ),
    )
    pipeline.add_operator("sink", SinkOperator)
    pipeline.connect("nums", "average")
    pipeline.connect("average", "sink")
    return Job(env, pipeline,
               JobConfig(checkpoint_interval_ms=500, parallelism=4),
               backend)


def main() -> None:
    # Slower per-entry scans stretch the scan phase to a few virtual ms,
    # so the scripted kill below reliably lands mid-scan.
    env = Environment(
        ClusterConfig(nodes=4, processing_workers_per_node=2),
        CostModel(scan_entry_ms=0.02, vectorized_scan_entry_ms=0.02),
    )
    job = build_job(env)
    job.start()
    env.run_for(1_200)  # a couple of committed snapshots

    service = QueryService(
        env, retry_policy=QueryRetryPolicy(max_retries=2,
                                           retry_backoff_ms=5.0,
                                           query_timeout_ms=2_000.0),
    )

    # Reference snapshot result on the healthy cluster.
    ssid = env.store.committed_ssid
    before = service.execute(
        f'SELECT key, count, total FROM "snapshot_average" '
        f"WHERE ssid = {ssid}"
    )
    fingerprint_before = snapshot_fingerprint(before.result)
    print(f"snapshot {ssid}: {len(before.result)} rows, "
          f"fingerprint {fingerprint_before[:16]}…")

    # Scripted chaos: kill node 3 in ~1 ms (queries below will be mid
    # scan), bring it back later; plus seeded-random kills/restarts.
    chaos = ChaosHarness(env, seed=29)
    chaos.schedule_kill(env.now + 2.0, node_id=3)
    chaos.schedule_restart(env.now + 400.0, node_id=3)
    chaos.plan_random(horizon_ms=env.now + 1_500.0, kills=2,
                      restart_after_ms=250.0)

    # Fire a stream of queries across the chaos window.
    executions = []

    def submit_wave(wave: int) -> None:
        executions.append(service.submit('SELECT * FROM "average"'))
        executions.append(service.submit(
            f'SELECT key, count FROM "snapshot_average" WHERE ssid = {ssid}'
        ))

    for wave in range(8):
        env.sim.schedule_at(env.now + wave * 200.0, submit_wave, wave)
    env.run_for(4_500)  # past the chaos horizon + query timeout

    completed = [e for e in executions if e.error is None]
    aborted = [e for e in executions if isinstance(e.error,
                                                   QueryAbortedError)]
    rescheduled = sum(1 for e in executions if e.retries)
    print(f"\n{len(executions)} queries across the chaos window: "
          f"{len(completed)} completed ({rescheduled} after rescheduling "
          f"lost scans), {len(aborted)} aborted cleanly")
    print(chaos.describe())

    # Snapshot determinism: the same committed snapshot, re-read after
    # kills and recoveries, is bit-identical.
    after = service.execute(
        f'SELECT key, count, total FROM "snapshot_average" '
        f"WHERE ssid = {ssid}"
    )
    same = snapshot_fingerprint(after.result) == fingerprint_before
    print(f"\nsnapshot {ssid} re-read after chaos: "
          f"{'bit-identical' if same else 'MISMATCH'}")
    assert same, "snapshot query diverged across failures"

    # The clean-system invariants: nothing hung, nothing leaked.
    assert_invariants(env, executions)
    print("invariants hold: no hung queries, no leaked locks")

    print()
    print(format_report(collect_report(env)))


if __name__ == "__main__":
    main()
