#!/usr/bin/env python3
"""Approximate operations dashboard over the Q-commerce workload.

The monitoring queries of §VIII don't need exact answers — "roughly
how many deliveries are late?" tolerates a few percent error if it
comes back 10x faster.  This example deploys the three-operator
Q-commerce job with sketches declared on its state (exactly like
indexes, via ``SketchSpec``), then answers dashboard questions twice:
``SELECT APPROX`` off the incrementally-maintained sketches, and the
exact distributed scan.  Every approximate answer carries its own
``error_bound`` and ``confidence``.

Run:  python examples/approx_dashboard.py
"""

from repro import ClusterConfig, Environment, QueryService
from repro.config import SketchSpec, SQueryConfig
from repro.observability import collect_report
from repro.state import SQueryBackend
from repro.workloads.qcommerce import build_qcommerce_job

#: (label, approx sql, exact sql, output column)
QUESTIONS = (
    ("orders picked up by a rider",
     'SELECT APPROX COUNT(*) AS n FROM "orderstate" '
     "WHERE orderState = 'PICKED_UP'",
     'SELECT COUNT(*) AS n FROM "orderstate" '
     "WHERE orderState = 'PICKED_UP'", "n"),
    ("delivery zones active",
     'SELECT APPROX COUNT(DISTINCT deliveryZone) AS z '
     'FROM "orderinfo"',
     'SELECT COUNT(DISTINCT deliveryZone) AS z FROM "orderinfo"', "z"),
    ("mean rider latitude",
     'SELECT APPROX AVG(latitude) AS lat FROM "riderlocation"',
     'SELECT AVG(latitude) AS lat FROM "riderlocation"', "lat"),
    ("orders near the customer (snapshot)",
     'SELECT APPROX COUNT(*) AS n FROM "snapshot_orderstate" '
     "WHERE orderState = 'NEAR_CUSTOMER'",
     'SELECT COUNT(*) AS n FROM "snapshot_orderstate" '
     "WHERE orderState = 'NEAR_CUSTOMER'", "n"),
)


def main() -> None:
    # Few enough partitions that the fixed per-partition probe cost
    # stays well under the scans it replaces.
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2,
                                    partition_count=48))
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig(
        sketches=(
            SketchSpec("orderstate", "orderState", "countmin"),
            SketchSpec("orderinfo", "deliveryZone", "hll"),
            SketchSpec("riderlocation", "latitude", "reservoir"),
        ),
    ))
    job = build_qcommerce_job(
        env, backend,
        orders=5_000, riders=1_200, events_per_s=8_000,
        checkpoint_interval_ms=500, parallelism=3,
    )
    job.start()
    env.run_for(3_000)

    approx = QueryService(env, sketches=True)
    exact = QueryService(env, sketches=False)
    for label, approx_sql, exact_sql, column in QUESTIONS:
        lhs = approx.execute(approx_sql)
        rhs = exact.execute(exact_sql)
        row = lhs.result.rows[0]
        path = "sketch" if lhs.approx_answered else "exact fallback"
        print(f"\n{label}  [{path}]")
        print(f"  approx {row[column]:>12,.1f}  "
              f"+/- {row['error_bound']:,.1f} "
              f"@ {row['confidence']:.0%}  "
              f"({lhs.latency_ms:.2f} ms, "
              f"{lhs.sketch_probes} probes)")
        print(f"  exact  {rhs.result.rows[0][column]:>12,.1f}  "
              f"({rhs.latency_ms:.2f} ms, "
              f"{rhs.entries_scanned:,} rows scanned)")

    # The planner explains its choice — including why each losing
    # access path was rejected, with priced estimates.
    print("\nplanner view of the first question:")
    for line in approx.explain(QUESTIONS[0][1]).splitlines():
        print(f"  {line}")

    report = collect_report(env)
    print(f"\nsketches answered {report.approx_queries_answered} "
          f"APPROX queries with {report.sketch_probes:,} probes; "
          f"{report.sketch_maintenance_ops:,} maintenance ops "
          f"({report.sketch_maintenance_cost:,.1f} ms billed on the "
          "write path)")


if __name__ == "__main__":
    main()
