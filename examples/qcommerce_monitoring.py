#!/usr/bin/env python3
"""Q-commerce order-delivery monitoring (§VIII, Delivery Hero use case).

Deploys the three-operator monitoring job — order info, order status,
rider locations — and runs the paper's four real queries verbatim
against consistent snapshot state while the stream keeps flowing.  This
is the cache-replacement story of Fig. 7 → Fig. 1: no Redis layer, no
intermediate database; the stream processor's own state answers the
operational questions.

Run:  python examples/qcommerce_monitoring.py
"""

from repro import ClusterConfig, Environment, QueryService
from repro.query import DirectObjectInterface
from repro.state import SQueryBackend
from repro.config import SQueryConfig
from repro.workloads.qcommerce import (
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    build_qcommerce_job,
)

QUESTIONS = (
    (QUERY_1, "Q1: late orders (in preparation too long) per area"),
    (QUERY_2, "Q2: deliveries ready for pickup per shop category"),
    (QUERY_3, "Q3: deliveries being prepared per area"),
    (QUERY_4, "Q4: deliveries in transit per area"),
)


def main() -> None:
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig())
    job = build_qcommerce_job(
        env, backend,
        orders=400, riders=60, events_per_s=6_000,
        checkpoint_interval_ms=500, parallelism=3,
    )
    job.start()
    env.run_for(3_000)

    service = QueryService(env)
    for sql, question in QUESTIONS:
        execution = service.execute(sql)
        print(f"\n{question}")
        print(f"  (snapshot {execution.snapshot_id}, "
              f"{execution.latency_ms:.2f} ms, "
              f"{execution.isolation.value})")
        for row in sorted(execution.result.rows,
                          key=lambda r: -r["COUNT(*)"])[:5]:
            group = row.get("deliveryZone") or row.get("vendorCategory")
            print(f"  {group:<14} {row['COUNT(*)']:>4}")

    # Dispatchers also need single riders fast: the direct object
    # interface fetches state objects by key (§IX-D).
    doi = DirectObjectInterface(env)
    lookup = doi.submit_get("riderlocation", [3, 4, 5])
    env.run_for(10)
    print("\nrider positions (direct object interface, "
          f"{lookup.latency_ms:.3f} ms):")
    for rider, location in sorted(lookup.values.items()):
        print(f"  rider {rider}: ({location.latitude:.4f}, "
              f"{location.longitude:.4f})")

    # The monitoring dashboard refreshes as new snapshots commit.
    env.run_for(1_000)
    again = service.execute(QUERY_4)
    print(f"\nQ4 one second later (snapshot {again.snapshot_id}): "
          f"{sum(r['COUNT(*)'] for r in again.result.rows)} in transit")


if __name__ == "__main__":
    main()
