#!/usr/bin/env python3
"""Auditing & compliance (§III): subject-access requests over internal
stream state.

Under GDPR, processing personal data inside a stream processor is still
processing — individuals may request everything the system holds about
them (Article 15).  With S-QUERY the internal state is no longer a
black box: one subject-access request collects a key's live value and
every retained snapshot version from *every* stateful operator.

Run:  python examples/gdpr_audit.py
"""

from repro import ClusterConfig, Environment
from repro.config import SQueryConfig
from repro.query import StateAuditor
from repro.state import SQueryBackend
from repro.workloads.qcommerce import build_qcommerce_job


def main() -> None:
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    # Keep more history than the default so the audit shows evolution.
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig(
        retained_snapshots=4,
    ))
    job = build_qcommerce_job(
        env, backend, orders=200, riders=30, events_per_s=5_000,
        checkpoint_interval_ms=500, parallelism=3,
    )
    job.start()
    env.run_for(3_200)

    auditor = StateAuditor(env)

    # --- Article 15: what do you hold about order 42? -----------------
    order_id = 42
    report = auditor.submit_subject_access(order_id)
    env.run_for(50)
    print(f"subject-access request for order {order_id} "
          f"({report.latency_ms:.2f} ms):")
    for name in report.tables_holding_data():
        audit = report.tables[name]
        print(f"\n  operator {name!r}:")
        print(f"    live value : {audit.live_value}")
        for ssid in sorted(audit.versions):
            print(f"    snapshot {ssid}: {audit.versions[ssid]}")

    # --- debugging: how did this order's status evolve? ----------------
    history = auditor.submit_history("orderstate", order_id)
    env.run_for(50)
    audit = history.tables["orderstate"]
    print(f"\norder {order_id} status across snapshot versions:")
    for ssid in sorted(audit.versions):
        status = audit.versions[ssid]
        print(f"  snapshot {ssid}: {status.orderState}")
    live_status = audit.live_value
    print(f"  live       : {live_status.orderState}")

    # --- data that is not there is provably not there -------------------
    ghost = auditor.submit_subject_access(10**9)
    env.run_for(50)
    print(f"\nsubject-access for unknown key 10^9: "
          f"{ghost.tables_holding_data() or 'no data held'}")


if __name__ == "__main__":
    main()
