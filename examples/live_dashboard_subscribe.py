#!/usr/bin/env python3
"""The windowed dashboard, rewritten push-style.

``windowed_dashboard.py`` refreshes its numbers by polling: every
repaint re-executes a full ``SELECT`` against the live state, paying a
cluster-wide scan whether or not anything changed.  This version opens
*standing* queries instead — ``QueryService.subscribe`` registers the
SQL once, the continuous query service maintains the result
incrementally from the operator's change stream, and batched deltas are
pushed to the dashboard as the open windows evolve.

Run:  python examples/live_dashboard_subscribe.py
"""

from repro import (
    ClusterConfig,
    Environment,
    QueryService,
    SQueryBackend,
    SQueryConfig,
    collect_report,
    format_report,
)
from repro.workloads.nexmark import build_windowed_price_job


def main() -> None:
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig())
    job = build_windowed_price_job(
        env, backend, rate_per_s=8_000, auctions=120, window_ms=500,
        parallelism=3,
    )
    job.start()
    env.run_for(200)

    service = QueryService(env)

    # The polling loop's repeated SELECT becomes one standing query.
    # Both are maintained per-delta: no repeated scans.
    totals = service.subscribe(
        'SELECT COUNT(*) AS windows, SUM(count) AS bids_in_flight, '
        'MIN(window_start) AS oldest FROM "bidwindow"'
    )
    per_window = service.subscribe(
        'SELECT partitionKey, count FROM "bidwindow"'
    )
    print("plan for totals        :", totals.explain())
    print("plan for per-window    :", per_window.explain())
    print()

    # A dashboard repaints on push instead of on a timer.  Simulate a
    # few repaints by sampling the maintained views as time advances.
    for _ in range(4):
        env.run_for(750)
        (row,) = totals.rows()
        busiest = sorted(per_window.rows(),
                         key=lambda r: r["count"], reverse=True)[:3]
        print(f"t={env.now:7.1f}ms  open windows: {row['windows']:3d}  "
              f"bids in flight: {row['bids_in_flight']:5d}  "
              f"busiest: {[(r['partitionKey'], r['count']) for r in busiest]}")

    print()
    print(f"delta batches received : {totals.batches_received}"
          f" (totals) + {per_window.batches_received} (per-window)")
    print(f"rescans needed         : {totals.standing.rescans}"
          f" + {per_window.standing.rescans}")
    svc = env.continuous
    arrangement = svc.arrangements["bidwindow"]
    print(f"shared arrangement     : {arrangement.reader_count} readers,"
          f" {arrangement.updates_applied} updates applied once each")

    # The utilisation report now carries the push-side counters too.
    print()
    print(format_report(collect_report(env)))

    service_stats = (svc.deltas_pushed, svc.batches_sent)
    print(f"\npushed {service_stats[0]} deltas in {service_stats[1]} batches"
          " — zero polling scans issued.")


if __name__ == "__main__":
    main()
