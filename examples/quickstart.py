#!/usr/bin/env python3
"""Quickstart: make a streaming job's internal state queryable.

Builds the paper's running example (Fig. 2 / Fig. 4): a stream of
numbers flows into a stateful ``average`` operator whose state holds a
``count`` and a ``total`` per key.  With S-QUERY attached, that state
becomes two SQL tables — the live table ``average`` and the snapshot
table ``snapshot_average`` — which external applications query while
the job keeps running.

Run:  python examples/quickstart.py
"""

from dataclasses import dataclass

from repro import (
    Environment,
    Job,
    JobConfig,
    KeyedAggregateOperator,
    Pipeline,
    QueryService,
    SinkOperator,
    SQueryBackend,
    SQueryConfig,
)
from repro.dataflow.sources import CallableSource


@dataclass
class Average:
    """The operator state of Fig. 2: a count and a running total."""

    count: int
    total: float


def accumulate(state: Average | None, value: float) -> Average:
    if state is None:
        return Average(1, value)
    return Average(state.count + 1, state.total + value)


def numbers(instance: int, seq: int):
    """Deterministic input stream: keys 1-2, values like Fig. 2's."""
    key = 1 + (seq % 2)
    value = float((instance * 7 + seq * 5) % 45)
    return key, value


def main() -> None:
    # One environment = simulator + cluster + state store (Fig. 1).
    env = Environment()
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig())

    pipeline = Pipeline()
    pipeline.add_source("numbers", CallableSource(numbers, 1_000))
    pipeline.add_operator(
        "average",
        lambda: KeyedAggregateOperator(
            accumulate, lambda key, s: s.total / s.count
        ),
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("numbers", "average")
    pipeline.connect("average", "out")

    job = Job(env, pipeline, JobConfig(checkpoint_interval_ms=1000),
              backend)
    job.start()
    env.run_for(3_500)  # ~3 checkpoints committed

    service = QueryService(env)

    # Fig. 4, left query: the live state of key 1, right now.
    live = service.execute(
        'SELECT count, total FROM "average" WHERE key = 1'
    )
    print("live state of key 1   :", live.result.rows,
          f"(isolation: {live.isolation.value})")

    # Fig. 4, right query: the same key in a consistent snapshot.
    ssid = env.store.committed_ssid
    snap = service.execute(
        f'SELECT count, total FROM "snapshot_average" '
        f"WHERE ssid = {ssid} AND key = 2"
    )
    print(f"snapshot {ssid} of key 2 :", snap.result.rows,
          f"(isolation: {snap.isolation.value})")

    # §III "Simplifying Streaming Topologies": the number of items seen
    # so far needs no extra job — it's one query on the average state.
    items = service.execute('SELECT SUM(count) AS items FROM "average"')
    print("items processed so far:", items.result.rows[0]["items"])

    # Queries report their own (virtual-time) latency.
    print(f"query latencies       : live {live.latency_ms:.2f} ms, "
          f"snapshot {snap.latency_ms:.2f} ms")


if __name__ == "__main__":
    main()
