#!/usr/bin/env python3
"""NEXMark query 6 with ad-hoc state analytics (§IX's workload).

Runs the auction job the paper benchmarks with, then uses S-QUERY for
the things the introduction promises: joining internal state tables,
debugging a single seller's window, and auditing how state evolved
across snapshot versions.

Run:  python examples/nexmark_analytics.py
"""

from repro import ClusterConfig, Environment, QueryService
from repro.config import SQueryConfig
from repro.state import SQueryBackend
from repro.workloads.nexmark import build_query6_job


def main() -> None:
    env = Environment(ClusterConfig(nodes=3,
                                    processing_workers_per_node=2))
    # Keep four snapshot versions to enable historical queries.
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig(
        retained_snapshots=4,
    ))
    job = build_query6_job(
        env, backend, rate_per_s=20_000, sellers=500,
        checkpoint_interval_ms=500, parallelism=3,
    )
    job.start()
    env.run_for(4_000)

    service = QueryService(env)

    # Analytics: top sellers by average selling price, straight from
    # the operator's internal state.
    top = service.execute(
        'SELECT key, average, closed_auctions FROM "q6" '
        "WHERE closed_auctions >= 10 ORDER BY average DESC LIMIT 5"
    )
    print("top sellers by average price (live state):")
    for row in top.result.rows:
        print(f"  seller {row['key']:>4}  avg {row['average']:8.2f}  "
              f"({row['closed_auctions']} auctions)")

    # Monitoring: overall market statistics on a consistent snapshot.
    stats = service.execute(
        'SELECT COUNT(*) AS sellers, AVG(average) AS mean_price, '
        'MIN(average) AS lo, MAX(average) AS hi FROM "snapshot_q6"'
    )
    row = stats.result.rows[0]
    print(f"\nmarket snapshot {stats.snapshot_id}: "
          f"{row['sellers']} sellers, mean {row['mean_price']:.2f}, "
          f"range [{row['lo']:.2f}, {row['hi']:.2f}]")

    # Debugging: inspect one seller's exact window contents.
    seller = top.result.rows[0]["key"]
    window = service.execute(
        f'SELECT prices FROM "q6" WHERE key = {seller}'
    )
    print(f"\nseller {seller}'s last-10 window: "
          f"{window.result.rows[0]['prices']}")

    # Auditing: how did this seller's average evolve across retained
    # snapshot versions?  (§VI-A: results can integrate multiple
    # versions with explicit snapshot ids.)
    print(f"\nseller {seller}'s average across snapshot versions:")
    for ssid in env.store.available_ssids():
        historical = service.execute(
            f'SELECT average FROM "snapshot_q6" '
            f"WHERE ssid = {ssid} AND key = {seller}"
        )
        if historical.result.rows:
            value = historical.result.rows[0]["average"]
            print(f"  snapshot {ssid}: {value:.2f}")

    # The ad-hoc count of §III, no extra streaming job required.
    auctions = service.execute(
        'SELECT SUM(closed_auctions) AS n FROM "q6"'
    )
    print(f"\nauctions processed so far: {auctions.result.rows[0]['n']}")


if __name__ == "__main__":
    main()
