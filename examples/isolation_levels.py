#!/usr/bin/env python3
"""Isolation levels in action: the paper's Fig. 5 and Fig. 6 examples.

A single-key counting operator runs with S-QUERY attached.  A live
query reads the running (uncommitted) count; a node failure then rolls
the state back to the latest checkpoint, revealing the live read as a
*dirty read* (read uncommitted).  A snapshot query pinned to a snapshot
id returns the same answer before and after the failure — serialisable
snapshot isolation.

Run:  python examples/isolation_levels.py
"""

from repro import (
    ClusterConfig,
    Environment,
    Job,
    JobConfig,
    KeyedAggregateOperator,
    Pipeline,
    QueryService,
    SinkOperator,
    SQueryBackend,
    SQueryConfig,
)
from repro.dataflow.sources import CallableSource


def main() -> None:
    env = Environment(ClusterConfig(nodes=2,
                                    processing_workers_per_node=2))
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig())

    pipeline = Pipeline()
    pipeline.add_source(
        "events", CallableSource(lambda i, s: (0, 1), 100.0)
    )
    pipeline.add_operator(
        "count", lambda: KeyedAggregateOperator(lambda s, v: (s or 0) + v)
    )
    pipeline.add_operator("out", SinkOperator)
    pipeline.connect("events", "count")
    pipeline.connect("count", "out")
    job = Job(env, pipeline,
              JobConfig(checkpoint_interval_ms=1000, parallelism=1),
              backend)
    job.start()
    service = QueryService(env)

    def live_count():
        return service.execute(
            'SELECT value AS n FROM "count"'
        ).result.rows[0]["n"]

    def snapshot_count(ssid):
        return service.execute(
            'SELECT value AS n FROM "snapshot_count"', snapshot_id=ssid
        ).result.rows[0]["n"]

    # --- Fig. 5 (a): a checkpoint captures the state -------------------
    env.run_until(1_200)
    ssid = env.store.committed_ssid
    print(f"(a) snapshot {ssid} committed; it holds count ="
          f" {snapshot_count(ssid)}")

    # --- Fig. 5 (b): the live state moves ahead ------------------------
    env.run_until(1_800)
    live = live_count()
    print(f"(b) live query now returns {live}  "
          "(read uncommitted: not yet checkpointed)")

    # --- Fig. 5 (c): failure rolls the state back ----------------------
    victim = job.node_of("count", 0)
    other = 1 - victim if victim in (0, 1) else 0
    env.cluster.kill_node(victim if victim != 0 else other)
    rolled_back = live_count()
    print(f"(c) after the failure the live count is {rolled_back} — "
          f"the earlier read of {live} was dirty")

    # --- Fig. 6: the snapshot answer never changes ---------------------
    stable = snapshot_count(ssid)
    print(f"(d) snapshot {ssid} still answers {stable} "
          "(serializable snapshot isolation)")
    assert stable <= rolled_back

    # --- replay catches up ----------------------------------------------
    env.run_until(5_000)
    print(f"(e) after replay the live count reached {live_count()} "
          "(exactly-once: nothing lost, nothing duplicated)")

    print("\nisolation levels offered (§VII):")
    from repro.state import IsolationLevel, isolation_of_query
    for targets_snapshot, locks, note in (
        (False, False, "live query"),
        (False, True, "live query, locks held for whole query"),
        (True, False, "snapshot query"),
    ):
        level = isolation_of_query(targets_snapshot, locks)
        print(f"  {note:<42} -> {level.value}")


if __name__ == "__main__":
    main()
