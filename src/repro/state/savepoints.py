"""Savepoints: exporting a committed snapshot and bootstrapping a new
job from it.

Jet (and Flink) let operators export a snapshot and start a different
job from it — upgrades, A/B topologies, migrations.  Because S-QUERY
snapshots are already first-class queryable data, exporting one is just
materialising it; bootstrapping seeds a new job's operator state (and
its live tables) before the job starts, after which normal checkpoints
take over.
"""

from __future__ import annotations

from typing import Hashable

from ..cluster.partition import stable_hash
from ..errors import DataflowError, SnapshotNotFoundError, StateError


def export_snapshot(backend, ssid: int | None = None
                    ) -> dict[str, dict[Hashable, object]]:
    """Materialise one committed snapshot as ``{vertex: {key: value}}``.

    ``ssid`` defaults to the latest committed snapshot.  The export is
    a plain nested dict — portable across environments (and trivially
    serialisable by callers).
    """
    store = backend.store
    if ssid is None:
        ssid = store.committed_ssid
        if ssid is None:
            raise StateError("no committed snapshot to export")
    exported: dict[str, dict[Hashable, object]] = {}
    for vertex_name, table in backend.snapshot_tables.items():
        if not table.has_snapshot(ssid):
            raise SnapshotNotFoundError(ssid)
        merged: dict[Hashable, object] = {}
        for instance in range(table.parallelism):
            merged.update(table.instance_state(ssid, instance))
        exported[vertex_name] = merged
    return exported


def bootstrap_job(job, exported: dict[str, dict[Hashable, object]],
                  strict: bool = True) -> None:
    """Seed a not-yet-started job's stateful operators from an export.

    Keys are distributed to instances with the job's own routing
    function, so the new job may have a *different* parallelism than
    the exporting one (the rescaling story).  With ``strict`` the
    export must not reference unknown vertices.
    """
    if job._started:
        raise DataflowError("bootstrap must happen before job.start()")
    known = {
        name for name in job.pipeline.vertices
        if name in job._instances
        and job._instances[name][0].operator.stateful
    }
    for vertex_name, state in exported.items():
        if vertex_name not in known:
            if strict:
                raise DataflowError(
                    f"export references unknown or stateless vertex "
                    f"{vertex_name!r}"
                )
            continue
        instances = job.instances_of(vertex_name)
        parallelism = len(instances)
        for key, value in state.items():
            index = stable_hash(key) % parallelism
            instances[index].operator.state.put(key, value)
