"""The S-QUERY state backend: wires queryable state into the engine.

``SQueryBackend`` extends the vanilla (Jet) backend with the paper's two
features:

* **live state** — every operator state update is mirrored into a live
  IMap named after the operator (Table I), at a per-update cost charged
  to the processing worker (plus a network hop if co-partitioning is
  disabled);
* **snapshot state** — checkpoints write individually queryable rows
  (Table II) instead of only an opaque blob, at an extra per-entry store
  cost; optionally as incremental deltas.

Recovery reads back whichever representation is authoritative: full
snapshot tables, incremental reconstruction, or vanilla blobs when the
queryable snapshot state is disabled.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..cluster import Cluster
from ..config import SQueryConfig
from ..errors import StateError
from ..dataflow.backend import VanillaBackend, submit_chunked_write
from ..kvstore import InstancePlacement, StateStore
from .incremental import IncrementalSnapshotTable
from .live import LiveStateTable
from .rows import sanitize_table_name, snapshot_table_name
from .snapshots import FullSnapshotTable


class SQueryBackend(VanillaBackend):
    """State backend implementing the S-QUERY architecture (Fig. 1)."""

    def __init__(self, cluster: Cluster, store: StateStore,
                 config: SQueryConfig | None = None) -> None:
        super().__init__(cluster)
        self.store = store
        self.config = config or SQueryConfig()
        self.config.validate()
        self.live_tables: dict[str, LiveStateTable] = {}
        self.snapshot_tables: dict[str, object] = {}
        self._vertex_table: dict[str, str] = {}
        self._node_of: dict[str, Callable[[int], int]] = {}
        self._parallelism: dict[str, int] = {}
        #: Hot-standby replicas, vertex -> instance -> {key: value}.
        #: Maintained synchronously from the update stream when
        #: ``active_replication`` is on (§VII-B).
        self._standby: dict[str, dict[int, dict]] = {}
        self.live_updates_mirrored = 0

    @property
    def incremental(self) -> bool:  # type: ignore[override]
        return self.config.snapshot_state and self.config.incremental

    @property
    def retained_snapshots(self) -> int:
        return self.config.retained_snapshots

    # -- registration -----------------------------------------------------

    def register_vertex(self, vertex_name: str, parallelism: int,
                        node_of_instance: Callable[[int], int],
                        stateful: bool) -> None:
        super().register_vertex(
            vertex_name, parallelism, node_of_instance, stateful
        )
        if not stateful:
            return
        table_name = sanitize_table_name(vertex_name)
        self._vertex_table[vertex_name] = table_name
        self._node_of[vertex_name] = node_of_instance
        self._parallelism[vertex_name] = parallelism
        if self.config.active_replication:
            self._standby[vertex_name] = {
                instance: {} for instance in range(parallelism)
            }
        placement = InstancePlacement(
            parallelism, node_of_instance, self._cluster.config.nodes
        )
        if self.config.live_state:
            imap = self.store.create_map(table_name, placement)
            live = LiveStateTable(imap)
            self.live_tables[vertex_name] = live
            self.store.register_live_table(table_name, live)
        if self.config.snapshot_state:
            snap_name = snapshot_table_name(vertex_name)
            if not self.config.incremental:
                table: object = FullSnapshotTable(
                    snap_name, parallelism, node_of_instance
                )
            elif self.config.incremental_backend == "lsm":
                from .lsm_backend import LsmSnapshotTable

                table = LsmSnapshotTable(
                    snap_name, parallelism, node_of_instance
                )
            else:
                table = IncrementalSnapshotTable(
                    snap_name, parallelism, node_of_instance,
                    self.config.prune_chain_length,
                )
            self.snapshot_tables[vertex_name] = table
            self.store.register_snapshot_table(snap_name, table)
        self._create_declared_indexes(vertex_name)
        self._create_declared_sketches(vertex_name)

    def _create_declared_indexes(self, vertex_name: str) -> None:
        """Deploy-time DDL: apply ``config.indexes`` specs naming this
        vertex (by vertex or sanitised table name)."""
        table_name = self._vertex_table[vertex_name]
        for spec in self.config.indexes:
            if spec.vertex not in (vertex_name, table_name):
                continue
            if spec.live and self.config.live_state:
                self.store.create_index(table_name, spec.column, spec.kind)
            if spec.snapshots and self.config.snapshot_state \
                    and not self.config.incremental:
                self.store.create_index(
                    snapshot_table_name(vertex_name), spec.column, spec.kind
                )

    def _create_declared_sketches(self, vertex_name: str) -> None:
        """Deploy-time DDL: apply ``config.sketches`` specs naming this
        vertex (by vertex or sanitised table name)."""
        table_name = self._vertex_table[vertex_name]
        for spec in self.config.sketches:
            if spec.vertex not in (vertex_name, table_name):
                continue
            if spec.live and self.config.live_state:
                self.store.create_sketch(table_name, spec.column,
                                         spec.kind)
            if spec.snapshots and self.config.snapshot_state \
                    and not self.config.incremental:
                self.store.create_sketch(
                    snapshot_table_name(vertex_name), spec.column,
                    spec.kind,
                )

    # -- live state ---------------------------------------------------------

    def live_update_cost(self, vertex_name: str) -> float:
        if not self.config.live_state:
            return 0.0
        if vertex_name not in self._vertex_table:
            return 0.0
        cost = self._costs.live_mirror_ms
        if not self.config.colocate_state:
            cost += self._costs.live_mirror_remote_ms
        if self.config.active_replication:
            cost += self._costs.replication_sync_ms
        live = self.live_tables.get(vertex_name)
        if live is not None and live.index_count:
            # Incremental index maintenance rides the mirror write,
            # under the same key-level lock.
            cost += self._costs.index_maintain_entry_ms * live.index_count
        if live is not None and live.sketch_count:
            # Sketch maintenance rides the same write, same lock.
            cost += self._costs.sketch_maintain_entry_ms * \
                live.sketch_count
        return cost

    def on_state_update(self, vertex_name: str, key: Hashable,
                        value: object | None) -> None:
        live = self.live_tables.get(vertex_name)
        if live is None:
            return
        self.live_updates_mirrored += 1
        standby = self._standby.get(vertex_name)
        if standby is not None:
            from ..cluster.partition import stable_hash

            instance = stable_hash(key) % self._parallelism[vertex_name]
            replica = standby[instance]
            if value is None:
                replica.pop(key, None)
            else:
                replica[key] = value
        locks = self.store.locks
        lock_key = (live.name, key)
        owner = object()

        def apply() -> None:
            live.apply_update(key, value)
            locks.release(lock_key, owner)

        # Key-level locking (§VII-B): if a repeatable-read query holds
        # the key, the mirror write applies when the lock is released.
        locks.acquire(lock_key, owner, granted=apply)

    # -- snapshot state --------------------------------------------------------

    def write_snapshot(self, vertex_name: str, instance: int, node_id: int,
                       ssid: int, payload: dict, deleted: set,
                       on_done: Callable[[], None]) -> None:
        costs = self._costs
        table = self.snapshot_tables.get(vertex_name)
        if table is None:
            # Queryable snapshot state disabled: Jet's blob path only.
            super().write_snapshot(
                vertex_name, instance, node_id, ssid, payload, deleted,
                on_done,
            )
            return
        per_entry = costs.store_entry_ms + costs.squery_snapshot_entry_ms
        if self.config.incremental and \
                self.config.incremental_backend == "chain":
            # Chain maintenance pays per-entry version-index housekeeping
            # up front; the LSM backend amortises it into background
            # compaction instead (append-only writes).
            per_entry += costs.incremental_entry_overhead_ms
        per_entry += costs.index_maintain_entry_ms * getattr(
            table, "index_count", 0
        )
        per_entry += costs.sketch_maintain_entry_ms * getattr(
            table, "sketch_count", 0
        )
        server = self._cluster.node(node_id).store_server(instance)

        def finish() -> None:
            if self.config.incremental:
                table.write_instance(ssid, instance, payload, deleted)
            else:
                table.write_instance(ssid, instance, payload)
            on_done()

        submit_chunked_write(
            server, len(payload), per_entry,
            costs.scan_chunk_entries, finish,
        )

    def restore_instance_state(self, vertex_name: str, instance: int,
                               ssid: int) -> dict:
        table = self.snapshot_tables.get(vertex_name)
        if table is None:
            state = super().restore_instance_state(
                vertex_name, instance, ssid
            )
        else:
            state = table.instance_state(ssid, instance)
        live = self.live_tables.get(vertex_name)
        if live is not None:
            # The live view must reflect the rolled-back state (Fig. 5c).
            live.replace_partition(instance, state)
        return state

    def reset_instance_state(self, vertex_name: str, instance: int) -> None:
        """Restart-from-scratch (no committed snapshot): the live view
        must be emptied too, or post-recovery live queries and push
        subscribers would observe pre-failure state that no longer
        exists in any operator."""
        live = self.live_tables.get(vertex_name)
        if live is not None:
            live.replace_partition(instance, {})

    def drop_snapshot(self, ssid: int) -> None:
        super().drop_snapshot(ssid)
        for table in self.snapshot_tables.values():
            table.drop_snapshot(ssid)

    def on_commit(self, ssid: int) -> None:
        if not self.incremental:
            return
        # Compact only up to the oldest snapshot that retention will
        # keep: every still-queryable id must stay reconstructable, so
        # in-flight queries pinned to it never lose their target.
        available = self.store.available_ssids()
        keep = self.config.retained_snapshots
        if len(available) >= keep:
            target = available[-keep]
        else:
            target = available[0] if available else ssid
        for table in self.snapshot_tables.values():
            table.maybe_prune(target)

    # -- active replication (§VII-B, read committed) --------------------

    @property
    def provides_standby(self) -> bool:
        """Whether failures are handled by standby promotion instead of
        rollback (the paper's read-committed HA setup)."""
        return self.config.active_replication

    def standby_state(self, vertex_name: str, instance: int) -> dict:
        """The hot-standby replica of one instance's state."""
        standby = self._standby.get(vertex_name)
        if standby is None:
            raise StateError(
                f"no standby replicas for {vertex_name!r} "
                "(active_replication is off or vertex is stateless)"
            )
        return dict(standby.get(instance, {}))

    def promote_standby(self, vertex_name: str, instance: int) -> dict:
        """Failover: return the standby state and refresh the live view
        (no rollback — committed live reads stay valid)."""
        state = self.standby_state(vertex_name, instance)
        live = self.live_tables.get(vertex_name)
        if live is not None:
            live.replace_partition(instance, state)
        return state

    # -- introspection -------------------------------------------------------

    def live_table(self, vertex_name: str) -> LiveStateTable:
        return self.live_tables[vertex_name]

    def snapshot_table(self, vertex_name: str):
        return self.snapshot_tables[vertex_name]
