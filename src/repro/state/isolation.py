"""Isolation levels offered by S-QUERY (§VII).

============================  =============================================
Level                         How S-QUERY provides it
============================  =============================================
``READ_UNCOMMITTED``          Live-state queries: operator updates are
                              uncommitted until the next checkpoint; a
                              failure rolls them back, so a live read may
                              turn out to be dirty (Fig. 5).
``READ_COMMITTED``            Live-state queries *assuming no failures*,
                              thanks to key-level locking around each
                              read/write; or with an HA/active-replication
                              setup (not simulated).
``REPEATABLE_READ``           Live-state queries that hold every key lock
                              for the whole query duration
                              (``SQueryConfig.repeatable_read_locks``);
                              expensive, off by default.
``SNAPSHOT`` / ``SERIALIZABLE``  Snapshot-state queries: they execute on an
                              atomically committed snapshot, and because
                              state updates are serialised by design
                              (single-threaded operators on disjoint
                              partitions) there are no write conflicts —
                              snapshot isolation is serialisable here
                              (Fig. 6).
============================  =============================================
"""

from __future__ import annotations

import enum


class IsolationLevel(enum.Enum):
    READ_UNCOMMITTED = "read uncommitted"
    READ_COMMITTED = "read committed"
    REPEATABLE_READ = "repeatable read"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"

    def at_least(self, other: "IsolationLevel") -> bool:
        """Whether this level is as strong as ``other``."""
        return _STRENGTH[self] >= _STRENGTH[other]


_STRENGTH = {
    IsolationLevel.READ_UNCOMMITTED: 0,
    IsolationLevel.READ_COMMITTED: 1,
    IsolationLevel.REPEATABLE_READ: 2,
    IsolationLevel.SNAPSHOT: 3,
    IsolationLevel.SERIALIZABLE: 4,
}


def isolation_of_query(targets_snapshot: bool, repeatable_read_locks: bool,
                       assume_no_failures: bool = False) -> IsolationLevel:
    """The isolation level a query effectively runs under (§VII-B).

    Snapshot queries are serialisable by the paper's deduction; live
    queries are read-uncommitted, upgraded to read-committed under a
    no-failure assumption and to repeatable-read when locks are held for
    the whole query.
    """
    if targets_snapshot:
        return IsolationLevel.SERIALIZABLE
    if repeatable_read_locks:
        return IsolationLevel.REPEATABLE_READ
    if assume_no_failures:
        return IsolationLevel.READ_COMMITTED
    return IsolationLevel.READ_UNCOMMITTED
