"""Row shaping: turning state objects into queryable SQL rows.

State values are arbitrary Python objects (the paper: "the value can be
any object").  The SQL layer sees them as rows: dataclasses and mappings
expose their fields as columns; scalars appear as a single ``value``
column.  Every row carries the partition key under both ``partitionKey``
(the name used by the paper's queries) and ``key`` (Fig. 4's header).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable


def value_to_columns(value: object) -> dict:
    """Flatten a state object into column name → value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: getattr(value, field.name)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return dict(value)
    if hasattr(value, "_asdict"):  # namedtuple
        return dict(value._asdict())
    return {"value": value}


def live_row(key: Hashable, value: object) -> dict:
    """Table I: | Key | State object |."""
    row = value_to_columns(value)
    row["partitionKey"] = key
    row["key"] = key
    return row


def snapshot_row(key: Hashable, ssid: int, value: object) -> dict:
    """Table II: | Key | Snapshot ID | State object |."""
    row = value_to_columns(value)
    row["partitionKey"] = key
    row["key"] = key
    row["ssid"] = ssid
    return row


def sanitize_table_name(vertex_name: str) -> str:
    """Operator name → table name (the paper lowercases and strips
    spaces: operator "stateful map" → table ``statefulmap``)."""
    return "".join(vertex_name.split()).lower()


def snapshot_table_name(vertex_name: str) -> str:
    return f"snapshot_{sanitize_table_name(vertex_name)}"
