"""Live-state tables (Table I).

A :class:`LiveStateTable` wraps the IMap that mirrors one stateful
operator's running state.  Rows reflect whatever the operators have done
so far — uncommitted by definition, hence the read-uncommitted isolation
level of live queries (§VII-B).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..kvstore import IMap
from ..kvstore.indexes import IndexDef
from .rows import live_row

_MISSING = object()


class LiveStateTable:
    """Queryable view over an operator's live IMap."""

    def __init__(self, imap: IMap) -> None:
        self._imap = imap
        #: Continuous-query change capture (None = capture disabled; the
        #: mutation fast path then stays exactly as before).
        self._capture = None

    def attach_change_capture(self, recorder) -> None:
        """Route every mutation through ``recorder`` as typed events."""
        self._capture = recorder

    @property
    def name(self) -> str:
        return self._imap.name

    @property
    def imap(self) -> IMap:
        return self._imap

    def __len__(self) -> int:
        return len(self._imap)

    def rows(self) -> Iterator[dict]:
        for key, value in self._imap.entries():
            yield live_row(key, value)

    def rows_on_node(self, node_id: int) -> Iterator[dict]:
        for key, value in self._imap.entries_on_node(node_id):
            yield live_row(key, value)

    def entries_on_node(self, node_id: int) -> int:
        return sum(
            self._imap.partition_size(partition)
            for partition in self._imap.partitions_on_node(node_id)
        )

    def row_count_on_node(self, node_id: int) -> int:
        return self.entries_on_node(node_id)

    def get(self, key: Hashable, default: object = None) -> object:
        return self._imap.get(key, default)

    # -- partition-granular access (distributed scan pruning) --------------

    def partitions_on_node(self, node_id: int) -> list[int]:
        return self._imap.partitions_on_node(node_id)

    def partition_entry_count(self, partition: int) -> int:
        return self._imap.partition_size(partition)

    def partition_of_key(self, key: Hashable) -> int:
        return self._imap.placement.partition_of(key)

    def rows_in_partition(self, partition: int) -> Iterator[dict]:
        for key, value in self._imap.partition_entries(partition):
            yield live_row(key, value)

    def partition_key_bounds(
        self, partition: int
    ) -> tuple[object, object] | None:
        """(min, max) key of one partition — the zone map that lets a
        range predicate skip the partition.  ``None`` when empty or the
        keys are mutually incomparable."""
        keys = [key for key, _ in self._imap.partition_entries(partition)]
        if not keys:
            return None
        try:
            return min(keys), max(keys)
        except TypeError:
            return None

    def owner_node_of(self, key: Hashable) -> int:
        """Node holding ``key`` (point-lookup routing)."""
        return self._imap.placement.owner_of(key)

    # -- secondary indexes (index-backed scans) ----------------------------
    #
    # Live indexes are maintained synchronously inside the IMap write
    # path (under the same key-level locks as the mirror writes), so a
    # probe at any instant agrees with the partition dicts at that
    # instant.  Probe results come back in partition iteration order —
    # an index-backed fetch feeds the executor the same surviving rows,
    # in the same order, as a full scan would.

    def add_index(self, definition: IndexDef) -> IndexDef:
        return self._imap.add_index(definition)

    @property
    def index_count(self) -> int:
        registry = self._imap.indexes
        return 0 if registry is None else len(registry)

    def index_defs(self) -> list[IndexDef]:
        return self._imap.index_defs()

    def index_columns(self) -> dict[str, str]:
        registry = self._imap.indexes
        return {} if registry is None else registry.column_kinds()

    def index_ready(self) -> bool:
        """Live indexes are usable as soon as they exist (no freeze)."""
        return self.index_count > 0

    def index_probe_count(self, partition: int, column: str,
                          probe) -> tuple[int, int] | None:
        registry = self._imap.indexes
        if registry is None:
            return None
        return registry.probe_count(partition, column, probe)

    def index_rows(self, partitions: list[int], column: str,
                   probe) -> list[dict]:
        """Candidate rows of an index probe over ``partitions``.

        A partition that can no longer be probed soundly (it degraded
        after the access path was chosen) falls back to all of its rows
        — a superset is safe because the pushed predicates re-filter
        every candidate."""
        registry = self._imap.indexes
        rows: list[dict] = []
        for partition in partitions:
            keys = (None if registry is None
                    else registry.probe_keys(partition, column, probe))
            if keys is None:
                rows.extend(self.rows_in_partition(partition))
                continue
            for key in keys:
                value = self._imap.partition_get(partition, key, _MISSING)
                if value is _MISSING:
                    continue
                rows.append(live_row(key, value))
        return rows

    @property
    def index_maintenance_ops(self) -> int:
        registry = self._imap.indexes
        return 0 if registry is None else registry.maintenance_ops

    def index_coherence_errors(self) -> list[str]:
        registry = self._imap.indexes
        return [] if registry is None else registry.coherence_errors()

    def point_rows(self, key: Hashable) -> list[dict]:
        """The single row for ``key``, or empty (point lookup)."""
        value = self._imap.get(key, _MISSING)
        if value is _MISSING:
            return []
        return [live_row(key, value)]

    # -- sketches (approximate query answering) ----------------------------
    #
    # Like the live indexes, sketches are maintained synchronously on
    # the IMap write path, so an estimate at any instant summarises the
    # partition dicts at that instant — exactly the read-uncommitted
    # contract live queries already have.

    def add_sketch(self, definition):
        return self._imap.add_sketch(definition)

    @property
    def sketch_count(self) -> int:
        registry = self._imap.sketches
        return 0 if registry is None else len(registry)

    def sketch_defs(self) -> list:
        return self._imap.sketch_defs()

    def sketch_ready(self) -> bool:
        """Live sketches are usable as soon as they exist (no freeze)."""
        return self.sketch_count > 0

    def has_sketch(self, column: str, kind: str) -> bool:
        registry = self._imap.sketches
        return registry is not None and registry.has(column, kind)

    def approx_estimate(self, partitions: list[int], mode: str,
                        column: str, value: object = None
                        ) -> tuple[object, float, float] | None:
        """Merged ``(estimate, bound, confidence)`` or ``None`` when no
        sound sketch answer exists (degraded or missing sketch)."""
        registry = self._imap.sketches
        if registry is None:
            return None
        return registry.estimate(partitions, mode, column, value)

    @property
    def sketch_maintenance_ops(self) -> int:
        registry = self._imap.sketches
        return 0 if registry is None else registry.maintenance_ops

    def sketch_coherence_errors(self) -> list[str]:
        registry = self._imap.sketches
        return [] if registry is None else registry.coherence_errors()

    # -- mutation (called by the S-QUERY backend) --------------------------

    def apply_update(self, key: Hashable, value: object | None) -> None:
        """Mirror one operator state mutation (None = delete)."""
        capture = self._capture
        if capture is None:
            if value is None:
                self._imap.delete(key)
            else:
                self._imap.put(key, value)
            return
        old = self._imap.get(key, _MISSING)
        old_value = None if old is _MISSING else old
        if value is None:
            self._imap.delete(key)
        else:
            self._imap.put(key, value)
        placement = self._imap.placement
        partition = placement.partition_of(key)
        capture.record_mutation(
            self.name, partition, placement.owner_of_partition(partition),
            key, old_value, value,
        )

    def replace_partition(self, partition: int,
                          state: dict[Hashable, object]) -> None:
        """Bulk-refresh one instance partition after rollback recovery.

        The live view must reflect the restored operator state, which is
        how a post-recovery live query observes the rolled-back value in
        the paper's Fig. 5c."""
        stale = [
            key for key, _ in self._imap.partition_entries(partition)
        ]
        for key in stale:
            self._imap.delete(key)
        for key, value in state.items():
            self._imap.put(key, value)
        if self._capture is not None:
            self._capture.record_rollback(
                self.name, partition,
                self._imap.placement.owner_of_partition(partition),
                state,
            )
