"""LSM-backed incremental snapshot tables (§VI-B).

The chain-based :class:`~repro.state.incremental.IncrementalSnapshotTable`
walks per-checkpoint deltas backwards, and its reconstruction cost grows
with the chain depth — which the paper identifies as what "now limits
the performance of S-QUERY", adding that an LSM backend's "level-based
compaction bounds read amplification and would reduce the search time
for historic changes per key".

This module provides exactly that alternative: each operator instance's
snapshot versions live in a :class:`~repro.lsm.LsmStore`; checkpoint
deltas become versioned puts, retention drives the garbage-collection
watermark, and background compaction keeps the number of runs a
reconstruction touches bounded regardless of how many checkpoints have
passed.  ``benchmarks/bench_ablation_lsm.py`` measures the effect.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from ..errors import SnapshotNotFoundError
from ..lsm import LsmStore
from .rows import snapshot_row


class LsmSnapshotTable:
    """Snapshot state of one operator, stored in per-instance LSM
    stores with MVCC versions keyed by snapshot id."""

    def __init__(self, name: str, parallelism: int,
                 node_of_instance: Callable[[int], int],
                 memtable_limit: int = 100_000,
                 l0_compaction_threshold: int = 4) -> None:
        self.name = name
        self.parallelism = parallelism
        self._node_of_instance = node_of_instance
        self._stores = [
            LsmStore(memtable_limit=memtable_limit,
                     l0_compaction_threshold=l0_compaction_threshold)
            for _ in range(parallelism)
        ]
        self._ssids: list[int] = []
        self._cache: dict[tuple[int, int], tuple[dict, int]] = {}
        self._cache_keep = 4

    # -- writes ------------------------------------------------------------

    def write_instance(self, ssid: int, instance: int,
                       payload: dict[Hashable, object],
                       deleted: set[Hashable] | None = None) -> None:
        store = self._stores[instance]
        for key, value in payload.items():
            store.put(key, ssid, value)
        for key in deleted or ():
            store.delete(key, ssid)
        # A checkpoint boundary flushes the memtable (RocksDB-style:
        # the checkpoint references immutable files).
        store.flush()
        if ssid not in self._ssids:
            self._ssids.append(ssid)
        stale = [
            cached for cached in self._cache
            if cached[0] == instance
            and cached[1] <= ssid - self._cache_keep
        ]
        for cached in stale:
            del self._cache[cached]

    def drop_snapshot(self, ssid: int) -> None:
        """Retention: retire ``ssid`` and advance the GC watermark so
        the next compactions reclaim versions nothing can read."""
        if ssid in self._ssids:
            self._ssids.remove(ssid)
        if self._ssids:
            watermark = min(self._ssids)
            for store in self._stores:
                store.set_watermark(watermark)

    # -- reads --------------------------------------------------------------

    def available_ssids(self) -> list[int]:
        return sorted(self._ssids)

    def has_snapshot(self, ssid: int) -> bool:
        return ssid in self._ssids

    def materialize_instance(self, ssid: int,
                             instance: int) -> tuple[dict, int]:
        if ssid not in self._ssids:
            raise SnapshotNotFoundError(ssid)
        cached = self._cache.get((instance, ssid))
        if cached is not None:
            return dict(cached[0]), cached[1]
        store = self._stores[instance]
        before = store.stats.entries_touched
        state = dict(store.scan_at(ssid))
        scanned = store.stats.entries_touched - before
        self._cache[(instance, ssid)] = (dict(state), scanned)
        return state, scanned

    def instance_state(self, ssid: int, instance: int) -> dict:
        state, _ = self.materialize_instance(ssid, instance)
        return state

    def materialize(self, ssid: int) -> tuple[dict, int]:
        merged: dict[Hashable, object] = {}
        scanned = 0
        for instance in range(self.parallelism):
            state, visited = self.materialize_instance(ssid, instance)
            merged.update(state)
            scanned += visited
        return merged, scanned

    def rows_for_snapshot(self, ssid: int) -> Iterator[dict]:
        state, _ = self.materialize(ssid)
        for key, value in state.items():
            yield snapshot_row(key, ssid, value)

    def rows_on_node(self, node_id: int, ssid: int) -> Iterator[dict]:
        for instance in range(self.parallelism):
            if self._node_of_instance(instance) != node_id:
                continue
            state, _ = self.materialize_instance(ssid, instance)
            for key, value in state.items():
                yield snapshot_row(key, ssid, value)

    def entries_on_node(self, node_id: int, ssid: int) -> int:
        """Reconstruction cost: stored versions a scan touches (bounded
        by compaction — the §VI-B read-amplification argument)."""
        if ssid not in self._ssids:
            raise SnapshotNotFoundError(ssid)
        return sum(
            self._stores[instance].scan_cost_at(ssid)
            for instance in range(self.parallelism)
            if self._node_of_instance(instance) == node_id
        )

    def row_count_on_node(self, node_id: int, ssid: int) -> int:
        rows = 0
        for instance in range(self.parallelism):
            if self._node_of_instance(instance) != node_id:
                continue
            state, _ = self.materialize_instance(ssid, instance)
            rows += len(state)
        return rows

    def owner_node_of(self, key: Hashable) -> int:
        """Node holding ``key``'s instance partition (point lookups)."""
        from ..cluster.partition import stable_hash

        return self._node_of_instance(stable_hash(key) % self.parallelism)

    def partitions_on_node(self, node_id: int) -> list[int]:
        """Instance partitions a node hosts (node-level scan pruning;
        LSM reconstruction has no per-partition row API, so partition-
        level pruning falls back to whole-node scans here)."""
        return [
            instance for instance in range(self.parallelism)
            if self._node_of_instance(instance) == node_id
        ]

    def partition_of_key(self, key: Hashable) -> int:
        from ..cluster.partition import stable_hash

        return stable_hash(key) % self.parallelism

    def point_rows(self, key: Hashable, ssid: int) -> list[dict]:
        """A true MVCC point get against the instance's LSM store."""
        if ssid not in self._ssids:
            raise SnapshotNotFoundError(ssid)
        from ..cluster.partition import stable_hash

        instance = stable_hash(key) % self.parallelism
        value = self._stores[instance].get(key, ssid=ssid)
        if value is None:
            return []
        return [snapshot_row(key, ssid, value)]

    # -- multi-version API (§VI-A) ---------------------------------------

    def rows_all_versions_on_node(self, node_id: int,
                                  ssids: list[int]) -> Iterator[dict]:
        for ssid in ssids:
            yield from self.rows_on_node(node_id, ssid)

    def entries_all_versions_on_node(self, node_id: int,
                                     ssids: list[int]) -> int:
        return sum(self.entries_on_node(node_id, ssid) for ssid in ssids)

    def rows_all_versions_count_on_node(self, node_id: int,
                                        ssids: list[int]) -> int:
        return sum(
            self.row_count_on_node(node_id, ssid) for ssid in ssids
        )

    # -- maintenance ---------------------------------------------------------

    def maybe_prune(self, committed_ssid: int) -> bool:
        """Chain-style pruning is unnecessary — compaction already
        bounds the read path; provided for protocol compatibility."""
        del committed_ssid
        return False

    def compact_all(self) -> None:
        """Force a full compaction of every instance store (tests)."""
        for store in self._stores:
            store.flush()
            store.compact()
        self._cache.clear()

    @property
    def compactions(self) -> int:
        return sum(store.stats.compactions for store in self._stores)

    def total_entries(self) -> int:
        return sum(store.total_entries() for store in self._stores)

    def store_of(self, instance: int) -> LsmStore:
        return self._stores[instance]

    # -- failure handling -----------------------------------------------------

    def on_node_failure(self, node_id: int) -> None:
        """Committed snapshot data survives via synchronous replicas."""
