"""Incremental snapshot tables with backward reconstruction and pruning.

In incremental mode each checkpoint records only the keys whose state
changed since the previous checkpoint (plus tombstones for deletions).
A query for snapshot ``s`` starts from the newest delta ``<= s`` and
walks backwards, picking up the most recent update for every key it has
not seen yet, until it either reaches a *base* snapshot (a compacted
full copy) or has covered every key known at ``s`` (§VI-A).

The number of entries visited by this walk is the real cost driver of
the paper's Fig. 13: with a small key universe every delta covers most
keys and the walk terminates after one or two deltas, while a large,
sparsely-updated key space forces the walk deep into the chain —
reproducing "identical latency at 1K/10K keys, ~5x at 100K" without any
hard-coded factor.

Pruning (``prune_chain_length``) bounds the walk: after that many deltas
the table folds the chain into a new base and drops obsolete versions,
trading background work for query latency and space.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from ..errors import SnapshotNotFoundError
from .rows import snapshot_row


class _Tombstone:
    """Marker for a deleted key inside a delta."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<deleted>"


TOMBSTONE = _Tombstone()


class _InstanceChain:
    """The delta chain of one operator instance."""

    def __init__(self) -> None:
        #: ssid -> {key: value | TOMBSTONE}, insertion-ordered by commit.
        self.deltas: dict[int, dict[Hashable, object]] = {}
        #: ssids that are compacted bases (full copies).
        self.bases: set[int] = set()
        #: key -> ssid of first appearance (drives coverage counting).
        self.first_seen: dict[Hashable, int] = {}
        #: ssid -> number of distinct keys known at that snapshot.
        self.coverage: dict[int, int] = {}


class IncrementalSnapshotTable:
    """Snapshot state of one operator, incremental mode."""

    def __init__(self, name: str, parallelism: int,
                 node_of_instance: Callable[[int], int],
                 prune_chain_length: int = 8) -> None:
        self.name = name
        self.parallelism = parallelism
        self._node_of_instance = node_of_instance
        self._prune_chain_length = prune_chain_length
        self._chains: dict[int, _InstanceChain] = {}
        self._ssids: list[int] = []
        self.compactions = 0
        # Committed snapshots are immutable, so reconstructions can be
        # memoised; bounded to the most recent ids per instance.
        self._cache: dict[tuple[int, int], tuple[dict, int]] = {}
        self._cache_keep = 4

    def _chain(self, instance: int) -> _InstanceChain:
        chain = self._chains.get(instance)
        if chain is None:
            chain = _InstanceChain()
            self._chains[instance] = chain
        return chain

    # -- writes ------------------------------------------------------------

    def write_instance(self, ssid: int, instance: int,
                       payload: dict[Hashable, object],
                       deleted: set[Hashable] | None = None) -> None:
        """Record one instance's delta for checkpoint ``ssid``."""
        chain = self._chain(instance)
        delta: dict[Hashable, object] = dict(payload)
        for key in deleted or ():
            delta[key] = TOMBSTONE
        chain.deltas[ssid] = delta
        for key in payload:
            chain.first_seen.setdefault(key, ssid)
        for key in deleted or ():
            # A deleted key no longer counts towards coverage.
            chain.first_seen.pop(key, None)
        chain.coverage[ssid] = len(chain.first_seen)
        if ssid not in self._ssids:
            self._ssids.append(ssid)
        self._trim_cache(instance, ssid)

    def _trim_cache(self, instance: int, newest_ssid: int) -> None:
        stale = [
            key for key in self._cache
            if key[0] == instance and key[1] <= newest_ssid - self._cache_keep
        ]
        for key in stale:
            del self._cache[key]

    # -- reconstruction ----------------------------------------------------

    def available_ssids(self) -> list[int]:
        return sorted(self._ssids)

    def has_snapshot(self, ssid: int) -> bool:
        return ssid in self._ssids

    def materialize_instance(self, ssid: int,
                             instance: int) -> tuple[dict, int]:
        """Reconstruct one instance's state at ``ssid``.

        Returns ``(state, entries_scanned)`` where the scan count is the
        true backward-walk cost used for query timing.
        """
        if ssid not in self._ssids:
            raise SnapshotNotFoundError(ssid)
        cached = self._cache.get((instance, ssid))
        if cached is not None:
            return dict(cached[0]), cached[1]
        chain = self._chains.get(instance)
        if chain is None:
            return {}, 0
        result: dict[Hashable, object] = {}
        dead: set[Hashable] = set()
        scanned = 0
        target = self._coverage_at(chain, ssid)
        for version in sorted(chain.deltas, reverse=True):
            if version > ssid:
                continue
            delta = chain.deltas[version]
            for key, value in delta.items():
                scanned += 1
                if key in result or key in dead:
                    continue
                if value is TOMBSTONE:
                    dead.add(key)
                else:
                    result[key] = value
            if version in chain.bases:
                break
            if len(result) >= target:
                break
        self._cache[(instance, ssid)] = (dict(result), scanned)
        return result, scanned

    @staticmethod
    def _coverage_at(chain: _InstanceChain, ssid: int) -> int:
        best = 0
        for version in sorted(chain.coverage, reverse=True):
            if version <= ssid:
                best = chain.coverage[version]
                break
        return best

    def materialize(self, ssid: int) -> tuple[dict, int]:
        """Reconstruct the complete operator state at ``ssid``."""
        merged: dict[Hashable, object] = {}
        scanned = 0
        for instance in range(self.parallelism):
            state, visited = self.materialize_instance(ssid, instance)
            merged.update(state)
            scanned += visited
        return merged, scanned

    def rows_for_snapshot(self, ssid: int) -> Iterator[dict]:
        state, _ = self.materialize(ssid)
        for key, value in state.items():
            yield snapshot_row(key, ssid, value)

    def rows_on_node(self, node_id: int, ssid: int) -> Iterator[dict]:
        for instance in range(self.parallelism):
            if self._node_of_instance(instance) != node_id:
                continue
            state, _ = self.materialize_instance(ssid, instance)
            for key, value in state.items():
                yield snapshot_row(key, ssid, value)

    def entries_on_node(self, node_id: int, ssid: int) -> int:
        """Backward-walk cost of a node-local scan at ``ssid``."""
        scanned = 0
        for instance in range(self.parallelism):
            if self._node_of_instance(instance) != node_id:
                continue
            _, visited = self.materialize_instance(ssid, instance)
            scanned += visited
        return scanned

    def row_count_on_node(self, node_id: int, ssid: int) -> int:
        """Result rows of a node-local scan (distinct live keys)."""
        rows = 0
        for instance in range(self.parallelism):
            if self._node_of_instance(instance) != node_id:
                continue
            state, _ = self.materialize_instance(ssid, instance)
            rows += len(state)
        return rows

    def instance_state(self, ssid: int, instance: int) -> dict:
        state, _ = self.materialize_instance(ssid, instance)
        return state

    def owner_node_of(self, key: Hashable) -> int:
        """Node holding ``key``'s instance partition (point lookups)."""
        from ..cluster.partition import stable_hash

        return self._node_of_instance(stable_hash(key) % self.parallelism)

    def partitions_on_node(self, node_id: int) -> list[int]:
        """Instance partitions a node hosts (node-level scan pruning;
        chain reconstruction has no per-partition row API, so partition-
        level pruning falls back to whole-node scans here)."""
        return [
            instance for instance in range(self.parallelism)
            if self._node_of_instance(instance) == node_id
        ]

    def partition_of_key(self, key: Hashable) -> int:
        from ..cluster.partition import stable_hash

        return stable_hash(key) % self.parallelism

    def point_rows(self, key: Hashable, ssid: int) -> list[dict]:
        """The single (key, ssid) row, or empty (point lookup)."""
        from ..cluster.partition import stable_hash

        instance = stable_hash(key) % self.parallelism
        state = self.instance_state(ssid, instance)
        if key not in state:
            return []
        return [snapshot_row(key, ssid, state[key])]

    def rows_all_versions_on_node(self, node_id: int,
                                  ssids: list[int]) -> Iterator[dict]:
        """Multi-version rows (§VI-A), reconstructed per version."""
        for ssid in ssids:
            yield from self.rows_on_node(node_id, ssid)

    def entries_all_versions_on_node(self, node_id: int,
                                     ssids: list[int]) -> int:
        return sum(self.entries_on_node(node_id, ssid) for ssid in ssids)

    def rows_all_versions_count_on_node(self, node_id: int,
                                        ssids: list[int]) -> int:
        return sum(
            self.row_count_on_node(node_id, ssid) for ssid in ssids
        )

    # -- pruning -----------------------------------------------------------

    def chain_length(self, instance: int) -> int:
        """Deltas since (and excluding) the newest base."""
        chain = self._chains.get(instance)
        if chain is None:
            return 0
        count = 0
        for version in sorted(chain.deltas, reverse=True):
            if version in chain.bases:
                break
            count += 1
        return count

    def maybe_prune(self, committed_ssid: int) -> bool:
        """Compact chains longer than the configured bound.

        Folds everything up to ``committed_ssid`` into a base at that id
        and drops the older deltas — "S-QUERY prunes obsolete states"
        (§VI-A).  Returns True if any chain was compacted.
        """
        pruned = False
        for instance, chain in self._chains.items():
            if self.chain_length(instance) <= self._prune_chain_length:
                continue
            state, _ = self.materialize_instance(committed_ssid, instance)
            stale = [v for v in chain.deltas if v <= committed_ssid]
            for version in stale:
                del chain.deltas[version]
                chain.bases.discard(version)
                chain.coverage.pop(version, None)
            chain.deltas[committed_ssid] = dict(state)
            chain.bases.add(committed_ssid)
            chain.coverage[committed_ssid] = len(state)
            pruned = True
            # Walk costs changed: drop this instance's memoised results.
            stale_cache = [
                key for key in self._cache if key[0] == instance
            ]
            for key in stale_cache:
                del self._cache[key]
        if pruned:
            self.compactions += 1
            live = set()
            for chain in self._chains.values():
                live.update(chain.deltas)
            self._ssids = [s for s in self._ssids if s in live]
            if committed_ssid not in self._ssids:
                self._ssids.append(committed_ssid)
        return pruned

    def drop_snapshot(self, ssid: int) -> None:
        """Retention request from the store.

        Deltas cannot be dropped eagerly — newer snapshots reconstruct
        through them — so retirement is deferred to :meth:`maybe_prune`.
        """

    def total_entries(self) -> int:
        return sum(
            len(delta)
            for chain in self._chains.values()
            for delta in chain.deltas.values()
        )

    # -- failure handling ----------------------------------------------------

    def on_node_failure(self, node_id: int) -> None:
        """Committed snapshot deltas survive via synchronous replicas."""
