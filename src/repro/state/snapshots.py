"""Full snapshot state tables (Table II).

Each stateful operator gets one snapshot table holding complete copies
of its keyed state per snapshot id.  With the paper's default retention
of two versions, memory stays constant: a newly committed snapshot
overwrites the older of the two (the store drives this through
``drop_snapshot``).  Committed snapshots are replicated synchronously
during the 2PC, so they survive node failures.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from ..errors import SnapshotNotFoundError
from .rows import snapshot_row


class FullSnapshotTable:
    """Snapshot state of one operator, full-copy mode."""

    def __init__(self, name: str, parallelism: int,
                 node_of_instance: Callable[[int], int]) -> None:
        self.name = name
        self.parallelism = parallelism
        self._node_of_instance = node_of_instance
        #: ssid -> instance -> {key: state object}
        self._by_ssid: dict[int, dict[int, dict[Hashable, object]]] = {}

    # -- writes ---------------------------------------------------------

    def write_instance(self, ssid: int, instance: int,
                       payload: dict[Hashable, object]) -> None:
        self._by_ssid.setdefault(ssid, {})[instance] = dict(payload)

    def drop_snapshot(self, ssid: int) -> None:
        self._by_ssid.pop(ssid, None)

    # -- reads ----------------------------------------------------------

    def available_ssids(self) -> list[int]:
        return sorted(self._by_ssid)

    def has_snapshot(self, ssid: int) -> bool:
        return ssid in self._by_ssid

    def instance_state(self, ssid: int, instance: int) -> dict:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return dict(snapshot.get(instance, {}))

    def rows_for_snapshot(self, ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for instance_state in snapshot.values():
            for key, value in instance_state.items():
                yield snapshot_row(key, ssid, value)

    def rows_all_versions(self) -> Iterator[dict]:
        """Rows across every retained version, each tagged with its
        ssid — the multi-version result sets of §VI-A."""
        for ssid in sorted(self._by_ssid):
            yield from self.rows_for_snapshot(ssid)

    def rows_all_versions_on_node(self, node_id: int,
                                  ssids: list[int]) -> Iterator[dict]:
        for ssid in ssids:
            yield from self.rows_on_node(node_id, ssid)

    def entries_all_versions_on_node(self, node_id: int,
                                     ssids: list[int]) -> int:
        return sum(self.entries_on_node(node_id, ssid) for ssid in ssids)

    def rows_all_versions_count_on_node(self, node_id: int,
                                        ssids: list[int]) -> int:
        return sum(
            self.row_count_on_node(node_id, ssid) for ssid in ssids
        )

    def rows_on_node(self, node_id: int, ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for instance, instance_state in snapshot.items():
            if self._node_of_instance(instance) != node_id:
                continue
            for key, value in instance_state.items():
                yield snapshot_row(key, ssid, value)

    def entries_on_node(self, node_id: int, ssid: int) -> int:
        """Raw entries a node-local scan of ``ssid`` must visit."""
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return sum(
            len(instance_state)
            for instance, instance_state in snapshot.items()
            if self._node_of_instance(instance) == node_id
        )

    def row_count_on_node(self, node_id: int, ssid: int) -> int:
        """Result rows a node-local scan produces (== entries for full
        snapshots; incremental tables visit more entries than rows)."""
        return self.entries_on_node(node_id, ssid)

    def owner_node_of(self, key: Hashable) -> int:
        """Node holding ``key``'s instance partition (point lookups)."""
        from ..cluster.partition import stable_hash

        return self._node_of_instance(stable_hash(key) % self.parallelism)

    # -- partition-granular access (distributed scan pruning) --------------
    #
    # Snapshot partitions coincide with operator instances; because a
    # committed snapshot is immutable, partition selections and zone
    # maps computed at scan start stay valid for the whole scan.

    def partitions_on_node(self, node_id: int) -> list[int]:
        return [
            instance for instance in range(self.parallelism)
            if self._node_of_instance(instance) == node_id
        ]

    def partition_of_key(self, key: Hashable) -> int:
        from ..cluster.partition import stable_hash

        return stable_hash(key) % self.parallelism

    def partition_entry_count(self, partition: int, ssid: int) -> int:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return len(snapshot.get(partition, {}))

    def rows_in_partition(self, partition: int,
                          ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for key, value in snapshot.get(partition, {}).items():
            yield snapshot_row(key, ssid, value)

    def partition_key_bounds(
        self, partition: int, ssid: int
    ) -> tuple[object, object] | None:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        keys = list(snapshot.get(partition, {}))
        if not keys:
            return None
        try:
            return min(keys), max(keys)
        except TypeError:
            return None

    def point_rows(self, key: Hashable, ssid: int) -> list[dict]:
        """The single (key, ssid) row, or empty (point lookup)."""
        from ..cluster.partition import stable_hash

        instance = stable_hash(key) % self.parallelism
        state = self.instance_state(ssid, instance)
        if key not in state:
            return []
        return [snapshot_row(key, ssid, state[key])]

    def snapshot_size(self, ssid: int) -> int:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return sum(len(state) for state in snapshot.values())

    def total_entries(self) -> int:
        """All stored entries across versions (memory accounting)."""
        return sum(
            len(state)
            for snapshot in self._by_ssid.values()
            for state in snapshot.values()
        )

    # -- failure handling ------------------------------------------------

    def on_node_failure(self, node_id: int) -> None:
        """Committed snapshots survive via synchronous replicas."""
