"""Full snapshot state tables (Table II).

Each stateful operator gets one snapshot table holding complete copies
of its keyed state per snapshot id.  With the paper's default retention
of two versions, memory stays constant: a newly committed snapshot
overwrites the older of the two (the store drives this through
``drop_snapshot``).  Committed snapshots are replicated synchronously
during the 2PC, so they survive node failures.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from ..approx.registry import SketchDef, SketchRegistry
from ..errors import SnapshotNotFoundError
from ..kvstore.indexes import IndexDef, IndexRegistry
from .rows import snapshot_row


class FullSnapshotTable:
    """Snapshot state of one operator, full-copy mode."""

    def __init__(self, name: str, parallelism: int,
                 node_of_instance: Callable[[int], int]) -> None:
        self.name = name
        self.parallelism = parallelism
        self._node_of_instance = node_of_instance
        #: ssid -> instance -> {key: state object}
        self._by_ssid: dict[int, dict[int, dict[Hashable, object]]] = {}
        #: Secondary index definitions, shared by every version; each
        #: retained ssid carries its own copy-on-write registry, frozen
        #: when the version commits.
        self._index_defs: dict[str, IndexDef] = {}
        self._indexes: dict[int, IndexRegistry] = {}
        #: Maintenance ops of registries retired with their snapshots
        #: (keeps the observability rollup monotonic).
        self._dropped_index_ops = 0
        self._index_hook: Callable[[str], None] | None = None
        #: Sketch definitions and per-version registries, same
        #: copy-on-write/freeze lifecycle as the indexes.
        self._sketch_defs: dict[tuple[str, str], SketchDef] = {}
        self._sketches: dict[int, SketchRegistry] = {}
        self._dropped_sketch_ops = 0
        self._sketch_hook: Callable[[str], None] | None = None

    # -- writes ---------------------------------------------------------

    def write_instance(self, ssid: int, instance: int,
                       payload: dict[Hashable, object]) -> None:
        self._by_ssid.setdefault(ssid, {})[instance] = dict(payload)
        if self._index_defs:
            self._registry_for(ssid).rebuild_partition(instance)
        if self._sketch_defs:
            self._sketch_registry_for(ssid).rebuild_partition(instance)

    def drop_snapshot(self, ssid: int) -> None:
        self._by_ssid.pop(ssid, None)
        registry = self._indexes.pop(ssid, None)
        if registry is not None:
            self._dropped_index_ops += registry.maintenance_ops
        sketch_registry = self._sketches.pop(ssid, None)
        if sketch_registry is not None:
            self._dropped_sketch_ops += sketch_registry.maintenance_ops

    # -- secondary indexes -----------------------------------------------

    def _registry_for(self, ssid: int) -> IndexRegistry:
        registry = self._indexes.get(ssid)
        if registry is None:
            registry = IndexRegistry(
                self.parallelism,
                lambda partition: self._by_ssid.get(ssid, {})
                .get(partition, {}).items(),
            )
            registry.on_frozen_mutation = self._index_hook
            for definition in self._index_defs.values():
                registry.add_definition(definition)
            self._indexes[ssid] = registry
        return registry

    def add_index(self, definition: IndexDef) -> IndexDef:
        definition.validate()
        existing = self._index_defs.get(definition.column)
        if existing is not None:
            if existing.kind != definition.kind:
                from ..errors import StoreError

                raise StoreError(
                    f"column {definition.column!r} already has a "
                    f"{existing.kind} index"
                )
            return existing
        self._index_defs[definition.column] = definition
        # Retained versions (committed ones are re-frozen by the store's
        # DDL entry point) get the new index backfilled.
        for ssid in sorted(self._by_ssid):
            self._registry_for(ssid).add_definition(definition)
        return definition

    def freeze_index(self, ssid: int) -> None:
        """Commit time: the version's registry becomes immutable."""
        if not self._index_defs:
            return
        self._registry_for(ssid).freeze()

    def index_ready(self, ssid: int) -> bool:
        """Probes only serve committed (frozen) versions."""
        if not self._index_defs:
            return False
        registry = self._indexes.get(ssid)
        return registry is not None and registry.frozen

    @property
    def index_count(self) -> int:
        return len(self._index_defs)

    def index_defs(self) -> list[IndexDef]:
        return [
            self._index_defs[column]
            for column in sorted(self._index_defs)
        ]

    def index_columns(self) -> dict[str, str]:
        return {
            column: self._index_defs[column].kind
            for column in sorted(self._index_defs)
        }

    def index_probe_count(self, partition: int, column: str, probe,
                          ssid: int) -> tuple[int, int] | None:
        registry = self._indexes.get(ssid)
        if registry is None:
            return None
        return registry.probe_count(partition, column, probe)

    def index_rows(self, partitions: list[int], column: str, probe,
                   ssid: int) -> list[dict]:
        """Candidate rows of an index probe (same order as a scan)."""
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        registry = self._indexes.get(ssid)
        rows: list[dict] = []
        for partition in partitions:
            keys = (None if registry is None
                    else registry.probe_keys(partition, column, probe))
            state = snapshot.get(partition, {})
            if keys is None:
                for key, value in state.items():
                    rows.append(snapshot_row(key, ssid, value))
                continue
            for key in keys:
                rows.append(snapshot_row(key, ssid, state[key]))
        return rows

    @property
    def index_maintenance_ops(self) -> int:
        return self._dropped_index_ops + sum(
            registry.maintenance_ops
            for registry in self._indexes.values()
        )

    def set_index_mutation_hook(
        self, hook: Callable[[str], None] | None
    ) -> None:
        """Observe frozen-registry mutation attempts (sanitizers)."""
        self._index_hook = hook
        for registry in self._indexes.values():
            registry.on_frozen_mutation = hook

    def index_coherence_errors(self, ssid: int) -> list[str]:
        registry = self._indexes.get(ssid)
        return [] if registry is None else registry.coherence_errors()

    # -- sketches --------------------------------------------------------

    def _sketch_registry_for(self, ssid: int) -> SketchRegistry:
        registry = self._sketches.get(ssid)
        if registry is None:
            registry = SketchRegistry(
                self.parallelism,
                lambda partition: self._by_ssid.get(ssid, {})
                .get(partition, {}).items(),
            )
            registry.on_frozen_mutation = self._sketch_hook
            for definition in self._sketch_defs.values():
                registry.add_definition(definition)
            self._sketches[ssid] = registry
        return registry

    def add_sketch(self, definition: SketchDef) -> SketchDef:
        definition.validate()
        key = (definition.column, definition.kind)
        existing = self._sketch_defs.get(key)
        if existing is not None:
            if existing != definition:
                from ..errors import StoreError

                raise StoreError(
                    f"sketch {definition.name} already exists with "
                    "different parameters"
                )
            return existing
        self._sketch_defs[key] = definition
        # Retained versions (committed ones are re-frozen by the
        # store's DDL entry point) get the new sketch backfilled.
        for ssid in sorted(self._by_ssid):
            self._sketch_registry_for(ssid).add_definition(definition)
        return definition

    def freeze_sketch(self, ssid: int) -> None:
        """Commit time: the version's sketches become immutable."""
        if not self._sketch_defs:
            return
        self._sketch_registry_for(ssid).freeze()

    def sketch_ready(self, ssid: int) -> bool:
        """Estimates only serve committed (frozen) versions."""
        if not self._sketch_defs:
            return False
        registry = self._sketches.get(ssid)
        return registry is not None and registry.frozen

    @property
    def sketch_count(self) -> int:
        return len(self._sketch_defs)

    def sketch_defs(self) -> list[SketchDef]:
        return [self._sketch_defs[key] for key in sorted(self._sketch_defs)]

    def has_sketch(self, column: str, kind: str) -> bool:
        return (column, kind) in self._sketch_defs

    def approx_estimate(self, partitions: list[int], mode: str,
                        column: str, value: object, ssid: int
                        ) -> tuple[object, float, float] | None:
        registry = self._sketches.get(ssid)
        if registry is None:
            return None
        return registry.estimate(partitions, mode, column, value)

    @property
    def sketch_maintenance_ops(self) -> int:
        return self._dropped_sketch_ops + sum(
            registry.maintenance_ops
            for registry in self._sketches.values()
        )

    def set_sketch_mutation_hook(
        self, hook: Callable[[str], None] | None
    ) -> None:
        """Observe frozen-registry mutation attempts (sanitizers)."""
        self._sketch_hook = hook
        for registry in self._sketches.values():
            registry.on_frozen_mutation = hook

    def sketch_coherence_errors(self, ssid: int) -> list[str]:
        registry = self._sketches.get(ssid)
        return [] if registry is None else registry.coherence_errors()

    # -- reads ----------------------------------------------------------

    def available_ssids(self) -> list[int]:
        return sorted(self._by_ssid)

    def has_snapshot(self, ssid: int) -> bool:
        return ssid in self._by_ssid

    def instance_state(self, ssid: int, instance: int) -> dict:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return dict(snapshot.get(instance, {}))

    def rows_for_snapshot(self, ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for instance_state in snapshot.values():
            for key, value in instance_state.items():
                yield snapshot_row(key, ssid, value)

    def rows_all_versions(self) -> Iterator[dict]:
        """Rows across every retained version, each tagged with its
        ssid — the multi-version result sets of §VI-A."""
        for ssid in sorted(self._by_ssid):
            yield from self.rows_for_snapshot(ssid)

    def rows_all_versions_on_node(self, node_id: int,
                                  ssids: list[int]) -> Iterator[dict]:
        for ssid in ssids:
            yield from self.rows_on_node(node_id, ssid)

    def entries_all_versions_on_node(self, node_id: int,
                                     ssids: list[int]) -> int:
        return sum(self.entries_on_node(node_id, ssid) for ssid in ssids)

    def rows_all_versions_count_on_node(self, node_id: int,
                                        ssids: list[int]) -> int:
        return sum(
            self.row_count_on_node(node_id, ssid) for ssid in ssids
        )

    def rows_on_node(self, node_id: int, ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for instance, instance_state in snapshot.items():
            if self._node_of_instance(instance) != node_id:
                continue
            for key, value in instance_state.items():
                yield snapshot_row(key, ssid, value)

    def entries_on_node(self, node_id: int, ssid: int) -> int:
        """Raw entries a node-local scan of ``ssid`` must visit."""
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return sum(
            len(instance_state)
            for instance, instance_state in snapshot.items()
            if self._node_of_instance(instance) == node_id
        )

    def row_count_on_node(self, node_id: int, ssid: int) -> int:
        """Result rows a node-local scan produces (== entries for full
        snapshots; incremental tables visit more entries than rows)."""
        return self.entries_on_node(node_id, ssid)

    def owner_node_of(self, key: Hashable) -> int:
        """Node holding ``key``'s instance partition (point lookups)."""
        from ..cluster.partition import stable_hash

        return self._node_of_instance(stable_hash(key) % self.parallelism)

    # -- partition-granular access (distributed scan pruning) --------------
    #
    # Snapshot partitions coincide with operator instances; because a
    # committed snapshot is immutable, partition selections and zone
    # maps computed at scan start stay valid for the whole scan.

    def partitions_on_node(self, node_id: int) -> list[int]:
        return [
            instance for instance in range(self.parallelism)
            if self._node_of_instance(instance) == node_id
        ]

    def partition_of_key(self, key: Hashable) -> int:
        from ..cluster.partition import stable_hash

        return stable_hash(key) % self.parallelism

    def partition_entry_count(self, partition: int, ssid: int) -> int:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return len(snapshot.get(partition, {}))

    def rows_in_partition(self, partition: int,
                          ssid: int) -> Iterator[dict]:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        for key, value in snapshot.get(partition, {}).items():
            yield snapshot_row(key, ssid, value)

    def partition_key_bounds(
        self, partition: int, ssid: int
    ) -> tuple[object, object] | None:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        keys = list(snapshot.get(partition, {}))
        if not keys:
            return None
        try:
            return min(keys), max(keys)
        except TypeError:
            return None

    def point_rows(self, key: Hashable, ssid: int) -> list[dict]:
        """The single (key, ssid) row, or empty (point lookup)."""
        from ..cluster.partition import stable_hash

        instance = stable_hash(key) % self.parallelism
        state = self.instance_state(ssid, instance)
        if key not in state:
            return []
        return [snapshot_row(key, ssid, state[key])]

    def snapshot_size(self, ssid: int) -> int:
        snapshot = self._by_ssid.get(ssid)
        if snapshot is None:
            raise SnapshotNotFoundError(ssid)
        return sum(len(state) for state in snapshot.values())

    def total_entries(self) -> int:
        """All stored entries across versions (memory accounting)."""
        return sum(
            len(state)
            for snapshot in self._by_ssid.values()
            for state in snapshot.values()
        )

    # -- failure handling ------------------------------------------------

    def on_node_failure(self, node_id: int) -> None:
        """Committed snapshots survive via synchronous replicas."""
