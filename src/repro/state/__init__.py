"""S-QUERY state management — the paper's core contribution.

Exposes operator state through the KV store in two queryable forms:

* **live state** (Table I): one row per key, mirrored on every state
  update (:mod:`~repro.state.live`);
* **snapshot state** (Table II): one row per (key, snapshot id),
  written at each checkpoint (:mod:`~repro.state.snapshots`), either as
  full copies or as incremental deltas with backward reconstruction and
  pruning (:mod:`~repro.state.incremental`).

:class:`~repro.state.manager.SQueryBackend` plugs these into the
dataflow engine's state-backend interface, and
:mod:`~repro.state.isolation` documents and enforces the isolation
levels of §VII.
"""

from .incremental import IncrementalSnapshotTable
from .isolation import IsolationLevel, isolation_of_query
from .live import LiveStateTable
from .lsm_backend import LsmSnapshotTable
from .manager import SQueryBackend
from .rows import live_row, snapshot_row, value_to_columns
from .savepoints import bootstrap_job, export_snapshot
from .snapshots import FullSnapshotTable

__all__ = [
    "FullSnapshotTable",
    "IncrementalSnapshotTable",
    "IsolationLevel",
    "LiveStateTable",
    "LsmSnapshotTable",
    "SQueryBackend",
    "bootstrap_job",
    "export_snapshot",
    "isolation_of_query",
    "live_row",
    "snapshot_row",
    "value_to_columns",
]
