"""Seeded 64-bit hashing shared by the probabilistic sketches.

Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so
sketch contents built on it would differ between runs and break the
simulator's bit-determinism guarantee.  Everything here is pure integer
arithmetic over a canonical byte encoding of the value, seeded by an
explicit constant, so the same value always lands in the same counters
on every run and every platform.

The family is an FNV-1a core whose 64-bit state is passed through the
splitmix64 finisher once per row — one byte-walk per value regardless
of sketch depth.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: Fixed default seed for declared sketches.  Determinism requires a
#: constant; the exact value is arbitrary (digits of pi).
DEFAULT_SEED = 0x3141592653589793

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Types a sketch can canonically encode.  Anything else (nested
#: containers, arbitrary objects whose ``repr`` may embed addresses)
#: marks the partition as unsupported instead of being hashed.
SKETCHABLE_TYPES = (bool, int, float, str)


def is_sketchable(value: object) -> bool:
    return isinstance(value, SKETCHABLE_TYPES)


def canonical_bytes(value: object) -> bytes:
    """Type-tagged canonical encoding (``1`` and ``1.0`` and ``True``
    hash differently even though they compare equal)."""
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + repr(value).encode("ascii")
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    return b"O" + repr(value).encode("utf-8", "backslashreplace")


def _mix64(x: int) -> int:
    """splitmix64 finisher: avalanche a 64-bit state."""
    x &= MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return (x ^ (x >> 31)) & MASK64


def hash64(value: object, seed: int = DEFAULT_SEED) -> int:
    """Seeded 64-bit hash of one sketchable value."""
    h = _FNV_OFFSET
    for byte in canonical_bytes(value):
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return _mix64(h ^ seed)


class HashFamily:
    """``depth`` pairwise-independent-ish 64-bit hash functions.

    One FNV pass per value; each row then applies its own pre-mixed
    seed through the splitmix64 finisher, so count-min depth costs
    almost nothing extra on the write path.
    """

    __slots__ = ("depth", "seed", "_row_seeds")

    def __init__(self, depth: int, seed: int = DEFAULT_SEED) -> None:
        self.depth = depth
        self.seed = seed
        self._row_seeds = tuple(
            _mix64(seed + row + 1) for row in range(depth)
        )

    def hashes(self, value: object) -> tuple[int, ...]:
        h = _FNV_OFFSET
        for byte in canonical_bytes(value):
            h = ((h ^ byte) * _FNV_PRIME) & MASK64
        return tuple(_mix64(h ^ row_seed) for row_seed in self._row_seeds)
