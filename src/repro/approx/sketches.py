"""The three sketch structures, one instance per (definition, partition).

All of them support the live write path's mutation mix — inserts,
overwrites, and deletes — which rules out the textbook insert-only
variants:

* :class:`CountMinSketch` counters simply decrement on removal (the
  conservative-update trick is insert-only, so we don't use it);
* :class:`HyperLogLog` keeps an exact value→multiplicity map beside the
  registers; register maxima are insert-safe, and a removal that drops
  a value's multiplicity to zero marks the registers dirty for a lazy
  order-independent rebuild from the surviving values;
* :class:`ReservoirSample` runs Algorithm R with a seeded RNG and
  rebuilds from the backing partition when any value is removed.

Estimates and error bounds are produced by the registry after merging
across partitions (see :mod:`repro.approx.registry`).
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from .hashing import HashFamily, hash64

#: Two-sided normal critical values for the supported confidence
#: levels (CLT intervals for reservoir estimates, HLL std-error).
Z_VALUES = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}


class CountMinSketch:
    """Frequency sketch: ``estimate(v)`` overcounts by at most
    ``(e / width) * total`` with probability ``1 - e**-depth``."""

    __slots__ = ("width", "depth", "rows", "total", "_family")

    def __init__(self, width: int, depth: int,
                 family: HashFamily) -> None:
        self.width = width
        self.depth = depth
        self.rows = [[0] * width for _ in range(depth)]
        self.total = 0
        self._family = family

    def insert(self, value: object) -> None:
        width = self.width
        for row, h in zip(self.rows, self._family.hashes(value)):
            row[h % width] += 1
        self.total += 1

    def remove(self, value: object) -> None:
        width = self.width
        for row, h in zip(self.rows, self._family.hashes(value)):
            row[h % width] -= 1
        self.total -= 1

    def estimate(self, value: object) -> int:
        if self.total <= 0:
            return 0
        width = self.width
        return min(
            row[h % width]
            for row, h in zip(self.rows, self._family.hashes(value))
        )

    def error_bound(self) -> float:
        """Additive overcount bound for this partition's slice."""
        return (math.e / self.width) * max(self.total, 0)

    @property
    def confidence(self) -> float:
        return 1.0 - math.exp(-self.depth)


class HyperLogLog:
    """Distinct-count sketch with deletion support.

    The exact ``value -> multiplicity`` map is what makes removal
    possible; the registers are the thing actually estimated from, and
    they are rebuilt lazily (rebuilds iterate the map's *keys* through
    a max, so insertion order cannot leak into the registers).
    """

    __slots__ = ("m", "registers", "_index_bits", "_seed", "_counts",
                 "dirty")

    def __init__(self, registers: int, seed: int) -> None:
        self.m = registers
        self._index_bits = registers.bit_length() - 1
        self._seed = seed
        self.registers = [0] * registers
        self._counts: dict[object, int] = {}
        self.dirty = False

    def insert(self, value: object) -> None:
        seen = self._counts.get(value, 0)
        self._counts[value] = seen + 1
        if seen == 0 and not self.dirty:
            self._observe(value)

    def remove(self, value: object) -> None:
        seen = self._counts.get(value, 0)
        if seen <= 1:
            self._counts.pop(value, None)
            # A register may now overstate the max rank; rebuild lazily.
            self.dirty = True
        else:
            self._counts[value] = seen - 1

    def _observe(self, value: object) -> None:
        h = hash64(value, self._seed)
        bucket = h & (self.m - 1)
        rest = h >> self._index_bits
        rank = (64 - self._index_bits) - rest.bit_length() + 1
        if rank > self.registers[bucket]:
            self.registers[bucket] = rank

    def refresh(self) -> None:
        if not self.dirty:
            return
        self.registers = [0] * self.m
        for value in self._counts:
            self._observe(value)
        self.dirty = False

    @property
    def distinct_tracked(self) -> int:
        return len(self._counts)

    def counts(self) -> dict[object, int]:
        return dict(self._counts)


def hll_estimate(registers: list[int]) -> float:
    """Flajolet et al. estimator with the small-range linear-counting
    correction, over (possibly merged) registers."""
    m = len(registers)
    if m == 0:
        return 0.0
    raw = _hll_alpha(m) * m * m / math.fsum(
        2.0 ** -r for r in registers
    )
    zeros = registers.count(0)
    if raw <= 2.5 * m and zeros:
        return m * math.log(m / zeros)
    return raw


def _hll_alpha(m: int) -> float:
    if m >= 128:
        return 0.7213 / (1 + 1.079 / m)
    if m == 64:
        return 0.709
    if m == 32:
        return 0.697
    return 0.673


def hll_relative_error(m: int) -> float:
    """One standard error of the HLL estimator."""
    return 1.04 / math.sqrt(m)


class ReservoirSample:
    """Uniform sample of one partition's numeric column (Algorithm R).

    ``n`` tracks the live population size exactly (it drives the
    stratified merge weights).  Removal invalidates uniformity, so it
    just flips ``dirty``; the registry rebuilds from the backing
    partition with a freshly re-seeded RNG before the next read, which
    keeps the sample a pure deterministic function of (seed, partition
    contents in iteration order).
    """

    __slots__ = ("capacity", "sample", "n", "dirty", "_seed", "_rng",
                 "_stream")

    def __init__(self, capacity: int, seed: int) -> None:
        self.capacity = capacity
        self._seed = seed
        self._rng = random.Random(seed)
        self.sample: list[float] = []
        self._stream = 0
        self.n = 0
        self.dirty = False

    def insert(self, value: float) -> None:
        self.n += 1
        if self.dirty:
            return  # stale anyway; the next read rebuilds
        self._offer(value)

    def remove(self, _value: float) -> None:
        self.n -= 1
        self.dirty = True

    def _offer(self, value: float) -> None:
        self._stream += 1
        if len(self.sample) < self.capacity:
            self.sample.append(value)
            return
        slot = self._rng.randrange(self._stream)
        if slot < self.capacity:
            self.sample[slot] = value

    def rebuild(self, values: Iterable[float]) -> None:
        self._rng = random.Random(self._seed)
        self.sample = []
        self._stream = 0
        count = 0
        for value in values:
            count += 1
            self._offer(value)
        self.n = count
        self.dirty = False

    def stats(self) -> tuple[int, float, float]:
        """(sample size, sample mean, sample variance)."""
        k = len(self.sample)
        if k == 0:
            return 0, 0.0, 0.0
        mean = math.fsum(self.sample) / k
        if k < 2:
            return k, mean, 0.0
        var = math.fsum((v - mean) ** 2 for v in self.sample) / (k - 1)
        return k, mean, var
