"""Deciding whether an ``APPROX`` statement is sketch-answerable.

The sketch fast path only fires for aggregate shapes whose exact
semantics a sketch can bound:

* ``COUNT(*) WHERE col = literal``  -> count-min frequency estimate;
* ``COUNT(DISTINCT col)``           -> HyperLogLog cardinality;
* ``SUM(col)`` / ``AVG(col)``       -> stratified reservoir estimate.

Snapshot statements may additionally carry ``ssid = <n>`` equality
conjuncts (the idiomatic way to pin a version); they are recognised
here and validated against the resolved snapshot id by the query
service.  Any other shape — joins, GROUP BY, extra predicates,
expressions inside the aggregate — makes :func:`analyze_approx_select`
return ``None`` and the statement runs on the exact path, which then
reports ``error_bound = 0.0`` at ``confidence = 1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.ast import Binary, Column, FuncCall, Literal, Select, Star
from .registry import MODE_KIND


@dataclass(frozen=True)
class ApproxAggregate:
    """One sketch-answerable aggregate extracted from a SELECT."""

    mode: str            # count_eq | distinct | sum | avg
    column: str          # the sketched column
    value: object = None # equality literal (count_eq only)
    ssid_eq: int | None = None  # ssid pin from the WHERE clause

    @property
    def kind(self) -> str:
        return MODE_KIND[self.mode]

    def describe(self) -> str:
        if self.mode == "count_eq":
            return f"countmin({self.column!r} = {self.value!r})"
        return f"{self.kind}({self.column!r})"


class _Unsupported(Exception):
    """WHERE clause shape the sketches cannot answer."""


def analyze_approx_select(select: Select) -> ApproxAggregate | None:
    if not isinstance(select, Select) or not select.approx:
        return None
    if select.joins or select.select_star or select.distinct:
        return None
    if select.group_by or select.having is not None or select.order_by:
        return None
    if select.limit is not None or select.offset is not None:
        return None
    if len(select.items) != 1:
        return None
    call = select.items[0].expr
    if not isinstance(call, FuncCall):
        return None
    binding = select.table.binding
    try:
        eq, ssid_eq = _classify_where(select.where, binding)
    except _Unsupported:
        return None
    if call.name == "COUNT" and call.distinct:
        column = _plain_column(call, binding)
        if column is None or eq is not None:
            return None
        return ApproxAggregate("distinct", column, ssid_eq=ssid_eq)
    if call.name == "COUNT":
        if len(call.args) != 1 or not isinstance(call.args[0], Star):
            return None
        if eq is None:
            return None
        column, value = eq
        return ApproxAggregate("count_eq", column, value=value,
                               ssid_eq=ssid_eq)
    if call.name in ("SUM", "AVG") and not call.distinct:
        column = _plain_column(call, binding)
        if column is None or eq is not None:
            return None
        mode = "sum" if call.name == "SUM" else "avg"
        return ApproxAggregate(mode, column, ssid_eq=ssid_eq)
    return None


def _plain_column(call: FuncCall, binding: str) -> str | None:
    """The aggregate's argument, iff it is one unqualified (or
    correctly qualified) column reference."""
    if len(call.args) != 1:
        return None
    arg = call.args[0]
    if not isinstance(arg, Column):
        return None
    if arg.table is not None and arg.table != binding:
        return None
    return arg.name


def _classify_where(where, binding):
    """Split WHERE into at most one value-equality plus ssid pins."""
    if where is None:
        return None, None
    eq: tuple[str, object] | None = None
    ssid_eq: int | None = None
    for conjunct in _conjuncts(where):
        matched = _match_eq(conjunct, binding)
        if matched is None:
            raise _Unsupported
        column, value = matched
        if column == "ssid":
            if not isinstance(value, int) or isinstance(value, bool):
                raise _Unsupported
            if ssid_eq is not None and ssid_eq != value:
                raise _Unsupported
            ssid_eq = value
        else:
            if eq is not None or value is None:
                # Two value predicates, or ``col = NULL`` (never
                # true): leave both to the exact path.
                raise _Unsupported
            eq = (column, value)
    return eq, ssid_eq


def _conjuncts(expr):
    if isinstance(expr, Binary) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _match_eq(expr, binding) -> tuple[str, object] | None:
    if not isinstance(expr, Binary) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Literal) and isinstance(right, Column):
        left, right = right, left
    if not isinstance(left, Column) or not isinstance(right, Literal):
        return None
    if left.table is not None and left.table != binding:
        return None
    return left.name, right.value
