"""Sketch registries: write-path maintenance and merged estimation.

A :class:`SketchRegistry` is the sketch analogue of
:class:`repro.kvstore.indexes.IndexRegistry`: it hangs off one backing
table (an IMap's partition dicts, or one retained snapshot version),
keeps one sketch instance per (definition, partition), and is updated
synchronously from the same mutation hooks as the secondary indexes —
so a live sketch agrees with the partition dicts at every instant, and
a snapshot version's registry can be frozen at commit.

Soundness gating: a sketch only summarises values it could canonically
encode.  Rows whose state object lacks the column entirely, or whose
value isn't sketchable (or isn't numeric, for reservoirs), bump a
per-partition degradation counter; any touched partition with a
non-zero counter makes :meth:`SketchRegistry.estimate` refuse to
answer (``None``), and the query falls back to the exact path.  NULLs
are excluded from the sketches without vetoing, matching SQL aggregate
semantics (``COUNT(DISTINCT c)``, ``SUM``/``AVG`` all ignore NULLs,
and ``c = v`` is never satisfied by NULL).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import StoreError
from ..kvstore.indexes import (
    MISSING,
    RESERVED_COLUMNS,
    extract_index_value,
)
from .hashing import DEFAULT_SEED, HashFamily, is_sketchable
from .sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    Z_VALUES,
    hll_estimate,
    hll_relative_error,
)

SKETCH_KINDS = ("countmin", "hll", "reservoir")

#: Estimation mode -> sketch kind that answers it.
MODE_KIND = {
    "count_eq": "countmin",
    "distinct": "hll",
    "sum": "reservoir",
    "avg": "reservoir",
}


@dataclass(frozen=True)
class SketchDef:
    """One declared sketch: a column, a kind, and its parameters."""

    column: str
    kind: str
    width: int = 512          # count-min counters per row
    depth: int = 4            # count-min rows / hash functions
    registers: int = 256      # HLL registers (power of two)
    capacity: int = 512       # reservoir slots per partition
    confidence: float = 0.95  # reported confidence for CLT bounds
    seed: int = DEFAULT_SEED

    @property
    def name(self) -> str:
        return f"{self.kind}({self.column})"

    def z_value(self) -> float:
        return Z_VALUES[self.confidence]

    def validate(self) -> None:
        if not self.column:
            raise StoreError("sketch column must be non-empty")
        if self.column in RESERVED_COLUMNS:
            raise StoreError(
                f"cannot sketch row-identity column {self.column!r} "
                "(key lookups and partition pruning already cover it)"
            )
        if self.kind not in SKETCH_KINDS:
            raise StoreError(
                f"unknown sketch kind {self.kind!r}; "
                f"expected one of {SKETCH_KINDS}"
            )
        if self.width < 8 or self.depth < 1:
            raise StoreError("count-min needs width >= 8 and depth >= 1")
        if self.registers < 16 or \
                self.registers & (self.registers - 1):
            raise StoreError(
                "HLL registers must be a power of two >= 16"
            )
        if self.capacity < 2:
            raise StoreError("reservoir capacity must be >= 2")
        if self.confidence not in Z_VALUES:
            raise StoreError(
                f"unsupported confidence {self.confidence!r}; "
                f"expected one of {sorted(Z_VALUES)}"
            )


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and \
        not isinstance(value, bool)


class _PartitionSketch:
    """One sketch plus its soundness counters for one partition."""

    __slots__ = ("sketch", "absent", "nulls", "unsupported")

    def __init__(self, sketch) -> None:
        self.sketch = sketch
        self.absent = 0       # rows lacking the column entirely
        self.nulls = 0        # NULLs (excluded, not vetoing)
        self.unsupported = 0  # values the sketch cannot encode

    @property
    def answerable(self) -> bool:
        return self.absent == 0 and self.unsupported == 0


class SketchRegistry:
    """All sketches of one backing table (live map or one snapshot)."""

    def __init__(self, partition_count: int,
                 entries_of_partition: Callable[[int], Iterable]) -> None:
        self.partition_count = partition_count
        self._entries_of = entries_of_partition
        self._defs: dict[tuple[str, str], SketchDef] = {}
        self._families: dict[tuple[str, str], HashFamily] = {}
        self._partitions: dict[tuple[str, str],
                               list[_PartitionSketch]] = {}
        self.frozen = False
        self.maintenance_ops = 0
        #: Observer for mutation attempts on a frozen registry
        #: (sanitizers); always followed by a StoreError.
        self.on_frozen_mutation: Callable[[str], None] | None = None

    def __len__(self) -> int:
        return len(self._defs)

    def defs(self) -> list[SketchDef]:
        return [self._defs[key] for key in sorted(self._defs)]

    def has(self, column: str, kind: str) -> bool:
        return (column, kind) in self._defs

    # -- DDL ---------------------------------------------------------------

    def add_definition(self, definition: SketchDef) -> SketchDef:
        definition.validate()
        key = (definition.column, definition.kind)
        existing = self._defs.get(key)
        if existing is not None:
            if existing != definition:
                raise StoreError(
                    f"sketch {definition.name} already exists "
                    "with different parameters"
                )
            return existing
        self._ensure_mutable(f"create sketch {definition.name}")
        family = HashFamily(definition.depth, definition.seed)
        states = [
            _PartitionSketch(self._new_sketch(definition, family))
            for _ in range(self.partition_count)
        ]
        for partition in range(self.partition_count):
            state = states[partition]
            for _key, value in self._entries_of(partition):
                self._apply(state, definition, value, insert=True)
                self.maintenance_ops += 1
        self._defs[key] = definition
        self._families[key] = family
        self._partitions[key] = states
        return definition

    def _new_sketch(self, definition: SketchDef, family: HashFamily):
        if definition.kind == "countmin":
            return CountMinSketch(definition.width, definition.depth,
                                  family)
        if definition.kind == "hll":
            return HyperLogLog(definition.registers, definition.seed)
        return ReservoirSample(definition.capacity, definition.seed)

    # -- write-path maintenance --------------------------------------------

    def _ensure_mutable(self, operation: str) -> None:
        if not self.frozen:
            return
        message = (
            f"attempted {operation} on a frozen sketch registry: "
            "committed snapshot versions (and their sketches) are "
            "immutable"
        )
        hook = self.on_frozen_mutation
        if hook is not None:
            hook(message)
        raise StoreError(message)

    def _apply(self, state: _PartitionSketch, definition: SketchDef,
               value: object, insert: bool) -> None:
        extracted = extract_index_value(value, definition.column)
        delta = 1 if insert else -1
        if extracted is MISSING:
            state.absent += delta
            return
        if extracted is None:
            state.nulls += delta
            return
        if definition.kind == "reservoir":
            supported = _is_numeric(extracted)
        else:
            supported = is_sketchable(extracted)
        if not supported:
            state.unsupported += delta
            return
        if insert:
            state.sketch.insert(extracted)
        else:
            state.sketch.remove(extracted)

    def on_put(self, partition: int, key, old: object,
               new: object) -> None:
        self._ensure_mutable(f"put of key {key!r}")
        for def_key, definition in self._defs.items():
            state = self._partitions[def_key][partition]
            if old is not MISSING:
                old_v = extract_index_value(old, definition.column)
                new_v = extract_index_value(new, definition.column)
                if type(old_v) is type(new_v) and old_v == new_v:
                    continue  # column untouched by this overwrite
                self._apply(state, definition, old, insert=False)
                if definition.kind == "reservoir":
                    # An in-place overwrite reorders the value stream
                    # relative to partition iteration order; only a
                    # rebuild keeps the sample a deterministic function
                    # of the partition contents.
                    state.sketch.dirty = True
            self._apply(state, definition, new, insert=True)
            self.maintenance_ops += 1

    def on_remove(self, partition: int, key, old: object) -> None:
        self._ensure_mutable(f"remove of key {key!r}")
        for def_key, definition in self._defs.items():
            state = self._partitions[def_key][partition]
            self._apply(state, definition, old, insert=False)
            self.maintenance_ops += 1

    def rebuild_partition(self, partition: int) -> None:
        """Re-derive one partition's sketches from its backing entries
        (bulk refresh after rollback recovery or snapshot writes)."""
        self._ensure_mutable(f"rebuild of partition {partition}")
        for def_key, definition in self._defs.items():
            family = self._families[def_key]
            state = _PartitionSketch(
                self._new_sketch(definition, family)
            )
            for _key, value in self._entries_of(partition):
                self._apply(state, definition, value, insert=True)
                self.maintenance_ops += 1
            self._partitions[def_key][partition] = state

    def freeze(self) -> None:
        self.frozen = True

    # -- estimation --------------------------------------------------------

    def estimate(self, partitions: Iterable[int], mode: str,
                 column: str,
                 value: object = None
                 ) -> tuple[object, float, float] | None:
        """Merged ``(estimate, error_bound, confidence)`` over
        ``partitions``, or ``None`` when no sound answer exists."""
        kind = MODE_KIND.get(mode)
        if kind is None:
            return None
        definition = self._defs.get((column, kind))
        if definition is None:
            return None
        states = self._partitions[(column, kind)]
        partitions = list(partitions)
        for partition in partitions:
            if not states[partition].answerable:
                return None
        if mode == "count_eq":
            return self._estimate_count_eq(states, partitions,
                                           definition, value)
        if mode == "distinct":
            return self._estimate_distinct(states, partitions,
                                           definition)
        return self._estimate_numeric(states, partitions, definition,
                                      mode)

    def _estimate_count_eq(self, states, partitions, definition,
                           value):
        if value is None or not is_sketchable(value):
            return None
        estimate = 0
        bound = 0.0
        for partition in partitions:
            sketch = states[partition].sketch
            if sketch.total <= 0:
                continue
            estimate += sketch.estimate(value)
            bound += sketch.error_bound()
        confidence = 1.0 - math.exp(-definition.depth)
        return estimate, bound, confidence

    def _estimate_distinct(self, states, partitions, definition):
        merged = [0] * definition.registers
        for partition in partitions:
            sketch = states[partition].sketch
            if sketch.dirty:
                if self.frozen:
                    return None  # frozen registries must stay clean
                sketch.refresh()
            for index, rank in enumerate(sketch.registers):
                if rank > merged[index]:
                    merged[index] = rank
        raw = hll_estimate(merged)
        estimate = int(round(raw))
        bound = definition.z_value() * \
            hll_relative_error(definition.registers) * raw
        return estimate, bound, definition.confidence

    def _estimate_numeric(self, states, partitions, definition, mode):
        total_n = 0
        weighted_sum = 0.0
        variance_term = 0.0  # Var[sum estimate], stratified
        for partition in partitions:
            state = states[partition]
            sketch = state.sketch
            if sketch.dirty:
                if self.frozen:
                    return None
                sketch.rebuild(
                    self._column_values(partition, definition)
                )
            if sketch.n <= 0:
                continue
            k, mean, var = sketch.stats()
            if k == 0:
                return None  # population claims rows the sample lost
            total_n += sketch.n
            weighted_sum += sketch.n * mean
            if k < sketch.n:  # full partitions in-sample are exact
                variance_term += (sketch.n ** 2) * var / k
        z = definition.z_value()
        if total_n == 0:
            # SQL: SUM/AVG over zero rows is NULL, exactly.
            return None, 0.0, definition.confidence
        sum_bound = z * math.sqrt(variance_term)
        if mode == "sum":
            return weighted_sum, sum_bound, definition.confidence
        return (weighted_sum / total_n, sum_bound / total_n,
                definition.confidence)

    def _column_values(self, partition: int,
                       definition: SketchDef) -> Iterable[float]:
        for _key, value in self._entries_of(partition):
            extracted = extract_index_value(value, definition.column)
            if extracted is MISSING or extracted is None:
                continue
            if _is_numeric(extracted):
                yield extracted

    # -- verification ------------------------------------------------------

    def coherence_errors(self) -> list[str]:
        """Cross-check every sketch against its backing partition.

        All comparisons are order-independent (counter arrays,
        multiplicity maps, membership), so they hold regardless of the
        mutation interleaving that produced the state."""
        errors: list[str] = []
        for def_key in sorted(self._defs):
            definition = self._defs[def_key]
            family = self._families[def_key]
            states = self._partitions[def_key]
            for partition in range(self.partition_count):
                expected = _PartitionSketch(
                    self._new_sketch(definition, family)
                )
                for _key, value in self._entries_of(partition):
                    self._apply(expected, definition, value,
                                insert=True)
                state = states[partition]
                where = f"sketch {definition.name} partition {partition}"
                for counter in ("absent", "nulls", "unsupported"):
                    got = getattr(state, counter)
                    want = getattr(expected, counter)
                    if got != want:
                        errors.append(
                            f"{where}: {counter} counter {got} != "
                            f"expected {want}"
                        )
                errors.extend(self._sketch_mismatches(
                    where, definition, state.sketch, expected.sketch
                ))
        return errors

    def _sketch_mismatches(self, where, definition, got,
                           expected) -> list[str]:
        errors: list[str] = []
        if definition.kind == "countmin":
            if got.total != expected.total:
                errors.append(
                    f"{where}: total {got.total} != "
                    f"expected {expected.total}"
                )
            if got.rows != expected.rows:
                errors.append(f"{where}: counter arrays diverged")
        elif definition.kind == "hll":
            if got.counts() != expected.counts():
                errors.append(
                    f"{where}: multiplicity map diverged from "
                    "backing partition"
                )
        else:  # reservoir
            if got.n != expected.n:
                errors.append(
                    f"{where}: population size {got.n} != "
                    f"expected {expected.n}"
                )
            if not got.dirty and got.sample != expected.sample:
                # A clean sketch never saw a removal, so its stream was
                # the partition's insertion order — which is also the
                # dict iteration order the expected rebuild consumed.
                # Same seed, same stream: the samples must be equal.
                errors.append(
                    f"{where}: sample diverged from deterministic "
                    "rebuild"
                )
        return errors
