"""Approximate query answering: incrementally-maintained sketches.

Probabilistic summaries — count-min sketches, HyperLogLogs, and
reservoir samples — declared per column like secondary indexes,
maintained per-partition on the live-mirror write path, and frozen at
snapshot commit.  ``SELECT APPROX <aggregate> ...`` answers from them
in O(partitions) probes with an explicit ``(estimate, error_bound,
confidence)`` contract, falling back to the exact path whenever a
statement isn't sketch-answerable.
"""

from .hashing import DEFAULT_SEED, HashFamily, hash64
from .planning import ApproxAggregate, analyze_approx_select
from .registry import (
    MODE_KIND,
    SKETCH_KINDS,
    SketchDef,
    SketchRegistry,
)
from .sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    Z_VALUES,
    hll_estimate,
)

__all__ = [
    "ApproxAggregate",
    "CountMinSketch",
    "DEFAULT_SEED",
    "HashFamily",
    "HyperLogLog",
    "MODE_KIND",
    "ReservoirSample",
    "SKETCH_KINDS",
    "SketchDef",
    "SketchRegistry",
    "Z_VALUES",
    "analyze_approx_select",
    "hash64",
    "hll_estimate",
]
