"""The AST lint engine: file walking, suppressions, and the baseline.

The engine is deliberately small: it parses each Python file once,
hands the tree to every selected rule (:mod:`repro.analysis.rules`),
and collects :class:`Violation` records.  Two suppression mechanisms
exist, both explicit:

* an inline ``# lint: allow(<rule>)`` comment on the violating line
  (append a reason after the closing parenthesis);
* a committed baseline file (``analysis-baseline.txt``) listing known
  pre-existing violations, so new code is held to the rules while the
  backlog is burned down deliberately.

Baseline entries are keyed by ``(rule, path, message)`` — not by line
number — so unrelated edits that shift lines do not invalidate them.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Directory names never descended into during a tree walk.
SKIP_DIRS = {"__pycache__", ".git", "results", "fixtures"}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\- ]+)\)")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def allowed_rules_on_line(self, line: int) -> set[str]:
        """Rules suppressed by an ``allow`` comment at ``line`` (1-based).

        Honours the inline form (trailing comment on the violating
        line) and the preceding-comment form: an ``# lint: allow(...)``
        in the contiguous block of pure comment lines directly above —
        the place for multi-line justifications and for statements too
        long to carry a trailing comment.
        """
        if not 1 <= line <= len(self.lines):
            return set()
        allowed = self._allows_in(self.lines[line - 1])
        cursor = line - 1
        while cursor >= 1:
            candidate = self.lines[cursor - 1].strip()
            if not candidate.startswith("#"):
                break
            allowed |= self._allows_in(candidate)
            cursor -= 1
        return allowed

    @staticmethod
    def _allows_in(text: str) -> set[str]:
        match = _ALLOW_RE.search(text)
        if match is None:
            return set()
        return {part.strip() for part in match.group(1).split(",")}


def discover_files(paths: Iterable[str | Path],
                   skip_dirs: set[str] | None = None) -> list[Path]:
    """Python files under ``paths``, sorted for deterministic output."""
    skip = SKIP_DIRS if skip_dirs is None else skip_dirs
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if any(part in skip for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


def _display_path(path: Path) -> str:
    """Path relative to the working directory when possible (stable
    baseline keys regardless of absolute checkout location)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _is_program_rule(rule) -> bool:
    return getattr(rule, "program", False)


def _allow_names(rule) -> set[str]:
    """Annotation spellings that suppress ``rule`` inline."""
    return {rule.name, *getattr(rule, "allow_aliases", ())}


def _parse_context(path: Path) -> "FileContext | Violation | None":
    """Parse one file: a context, a syntax violation, or ``None``
    (skip-file)."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    if _SKIP_FILE_RE.search(source):
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Violation("syntax", display, exc.lineno or 0,
                         f"file does not parse: {exc.msg}")
    return FileContext(display, source, tree)


def lint_file(path: Path, rules: Sequence) -> list[Violation]:
    """Run per-file ``rules`` over one file; syntax errors become
    violations.  Program-level rules need the whole-program view and
    are only run by :func:`lint_paths`."""
    parsed = _parse_context(path)
    if parsed is None:
        return []
    if isinstance(parsed, Violation):
        return [parsed]
    context = parsed
    violations: list[Violation] = []
    for rule in rules:
        if _is_program_rule(rule):
            continue
        allow = _allow_names(rule)
        for violation in rule.check(context):
            if allow & context.allowed_rules_on_line(violation.line):
                continue
            violations.append(violation)
    return violations


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence | None = None,
               skip_dirs: set[str] | None = None,
               *,
               timings: dict[str, float] | None = None,
               cache_dir: str | Path | None = None) -> list[Violation]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``rules`` defaults to :data:`repro.analysis.rules.ALL_RULES`.
    Per-file rules see one tree at a time; rules with ``program =
    True`` run once over the whole-program lock model built from every
    parsed file (cached under ``cache_dir`` when given, keyed on the
    source digests).  When ``timings`` is passed, per-rule wall time
    in milliseconds is accumulated into it (plus a ``model-build``
    entry when a program model was built).
    """
    import time  # lint: allow(determinism) wall time is reporting only

    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    violations: list[Violation] = []
    contexts: list[FileContext] = []
    for path in discover_files(paths, skip_dirs):
        parsed = _parse_context(path)
        if parsed is None:
            continue
        if isinstance(parsed, Violation):
            violations.append(parsed)
        else:
            contexts.append(parsed)

    def charge(name: str, started: float) -> None:
        if timings is not None:
            elapsed = (time.perf_counter() - started) * 1e3  # lint: allow(determinism)
            timings[name] = timings.get(name, 0.0) + elapsed

    file_rules = [rule for rule in rules if not _is_program_rule(rule)]
    program_rules = [rule for rule in rules if _is_program_rule(rule)]
    for rule in file_rules:
        started = time.perf_counter()  # lint: allow(determinism)
        allow = _allow_names(rule)
        for context in contexts:
            for violation in rule.check(context):
                if allow & context.allowed_rules_on_line(
                    violation.line
                ):
                    continue
                violations.append(violation)
        charge(rule.name, started)
    if program_rules:
        from .lockgraph import build_model

        by_path = {context.path: context for context in contexts}
        started = time.perf_counter()  # lint: allow(determinism)
        model = build_model(
            [(context.path, context.tree) for context in contexts],
            cache_dir=cache_dir,
            raw_sources={context.path: context.source
                         for context in contexts},
        )
        charge("model-build", started)
        for rule in program_rules:
            started = time.perf_counter()  # lint: allow(determinism)
            allow = _allow_names(rule)
            for violation in rule.check_program(model):
                context = by_path.get(violation.path)
                if context is not None and allow & \
                        context.allowed_rules_on_line(violation.line):
                    continue
                violations.append(violation)
            charge(rule.name, started)
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return violations


# -- baseline --------------------------------------------------------------

_BASELINE_SEP = "\t"


_COUNT_RE = re.compile(r"^x(\d+)$")


def load_baseline(path: str | Path) -> Counter:
    """Parse a baseline file into a multiset of violation keys.

    Lines are ``rule<TAB>path<TAB>message`` with an optional fourth
    ``xN`` column carrying the occurrence count (two identical
    findings in one file are two baseline occurrences, not one);
    blank lines and ``#`` comments (the place to justify each entry)
    are ignored.  Repeating a line also accumulates its count.
    """
    baseline: Counter = Counter()
    path = Path(path)
    if not path.exists():
        return baseline
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(_BASELINE_SEP, 3)
        if len(parts) < 3:
            continue
        count = 1
        if len(parts) == 4:
            match = _COUNT_RE.match(parts[3].strip())
            if match is not None:
                count = int(match.group(1))
            else:
                # An unrecognised fourth column is part of the message
                # (messages may themselves contain tabs).
                parts = [parts[0], parts[1],
                         _BASELINE_SEP.join(parts[2:])]
        baseline[tuple(parts[:3])] += count
    return baseline


def filter_baselined(
    violations: Iterable[Violation], baseline: Counter
) -> tuple[list[Violation], int]:
    """Split violations into (new, suppressed-by-baseline count)."""
    remaining = Counter(baseline)
    fresh: list[Violation] = []
    suppressed = 0
    for violation in violations:
        if remaining[violation.key] > 0:
            remaining[violation.key] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


def write_baseline(path: str | Path,
                   violations: Iterable[Violation]) -> None:
    """Write the current violations as the new baseline."""
    lines = [
        "# repro.analysis lint baseline — known pre-existing violations.",
        "# Each entry must carry a justification comment; burn entries",
        "# down by fixing the code, then regenerate with:",
        "#   python -m repro.analysis lint --write-baseline",
        "# Format: rule<TAB>path<TAB>message[<TAB>xN]",
    ]
    counts = Counter(v.key for v in violations)
    for key in sorted(counts):
        entry = _BASELINE_SEP.join(key)
        if counts[key] > 1:
            entry += f"{_BASELINE_SEP}x{counts[key]}"
        lines.append(entry)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def iter_rule_violations(context: FileContext, rule_name: str,
                         findings: Iterable[tuple[int, str]]
                         ) -> Iterator[Violation]:
    """Helper for rules: wrap ``(line, message)`` pairs as violations."""
    for line, message in findings:
        yield Violation(rule_name, context.path, line, message)
