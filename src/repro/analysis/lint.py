"""The AST lint engine: file walking, suppressions, and the baseline.

The engine is deliberately small: it parses each Python file once,
hands the tree to every selected rule (:mod:`repro.analysis.rules`),
and collects :class:`Violation` records.  Two suppression mechanisms
exist, both explicit:

* an inline ``# lint: allow(<rule>)`` comment on the violating line
  (append a reason after the closing parenthesis);
* a committed baseline file (``analysis-baseline.txt``) listing known
  pre-existing violations, so new code is held to the rules while the
  backlog is burned down deliberately.

Baseline entries are keyed by ``(rule, path, message)`` — not by line
number — so unrelated edits that shift lines do not invalidate them.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Directory names never descended into during a tree walk.
SKIP_DIRS = {"__pycache__", ".git", "results", "fixtures"}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\- ]+)\)")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def allowed_rules_on_line(self, line: int) -> set[str]:
        """Rules suppressed by an inline comment on ``line`` (1-based)."""
        if not 1 <= line <= len(self.lines):
            return set()
        match = _ALLOW_RE.search(self.lines[line - 1])
        if match is None:
            return set()
        return {part.strip() for part in match.group(1).split(",")}


def discover_files(paths: Iterable[str | Path],
                   skip_dirs: set[str] | None = None) -> list[Path]:
    """Python files under ``paths``, sorted for deterministic output."""
    skip = SKIP_DIRS if skip_dirs is None else skip_dirs
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if any(part in skip for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


def _display_path(path: Path) -> str:
    """Path relative to the working directory when possible (stable
    baseline keys regardless of absolute checkout location)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, rules: Sequence) -> list[Violation]:
    """Run ``rules`` over one file; syntax errors become violations."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    if _SKIP_FILE_RE.search(source):
        return []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation("syntax", display, exc.lineno or 0,
                          f"file does not parse: {exc.msg}")]
    context = FileContext(display, source, tree)
    violations: list[Violation] = []
    for rule in rules:
        for violation in rule.check(context):
            if rule.name in context.allowed_rules_on_line(violation.line):
                continue
            violations.append(violation)
    return violations


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence | None = None,
               skip_dirs: set[str] | None = None) -> list[Violation]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``rules`` defaults to :data:`repro.analysis.rules.ALL_RULES`.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    violations: list[Violation] = []
    for path in discover_files(paths, skip_dirs):
        violations.extend(lint_file(path, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return violations


# -- baseline --------------------------------------------------------------

_BASELINE_SEP = "\t"


def load_baseline(path: str | Path) -> Counter:
    """Parse a baseline file into a multiset of violation keys.

    Lines are ``rule<TAB>path<TAB>message``; blank lines and ``#``
    comments (the place to justify each entry) are ignored.
    """
    baseline: Counter = Counter()
    path = Path(path)
    if not path.exists():
        return baseline
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(_BASELINE_SEP, 2)
        if len(parts) != 3:
            continue
        baseline[tuple(parts)] += 1
    return baseline


def filter_baselined(
    violations: Iterable[Violation], baseline: Counter
) -> tuple[list[Violation], int]:
    """Split violations into (new, suppressed-by-baseline count)."""
    remaining = Counter(baseline)
    fresh: list[Violation] = []
    suppressed = 0
    for violation in violations:
        if remaining[violation.key] > 0:
            remaining[violation.key] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


def write_baseline(path: str | Path,
                   violations: Iterable[Violation]) -> None:
    """Write the current violations as the new baseline."""
    lines = [
        "# repro.analysis lint baseline — known pre-existing violations.",
        "# Each entry must carry a justification comment; burn entries",
        "# down by fixing the code, then regenerate with:",
        "#   python -m repro.analysis lint --write-baseline",
        "# Format: rule<TAB>path<TAB>message",
    ]
    for violation in sorted(set(v.key for v in violations)):
        lines.append(_BASELINE_SEP.join(violation))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def iter_rule_violations(context: FileContext, rule_name: str,
                         findings: Iterable[tuple[int, str]]
                         ) -> Iterator[Violation]:
    """Helper for rules: wrap ``(line, message)`` pairs as violations."""
    for line, message in findings:
        yield Violation(rule_name, context.path, line, message)
