"""Lock-acquisition summaries propagated along the call graph.

:mod:`repro.analysis.callgraph` says *who calls whom*; this module says
*what each function does with locks* and stitches the two together into
the whole-program facts the concurrency rules consume:

* a per-function **lock summary** — which lock classes the function
  acquires (and which were lexically held at that point), which calls
  it makes while holding a lock, and which blocking operations (store
  server job submission, network send/recv, channel waits, simtime
  sleeps, unbounded IO loops) it performs;
* a per-module record of import edges and module-level mutable globals
  (from the call-graph pass);
* the **global lock-order graph**: an edge ``A -> B`` whenever some
  execution path acquires a lock of class ``B`` while one of class
  ``A`` is held — including paths that cross function and module
  boundaries — with the first witness path kept per edge, rendered
  file:line by file:line.

Everything in the model is plain JSON-able data so a build can be
cached on disk keyed by the source digests (CI reuses it across runs);
loading a cached model and building a fresh one are indistinguishable
to the rules.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from .callgraph import Program, build_program, module_name_for

#: Method names that take a key-level lock (mirrors the lock-pairing
#: rule so both passes agree on what an acquisition looks like).
_ACQUIRE_NAMES = {"acquire", "try_acquire", "lock_key"}
_RELEASE_NAMES = {"release", "release_all", "unlock_key"}

#: Recursion bound for transitive summary propagation.
_PROPAGATE_DEPTH = 24

_CACHE_PREFIX = "concurrency-"


# -- model -----------------------------------------------------------------


class LockModel:
    """The JSON-able whole-program model the program rules consume.

    ``functions`` maps qualname -> ``{"path", "line", "module",
    "acquires": [[label, line, held, handover], ...],
    "calls": [[callee, line, held], ...],
    "blocking": [[kind, line, held], ...]}`` where ``held`` is the list
    of ``[label, line]`` lock regions lexically open at that point.
    ``modules`` maps module name -> ``{"path", "imports",
    "mutable_globals": [[name, line, description], ...]}``.
    """

    def __init__(self, functions: dict, modules: dict) -> None:
        self.functions = functions
        self.modules = modules

    def to_json(self) -> dict:
        return {"functions": self.functions, "modules": self.modules}

    @classmethod
    def from_json(cls, data: dict) -> "LockModel":
        return cls(data["functions"], data["modules"])


def build_model(sources: list[tuple[str, ast.Module]],
                cache_dir: str | Path | None = None,
                raw_sources: dict[str, str] | None = None) -> LockModel:
    """Build (or load from cache) the lock model over parsed sources.

    ``sources`` is ``(display_path, tree)`` pairs; ``raw_sources`` maps
    display path -> file text and is only needed when ``cache_dir`` is
    given (the cache key is a digest over the contributing texts).
    """
    cache_path = None
    if cache_dir is not None and raw_sources is not None:
        digest = _source_digest(raw_sources)
        cache_path = Path(cache_dir) / f"{_CACHE_PREFIX}{digest}.json"
        if cache_path.exists():
            try:
                return LockModel.from_json(
                    json.loads(cache_path.read_text(encoding="utf-8"))
                )
            except (json.JSONDecodeError, KeyError):
                pass  # corrupt cache entry: rebuild below
    program = build_program(sources)
    model = _summarise(program)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        for stale in cache_path.parent.glob(f"{_CACHE_PREFIX}*.json"):
            if stale != cache_path:
                stale.unlink(missing_ok=True)
        cache_path.write_text(json.dumps(model.to_json(), sort_keys=True),
                              encoding="utf-8")
    return model


def _source_digest(raw_sources: dict[str, str]) -> str:
    digest = hashlib.sha256()
    for path in sorted(raw_sources):
        content = hashlib.sha256(
            raw_sources[path].encode("utf-8")
        ).hexdigest()
        digest.update(f"{path}\t{content}\n".encode("utf-8"))
    return digest.hexdigest()[:16]


# -- summary extraction ----------------------------------------------------


def _summarise(program: Program) -> LockModel:
    functions: dict[str, dict] = {}
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        summary = _Extractor(fn).run()
        functions[qualname] = {
            "path": fn.path,
            "line": fn.lineno,
            "module": fn.module,
            **summary,
        }
    modules: dict[str, dict] = {}
    import_edges = program.import_edges()
    for name in sorted(program.modules):
        info = program.modules[name]
        modules[name] = {
            "path": info.path,
            "imports": import_edges[name],
            "mutable_globals": [list(entry)
                                for entry in info.mutable_globals],
        }
    return LockModel(functions, modules)


class _Extractor:
    """Extract one function's lock summary by lexical traversal.

    Region tracking mirrors ``LockPairingRule``: coarse and lexical —
    an ``acquire``/``try_acquire``/``lock_key`` opens a held region,
    any release closes every open region, and the blocking hand-over
    idiom (``acquire(..., granted=cb)``) records an acquisition (it
    will take the lock eventually, so it is an ordering edge source)
    but opens no region, because control returns before the grant.
    Functions that *are* lock primitives (their own name is an
    acquire/release name — ``LockManager.acquire``, ``lock_key``
    wrappers) skip lock-op extraction: their callers record the
    acquisition at the call site, and extracting the internals too
    would double-count every lock against itself.
    """

    def __init__(self, fn) -> None:
        self.fn = fn
        self.is_primitive = fn.name in _ACQUIRE_NAMES \
            or fn.name in _RELEASE_NAMES
        self.held: list[tuple[str, int]] = []
        self.acquires: list[list] = []
        self.calls: list[list] = []
        self.blocking: list[list] = []

    def run(self) -> dict:
        self._walk(getattr(self.fn.node, "body", []))
        return {
            "acquires": self.acquires,
            "calls": self.calls,
            "blocking": self.blocking,
        }

    def _snapshot(self) -> list[list]:
        return [[label, line] for label, line in self.held]

    def _walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are separate summary nodes
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)
                continue
            if isinstance(stmt, ast.While):
                self._scan_expressions(stmt.test)
                if _is_unbounded(stmt) and _contains_io(stmt):
                    self.blocking.append(
                        ["unbounded loop with IO", stmt.lineno,
                         self._snapshot()]
                    )
                self._walk(stmt.body)
                self._walk(stmt.orelse)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.With)):
                for expr_field in ("test", "iter"):
                    expr = getattr(stmt, expr_field, None)
                    if expr is not None:
                        self._scan_expressions(expr)
                self._walk(stmt.body)
                self._walk(getattr(stmt, "orelse", []))
                continue
            self._scan_expressions(stmt)

    def _scan_expressions(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._visit_call(sub)

    def _visit_call(self, call: ast.Call) -> None:
        attr = (call.func.attr
                if isinstance(call.func, ast.Attribute) else None)
        if not self.is_primitive and attr in _ACQUIRE_NAMES:
            label = _lock_label(call)
            handover = any(kw.arg == "granted" for kw in call.keywords)
            self.acquires.append(
                [label, call.lineno, self._snapshot(), handover]
            )
            if not handover:
                self.held.append((label, call.lineno))
            return
        if not self.is_primitive and attr in _RELEASE_NAMES:
            self.held.clear()
            return
        kind = _blocking_kind(call)
        if kind is not None:
            self.blocking.append([kind, call.lineno, self._snapshot()])
        callee = self.fn.calls_by_node.get(id(call))
        if callee is not None:
            self.calls.append([callee, call.lineno, self._snapshot()])


def _lock_label(call: ast.Call) -> str:
    """The lock *class* named by an acquire call's first argument.

    A string constant is its own class; a tuple key ``(table, key)``
    is classed by its table component (matching the runtime lockdep
    sanitizer); anything else — a variable — is classed by its source
    text, which keeps distinct call sites distinct without pretending
    to know the runtime value.
    """
    if not call.args:
        return "<unknown>"
    arg = call.args[0]
    if isinstance(arg, ast.Tuple) and arg.elts:
        arg = arg.elts[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return ast.unparse(arg)


def _is_unbounded(stmt: ast.While) -> bool:
    test = stmt.test
    return isinstance(test, ast.Constant) and bool(test.value)


def _contains_io(stmt: ast.While) -> bool:
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.Call) and _blocking_kind(sub) is not None:
            return True
    return False


def _blocking_kind(call: ast.Call) -> str | None:
    """Classify a call as a blocking operation, or ``None``.

    Cooperative store-server workers must never block while holding a
    lock (the Hazelcast Jet rule): job submission, network traffic,
    channel waits, and simtime sleeps all park the worker for an
    unbounded number of virtual milliseconds.  ``sim.schedule`` is
    *not* blocking — it registers a future callback and returns.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        if isinstance(func, ast.Name) and func.id == "sleep":
            return "simtime sleep"
        return None
    attr = func.attr
    receiver_parts = _receiver_parts(func.value)
    if attr == "submit":
        return "store-server job submission"
    if attr == "send" and "network" in receiver_parts:
        return "network send"
    if attr == "recv":
        return "network recv"
    if attr in ("wait", "wait_for"):
        return "channel wait"
    if attr == "sleep":
        return "simtime sleep"
    return None


def _receiver_parts(node: ast.expr) -> set[str]:
    parts: set[str] = set()
    while isinstance(node, ast.Attribute):
        parts.add(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.add(node.id)
    return parts


# -- lock-order graph ------------------------------------------------------


def _short(qualname: str) -> str:
    return qualname.split(".", 1)[-1] if "." in qualname else qualname


def transitive_acquires(model: LockModel, qualname: str,
                        memo: dict | None = None,
                        stack: frozenset = frozenset(),
                        depth: int = 0) -> dict[str, list]:
    """Lock classes eventually acquired by calling ``qualname``.

    Maps label -> witness chain ``[(path, line, text), ...]`` from the
    function's entry to the acquisition site, keeping the first chain
    found (deterministic: summaries are iterated in source order).
    Recursion through cycles contributes nothing on the back edge — an
    under-approximation that terminates.
    """
    if memo is None:
        memo = {}
    if qualname in memo:
        return memo[qualname]
    if qualname in stack or depth > _PROPAGATE_DEPTH:
        return {}
    fn = model.functions.get(qualname)
    if fn is None:
        return {}
    result: dict[str, list] = {}
    for label, line, _held, _handover in fn["acquires"]:
        result.setdefault(label, [(
            fn["path"], line,
            f"lock '{label}' acquired in {_short(qualname)}()",
        )])
    inner_stack = stack | {qualname}
    for callee, line, _held in fn["calls"]:
        sub = transitive_acquires(model, callee, memo, inner_stack,
                                  depth + 1)
        for label, chain in sub.items():
            result.setdefault(label, [(
                fn["path"], line,
                f"{_short(qualname)}() calls {_short(callee)}()",
            )] + chain)
    memo[qualname] = result
    return result


def transitive_blocking(model: LockModel, qualname: str,
                        memo: dict | None = None,
                        stack: frozenset = frozenset(),
                        depth: int = 0) -> dict[str, list]:
    """Blocking operations eventually reached by calling ``qualname``.

    Maps blocking kind -> first witness chain, same shape as
    :func:`transitive_acquires`.
    """
    if memo is None:
        memo = {}
    if qualname in memo:
        return memo[qualname]
    if qualname in stack or depth > _PROPAGATE_DEPTH:
        return {}
    fn = model.functions.get(qualname)
    if fn is None:
        return {}
    result: dict[str, list] = {}
    for kind, line, _held in fn["blocking"]:
        result.setdefault(kind, [(
            fn["path"], line, f"{kind} in {_short(qualname)}()",
        )])
    inner_stack = stack | {qualname}
    for callee, line, _held in fn["calls"]:
        sub = transitive_blocking(model, callee, memo, inner_stack,
                                  depth + 1)
        for kind, chain in sub.items():
            result.setdefault(kind, [(
                fn["path"], line,
                f"{_short(qualname)}() calls {_short(callee)}()",
            )] + chain)
    memo[qualname] = result
    return result


def build_lock_order_edges(model: LockModel
                           ) -> dict[tuple[str, str], list]:
    """The acquired-while-holding graph with first witnesses.

    Returns ``(held_class, acquired_class) -> [(path, line, text),
    ...]``.  Self-edges (two keys of the same class) are excluded:
    within-class ordering is the canonical-key-order discipline's job
    (and the runtime lockdep sanitizer's), not a class-level cycle.
    """
    edges: dict[tuple[str, str], list] = {}
    memo: dict = {}
    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        for label, line, held, _handover in fn["acquires"]:
            for held_label, held_line in held:
                if held_label == label:
                    continue
                edges.setdefault((held_label, label), [
                    (fn["path"], held_line,
                     f"lock '{held_label}' acquired in "
                     f"{_short(qualname)}()"),
                    (fn["path"], line,
                     f"lock '{label}' acquired while '{held_label}' "
                     "is held"),
                ])
        for callee, line, held in fn["calls"]:
            if not held:
                continue
            reached = transitive_acquires(model, callee, memo)
            for label, chain in sorted(reached.items()):
                for held_label, held_line in held:
                    if held_label == label:
                        continue
                    edges.setdefault((held_label, label), [
                        (fn["path"], held_line,
                         f"lock '{held_label}' acquired in "
                         f"{_short(qualname)}()"),
                        (fn["path"], line,
                         f"{_short(qualname)}() calls "
                         f"{_short(callee)}() while '{held_label}' "
                         "is held"),
                    ] + chain)
    return edges


def find_cycles(edges: dict[tuple[str, str], list]
                ) -> list[list[str]]:
    """Elementary cycles of the lock-order graph, canonicalised.

    Uses Tarjan SCCs, then walks one representative cycle per
    non-trivial component.  Each cycle is rotated so its smallest
    label comes first; the result list is sorted, so output is stable
    across runs.
    """
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    sccs = _tarjan(graph)
    cycles: list[list[str]] = []
    for component in sccs:
        members = set(component)
        if len(component) < 2:
            continue
        cycle = _walk_cycle(graph, members)
        if cycle:
            cycles.append(cycle)
    cycles.sort()
    return cycles


def _walk_cycle(graph: dict[str, set[str]],
                members: set[str]) -> list[str] | None:
    start = min(members)
    path = [start]
    seen = {start}
    node = start
    for _ in range(len(members) * 2):
        successors = sorted(n for n in graph.get(node, ())
                            if n in members)
        if not successors:
            return None
        nxt = next((n for n in successors if n == start), None)
        if nxt is not None and len(path) > 1:
            return path
        advance = next((n for n in successors if n not in seen),
                       successors[0])
        if advance == start and len(path) > 1:
            return path
        if advance in seen and advance != start:
            # Trim the path to the inner cycle through ``advance``.
            idx = path.index(advance)
            return path[idx:]
        path.append(advance)
        seen.add(advance)
        node = advance
    return path if len(path) > 1 else None


def _tarjan(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(graph.get(root, ())), 0)
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, cursor = work.pop()
            advanced = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                if succ not in index:
                    work.append((node, successors, cursor))
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph.get(succ, ())), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    popped = stack.pop()
                    on_stack.discard(popped)
                    component.append(popped)
                    if popped == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def render_chain(chain: list) -> str:
    """One-line ``path:line: text`` rendering of a witness chain."""
    return " -> ".join(f"{path}:{line}: {text}"
                       for path, line, text in chain)


# -- module reachability (shared-state audit) ------------------------------


def reachable_modules(model: LockModel, roots: list[str]
                      ) -> tuple[set[str], dict[str, str]]:
    """Modules reachable from ``roots`` over import edges.

    Returns ``(reached, parent)`` where ``parent`` maps each reached
    module to its BFS predecessor (roots map to themselves), for
    rendering witness chains.
    """
    reached: set[str] = set()
    parent: dict[str, str] = {}
    frontier = sorted(roots)
    for root in frontier:
        reached.add(root)
        parent[root] = root
    while frontier:
        next_frontier: list[str] = []
        for module in frontier:
            info = model.modules.get(module)
            if info is None:
                continue
            for target in info["imports"]:
                if target in reached:
                    continue
                reached.add(target)
                parent[target] = module
                next_frontier.append(target)
        frontier = sorted(next_frontier)
    return reached, parent


def import_chain(parent: dict[str, str], module: str) -> list[str]:
    """Root -> ... -> module path through the BFS parent map."""
    chain = [module]
    seen = {module}
    while parent.get(chain[-1]) not in (None, chain[-1]):
        nxt = parent[chain[-1]]
        if nxt in seen:
            break
        chain.append(nxt)
        seen.add(nxt)
    return list(reversed(chain))


__all__ = [
    "LockModel",
    "build_model",
    "build_lock_order_edges",
    "find_cycles",
    "transitive_acquires",
    "transitive_blocking",
    "render_chain",
    "reachable_modules",
    "import_chain",
    "module_name_for",
]
