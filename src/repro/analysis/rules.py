"""The invariant lint rules.

Each rule is a small AST analysis approximating one invariant the
simulation relies on.  They are lexical approximations, not proofs —
each rule's docstring states exactly what it matches and what it
cannot see — but every pattern they flag has either caused a real bug
in this codebase or is one code review is known to miss (unreleased
locks on early returns, unbilled network sends, wall-clock reads that
break bit-determinism, retry paths ignoring attempt tokens).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .lint import FileContext, Violation

#: ``time`` module functions that read the wall clock.
_WALL_CLOCK_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
}
#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_FUNCS = {"now", "utcnow", "today"}
#: Module-level ``random.*`` draws (the shared, unseeded global stream).
_RANDOM_MODULE_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
}
#: Other nondeterministic entropy sources.
_ENTROPY_CALLS = {("uuid", "uuid1"), ("uuid", "uuid4"), ("os", "urandom")}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Set display, set comprehension, or a bare ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule:
    """No wall-clock reads or unseeded randomness in simulation code.

    The discrete-event simulation must be bit-deterministic: same seed,
    same schedule, same results — chaos and pushdown property tests are
    meaningless otherwise.  Flags:

    * ``time.time()`` / ``time.monotonic()`` / ``perf_counter`` and
      friends — virtual time comes from ``Simulator.now``;
    * ``datetime.now()`` / ``utcnow()`` / ``date.today()``;
    * ``random.Random()`` constructed without a seed argument, and
      module-level ``random.<draw>()`` calls that use the process-global
      stream — use the named streams of ``repro.simtime.rng`` or a
      seeded ``random.Random(seed)``;
    * ``uuid.uuid1/uuid4``, ``os.urandom``, and any ``secrets.*`` call;
    * ``dict.popitem()`` — removal order is an implementation detail;
    * iterating a set into ordered output (``for x in {...}``,
      ``list(set(...))``, ``tuple``/``enumerate`` of a set) — wrap the
      set in ``sorted(...)`` instead.

    Cannot see through aliases (``from time import time``) or values
    typed as sets; those few cases are what review is for.
    """

    name = "determinism"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if _is_set_expr(target):
                    line = getattr(node, "lineno", target.lineno)
                    yield Violation(
                        self.name, context.path, line,
                        "iteration over a set feeds ordered output; "
                        "wrap it in sorted(...)",
                    )

    def _check_call(self, context: FileContext,
                    node: ast.Call) -> Iterator[Violation]:
        dotted = _dotted(node.func) or ""
        parts = tuple(dotted.split("."))
        if len(parts) >= 2:
            # Match on the trailing two segments so both import styles
            # are caught (``datetime.now()`` and ``datetime.datetime
            # .now()``, ``random.random()`` via any alias chain).
            module, func = parts[-2], parts[-1]
            if module == "time" and func in _WALL_CLOCK_FUNCS:
                yield Violation(
                    self.name, context.path, node.lineno,
                    f"wall-clock read time.{func}(); use the simulator's "
                    "virtual time (sim.now) instead",
                )
            if module in ("datetime", "date") and func in _DATETIME_FUNCS:
                yield Violation(
                    self.name, context.path, node.lineno,
                    f"wall-clock read {module}.{func}(); derive "
                    "timestamps from virtual time instead",
                )
            if module == "random" and func in _RANDOM_MODULE_FUNCS:
                yield Violation(
                    self.name, context.path, node.lineno,
                    f"module-level random.{func}() draws from the "
                    "process-global unseeded stream; use a seeded "
                    "random.Random or repro.simtime.rng streams",
                )
            if (module, func) in _ENTROPY_CALLS or module == "secrets":
                yield Violation(
                    self.name, context.path, node.lineno,
                    f"nondeterministic entropy source {dotted}()",
                )
        if dotted == "random.Random" and not node.args and not any(
            keyword.arg in (None, "x") for keyword in node.keywords
        ):
            yield Violation(
                self.name, context.path, node.lineno,
                "random.Random() without a seed is seeded from the wall "
                "clock; pass an explicit seed",
            )
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "popitem":
            yield Violation(
                self.name, context.path, node.lineno,
                "dict.popitem() removes an implementation-defined entry; "
                "pop an explicit key instead",
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            yield Violation(
                self.name, context.path, node.lineno,
                f"{node.func.id}(set(...)) materialises set order into "
                "ordered output; use sorted(...)",
            )


#: Method names that take a key-level lock.
_ACQUIRE_NAMES = {"acquire", "try_acquire", "lock_key"}
#: Method names that give one back.
_RELEASE_NAMES = {"release", "release_all", "unlock_key"}


def _call_attr(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _has_granted_callback(call: ast.Call) -> bool:
    return any(kw.arg == "granted" for kw in call.keywords)


def _finally_releases(handler: list[ast.stmt]) -> bool:
    for stmt in handler:
        for node in ast.walk(stmt):
            if _call_attr(node) in _RELEASE_NAMES:
                return True
    return False


class LockPairingRule:
    """Every lock acquire must be paired with a release on all exits.

    Tracks, lexically and per function, whether a ``.acquire(...)`` /
    ``.lock_key(...)`` call is still unreleased when control reaches a
    ``return``, a ``raise``, or the end of the function.  A ``try``
    whose ``finally`` contains a release protects its whole body.  Two
    idioms are exempt:

    * ``acquire(..., granted=<callback>)`` — the blocking hand-over
      idiom; the callback owns the release (the runtime lock-leak
      sanitizer still checks the end state);
    * ``try_acquire`` used for its boolean result — but a
      ``try_acquire`` whose result is *ignored* is always flagged,
      because a failed acquire silently skipped is how repeatable
      reads lose their protection.

    Purely lexical: a helper that releases on the caller's behalf needs
    an inline ``# lint: allow(lock-pairing)`` with a justification.
    """

    name = "lock-pairing"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node)

    def _check_function(self, context: FileContext,
                        func: ast.FunctionDef) -> Iterator[Violation]:
        violations: list[Violation] = []
        held_lines: list[int] = []
        self._walk(context, func.body, held_lines, False, violations)
        for line in held_lines:
            violations.append(Violation(
                self.name, context.path, line,
                f"lock acquired in {func.name}() is not released on "
                "every path through the function",
            ))
        yield from violations

    def _walk(self, context: FileContext, stmts: list[ast.stmt],
              held_lines: list[int], protected: bool,
              violations: list[Violation]) -> None:
        """Track unreleased acquires through one statement sequence.

        ``held_lines`` carries the lines of acquires not yet released;
        mutated in place so state flows across nested blocks.
        """
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs run later; analysed separately
            if isinstance(stmt, ast.Try):
                body_protected = protected or _finally_releases(
                    stmt.finalbody
                )
                self._walk(context, stmt.body, held_lines,
                           body_protected, violations)
                for handler in stmt.handlers:
                    self._walk(context, handler.body, held_lines,
                               body_protected, violations)
                self._walk(context, stmt.orelse, held_lines,
                           body_protected, violations)
                self._walk(context, stmt.finalbody, held_lines,
                           protected, violations)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
                branches = [stmt.body]
                if getattr(stmt, "orelse", None):
                    branches.append(stmt.orelse)
                for branch in branches:
                    self._walk(context, branch, held_lines, protected,
                               violations)
                continue
            self._scan_statement(context, stmt, held_lines, protected,
                                 violations)

    def _scan_statement(self, context: FileContext, stmt: ast.stmt,
                        held_lines: list[int], protected: bool,
                        violations: list[Violation]) -> None:
        if isinstance(stmt, (ast.Return, ast.Raise)) and held_lines \
                and not protected:
            kind = "return" if isinstance(stmt, ast.Return) else "raise"
            violations.append(Violation(
                self.name, context.path, stmt.lineno,
                f"{kind} while a lock acquired on line "
                f"{held_lines[0]} is still held",
            ))
            held_lines.clear()  # one report per unbalanced acquire path
            return
        for node in ast.walk(stmt):
            attr = _call_attr(node)
            if attr == "try_acquire":
                if isinstance(stmt, ast.Expr) and stmt.value is node:
                    violations.append(Violation(
                        self.name, context.path, node.lineno,
                        "try_acquire result ignored: a failed acquire "
                        "must not be silently dropped",
                    ))
            elif attr in _ACQUIRE_NAMES:
                if not _has_granted_callback(node):
                    held_lines.append(node.lineno)
            elif attr in _RELEASE_NAMES:
                held_lines.clear()


class BillingRule:
    """Every network shipment and counter must reach the cost model.

    Two checks:

    * every ``<...>.network.send(...)`` (or ``network.send(...)``)
      call-site must pass an ``nbytes=`` keyword — an unbilled send
      makes shipped bytes invisible to both the bandwidth model and
      the pushdown ablation measurements;
    * every counter field declared on ``ClusterReport`` must be
      populated inside ``collect_report`` — a counter that never rolls
      up silently reads as zero in every report.
    """

    name = "billing"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_send(context, node)
        yield from self._check_report_coverage(context)

    def _check_send(self, context: FileContext,
                    node: ast.Call) -> Iterator[Violation]:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr != "send":
            return
        receiver = _dotted(node.func.value) or ""
        if "network" not in receiver.split("."):
            return
        if not any(kw.arg == "nbytes" for kw in node.keywords):
            yield Violation(
                self.name, context.path, node.lineno,
                "network send without nbytes=: every shipment must be "
                "billed to the cost model",
            )

    def _check_report_coverage(
        self, context: FileContext
    ) -> Iterator[Violation]:
        report_class = None
        collector = None
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef) \
                    and node.name == "ClusterReport":
                report_class = node
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "collect_report":
                collector = node
        if report_class is None or collector is None:
            return
        populated: set[str] = set()
        for node in ast.walk(collector):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        populated.add(target.attr)
        for stmt in report_class.body:
            if not isinstance(stmt, ast.AnnAssign) \
                    or not isinstance(stmt.target, ast.Name):
                continue
            field = stmt.target.id
            if field in ("horizon_ms", "nodes"):
                continue  # structural fields, assigned at construction
            if field not in populated:
                yield Violation(
                    self.name, context.path, stmt.lineno,
                    f"ClusterReport.{field} is declared but never "
                    "populated in collect_report()",
                )


def _subscript_indices(node: ast.expr) -> set[str]:
    """String constants indexing any Subscript in ``node``'s chain."""
    indices: set[str] = set()
    while isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            indices.add(node.slice.value)
        node = node.value
    return indices


class AttemptTokenRule:
    """Retry paths that collect partials must check the attempt token.

    After a node failure the query service bumps a per-table attempt
    counter; any callback that then merges scan results, bumps scanned
    counters, or ships payloads for a *previous* attempt would
    double-count rows across the retry (the chaos property tests exist
    to catch exactly that).  This rule flags any function that writes
    partial-collection state —

    * assignment into ``state["rows"][...]``,
    * ``state["scanned"] += ...``,
    * ``rows_shipped`` / ``bytes_shipped`` / ``entries_billed``
      increments —

    without either comparing against ``state["attempt"]`` (or a name
    ``attempt``) or receiving the token as an ``attempt`` parameter to
    forward to a guarded callee.
    """

    name = "attempt-token"

    _COUNTER_ATTRS = {"rows_shipped", "bytes_shipped", "entries_billed"}

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node)

    def _own_statements(self, func: ast.FunctionDef) -> Iterator[ast.AST]:
        """Walk ``func``'s body excluding nested function bodies."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_function(self, context: FileContext,
                        func: ast.FunctionDef) -> Iterator[Violation]:
        collect_lines: list[int] = []
        checks_token = False
        args = func.args
        params = {a.arg for a in args.args + args.posonlyargs
                  + args.kwonlyargs}
        if "attempt" in params:
            checks_token = True
        for node in self._own_statements(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if "rows" in _subscript_indices(target):
                        collect_lines.append(node.lineno)
                    elif isinstance(node, ast.AugAssign) and (
                        "scanned" in _subscript_indices(target)
                        or (isinstance(target, ast.Attribute)
                            and target.attr in self._COUNTER_ATTRS)
                    ):
                        collect_lines.append(node.lineno)
            if isinstance(node, ast.Compare):
                names = {n.id for n in ast.walk(node)
                         if isinstance(n, ast.Name)}
                indices: set[str] = set()
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Subscript):
                        indices |= _subscript_indices(sub)
                if "attempt" in names or "attempt" in indices:
                    checks_token = True
        if collect_lines and not checks_token:
            for line in sorted(set(collect_lines)):
                yield Violation(
                    self.name, context.path, line,
                    f"{func.name}() collects partial results without "
                    "checking the per-table attempt token; a retry can "
                    "double-count this write",
                )


#: Interpreter entry points that re-walk the expression AST per call.
_INTERPRETED_EVAL_FUNCS = {"eval_predicate", "eval_expr"}


class CompiledScanRule:
    """Scan-path chunk loops must use compiled predicates, not the
    per-row AST interpreter.

    The vectorized scan path compiles each fragment's pushed WHERE
    conjuncts once (``repro.sql.compiled``) and evaluates whole batches
    through the closures.  Calling ``eval_predicate`` / ``eval_expr``
    inside a loop on the scan path re-walks the expression tree for
    every row, silently reverting the optimisation this rule guards.
    Flags any call to those entry points lexically inside a ``for`` /
    ``while`` loop or a comprehension, in scan-path files — anything
    under ``repro/query/`` or ``repro/sql/``, plus files named
    ``scanpath_*.py``.

    The interpreted ablation baseline is deliberate; its call sites
    carry an inline ``# lint: allow(compiled-scan)``.  Central (non
    scan-path) execution in ``repro/continuous/`` or the merge layer is
    out of scope: per-row evaluation is its normal operating mode.
    """

    name = "compiled-scan"

    _LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp,
                   ast.SetComp, ast.GeneratorExp, ast.DictComp)

    def _in_scope(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if "repro/query/" in posix or "repro/sql/" in posix:
            return True
        basename = posix.rsplit("/", 1)[-1]
        return basename.startswith("scanpath_")

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not self._in_scope(context.path):
            return
        seen: set[int] = set()
        for node in ast.walk(context.tree):
            if not isinstance(node, self._LOOP_NODES):
                continue
            for sub in ast.walk(node):
                if id(sub) in seen:
                    continue  # nested loops walk shared subtrees
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in _INTERPRETED_EVAL_FUNCS:
                    seen.add(id(sub))
                    yield Violation(
                        self.name, context.path, sub.lineno,
                        f"per-row {name}() inside a scan-path loop "
                        "re-walks the expression AST for every row; "
                        "compile the fragment once "
                        "(repro.sql.compiled) and evaluate batches",
                    )


class LockOrderRule:
    """No cycles in the whole-program acquired-while-holding graph.

    Built on the interprocedural passes (:mod:`.callgraph`,
    :mod:`.lockgraph`): every acquisition of a lock class ``B`` while a
    class ``A`` is lexically held — in the same function or any number
    of resolved calls deeper — adds an edge ``A -> B``.  A cycle means
    two executions can each hold one lock of the cycle and wait
    (FIFO-queued, forever) for the next: the classic deadlock shape
    that no single-file rule can see.  Each cycle is reported once,
    with the full witness path rendered file:line by file:line.

    Lock classes are table names (string constants, or the first
    element of ``(table, key)`` tuples); variable keys are classed by
    their source text.  A cycle between locks that are provably never
    held by concurrent actors can be suppressed at its witness site
    with ``# lint: allow(lock-order)`` plus a justification.
    """

    name = "lock-order"
    program = True

    def check_program(self, model) -> Iterator[Violation]:
        from .lockgraph import (
            build_lock_order_edges,
            find_cycles,
            render_chain,
        )

        edges = build_lock_order_edges(model)
        for cycle in find_cycles(edges):
            closed = cycle + [cycle[0]]
            witnesses = []
            for src, dst in zip(closed, closed[1:]):
                chain = edges.get((src, dst))
                if chain is not None:
                    witnesses.append(render_chain(chain))
            first_edge = edges.get((closed[0], closed[1]))
            if first_edge is None:
                continue
            path, line, _text = first_edge[0]
            rendered = " -> ".join(f"'{label}'" for label in closed)
            yield Violation(
                self.name, path, line,
                f"lock-order cycle {rendered} is a potential deadlock; "
                "witness: " + " ; ".join(witnesses),
            )


class BlockingUnderLockRule:
    """No blocking operation while a lock summary says a lock is held.

    The Jet cooperative-worker rule: a store-server worker that blocks
    while holding a key lock parks every FIFO waiter behind it for an
    unbounded number of virtual milliseconds.  Flags — in the same
    function or through any chain of resolved calls — store-server job
    submission (``.submit``), network ``send``/``recv``, channel
    ``wait``/``wait_for``, simtime ``sleep``, and ``while True`` loops
    containing IO, whenever the lexical lock summary says a lock is
    held at that point.  ``sim.schedule`` is asynchronous and exempt.
    """

    name = "blocking-under-lock"
    program = True

    def check_program(self, model) -> Iterator[Violation]:
        from .lockgraph import render_chain, transitive_blocking

        memo: dict = {}
        for qualname in sorted(model.functions):
            fn = model.functions[qualname]
            for kind, line, held in fn["blocking"]:
                if not held:
                    continue
                label, held_line = held[0]
                yield Violation(
                    self.name, fn["path"], line,
                    f"{kind} while lock '{label}' (acquired line "
                    f"{held_line}) is held; cooperative workers must "
                    "not block under a lock",
                )
            for callee, line, held in fn["calls"]:
                if not held:
                    continue
                reached = transitive_blocking(model, callee, memo)
                label, held_line = held[0]
                for kind, chain in sorted(reached.items()):
                    yield Violation(
                        self.name, fn["path"], line,
                        f"call reaches {kind} while lock '{label}' "
                        f"(acquired line {held_line}) is held: "
                        + render_chain(chain),
                    )


class SharedStateAuditRule:
    """Module-level mutables reachable from both the query path and
    the continuous/chaos paths must be guarded or annotated.

    A module-level accumulator (``{}``, ``[]``, ``set()``,
    ``defaultdict(...)``, any ``*Cache``/``*LRU``/``*Registry``
    constructor) in a module imported — transitively — by both a
    query/SQL module and a continuous/chaos module is state shared
    across services with no lock the analyzer knows about.  Populated
    literal lookup tables are read-only by convention and not flagged.
    Deliberate shared caches are annotated at the definition site with
    ``# lint: allow(shared-state)`` (or ``allow(shared-state-audit)``)
    plus a one-line justification.
    """

    name = "shared-state-audit"
    program = True
    #: The ISSUE-era annotation spelling is honoured alongside the
    #: rule name itself.
    allow_aliases = ("shared-state",)

    _QUERY_SEGMENTS = ("query", "sql")
    _BACKGROUND_SEGMENTS = ("continuous", "chaos")

    def _side_roots(self, model, fragments) -> list[str]:
        return [
            name for name in sorted(model.modules)
            if any(fragment in segment
                   for segment in name.split(".")
                   for fragment in fragments)
        ]

    def check_program(self, model) -> Iterator[Violation]:
        from .lockgraph import import_chain, reachable_modules

        query_roots = self._side_roots(model, self._QUERY_SEGMENTS)
        background_roots = self._side_roots(
            model, self._BACKGROUND_SEGMENTS
        )
        if not query_roots or not background_roots:
            return
        query_reached, query_parent = reachable_modules(
            model, query_roots
        )
        background_reached, background_parent = reachable_modules(
            model, background_roots
        )
        for name in sorted(query_reached & background_reached):
            info = model.modules[name]
            if not info["mutable_globals"]:
                continue
            via_query = " -> ".join(import_chain(query_parent, name))
            via_background = " -> ".join(
                import_chain(background_parent, name)
            )
            for global_name, line, description in \
                    info["mutable_globals"]:
                yield Violation(
                    self.name, info["path"], line,
                    f"module-level mutable {global_name} = "
                    f"{description} is reachable from the query path "
                    f"({via_query}) and the continuous/chaos path "
                    f"({via_background}); guard it with a known lock "
                    "or annotate # lint: allow(shared-state)",
                )


ALL_RULES = (
    DeterminismRule(),
    LockPairingRule(),
    BillingRule(),
    AttemptTokenRule(),
    CompiledScanRule(),
    LockOrderRule(),
    BlockingUnderLockRule(),
    SharedStateAuditRule(),
)


def rule_names() -> list[str]:
    return [rule.name for rule in ALL_RULES]


def rules_by_name(names: list[str] | None):
    """The selected rules; unknown names raise ``ValueError``."""
    if not names:
        return ALL_RULES
    by_name = {rule.name: rule for rule in ALL_RULES}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise ValueError(
            f"unknown rule(s) {missing}; known: {sorted(by_name)}"
        )
    return tuple(by_name[name] for name in names)
