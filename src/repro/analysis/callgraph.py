"""Interprocedural call-graph construction for the analysis suite.

The per-file rules in :mod:`repro.analysis.rules` are deliberately
lexical — they see one ``ast.Module`` at a time.  The concurrency rules
(lock-order, blocking-under-lock, shared-state-audit) cannot work that
way: a lock acquired in ``query/service.py`` and a second lock acquired
three calls deeper in ``kvstore/store.py`` only form an ordering edge
when the *whole-program* call structure is visible.  This module builds
that view:

* every analysed file becomes a :class:`ModuleInfo` (its import edges,
  top-level functions/classes, and module-level mutable globals);
* every function and method becomes a :class:`FunctionNode`;
* a resolution pass turns call expressions into edges between nodes,
  understanding — within the analysed file set —

  - plain calls to module-level and nested functions,
  - ``from m import f`` / ``import m`` (including relative imports),
  - ``self.method()`` dispatch through the enclosing class and its
    bases (class attribution),
  - ``self.attr.method()`` where ``attr``'s class is evident from an
    ``__init__`` assignment or a class-body annotation,
  - ``var.method()`` where ``var``'s class is evident from a parameter
    annotation or a local ``var = ClassName(...)`` assignment, and
  - ``ClassName(...)`` constructor calls (resolved to ``__init__``).

Calls whose receiver type cannot be attributed are left unresolved —
the analysis under-approximates the call graph rather than inventing
edges, so every reported witness path is a chain of real call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Bound on inheritance / symbol chasing so odd inputs cannot loop.
_RESOLVE_DEPTH = 16

#: Mutable-global value shapes that start empty and accumulate: the
#: cross-service caches the shared-state-audit rule exists for.
#: Populated literal tables (``KEYWORDS = {...}``) are read-only by
#: convention and deliberately not matched.
_EMPTY_MUTABLE_CALLS = {
    "dict", "list", "set", "deque", "defaultdict", "Counter",
    "OrderedDict", "bytearray",
}
#: Constructor-name fragments that mark a value as a shared cache or
#: registry regardless of arguments.
_CACHE_NAME_FRAGMENTS = ("Cache", "LRU", "Lru", "Registry")


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and attributed fields."""

    qualname: str
    module: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> dotted type text as written (resolved lazily).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionNode:
    """One function or method, with its resolved outgoing calls."""

    qualname: str
    module: str
    path: str
    name: str
    lineno: int
    node: ast.AST
    class_qualname: str | None = None
    #: ``id(ast.Call)`` -> callee qualname, filled by the link pass.
    calls_by_node: dict[int, str] = field(default_factory=dict)

    def calls(self) -> list[tuple[str, int]]:
        """Sorted ``(callee, line)`` pairs of resolved call sites."""
        pairs = []
        for call_id, callee in self.calls_by_node.items():
            del call_id
            pairs.append(callee)
        del pairs
        out = [(callee, node.lineno)
               for node, callee in self._call_nodes()]
        out.sort(key=lambda pair: (pair[1], pair[0]))
        return out

    def _call_nodes(self) -> list[tuple[ast.Call, str]]:
        resolved = []
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Call) and id(sub) in self.calls_by_node:
                resolved.append((sub, self.calls_by_node[id(sub)]))
        return resolved


@dataclass
class ModuleInfo:
    """Module-level facts: imports, definitions, mutable globals."""

    name: str
    path: str
    #: Local binding -> dotted target ("pkg.mod" or "pkg.mod.symbol").
    aliases: dict[str, str] = field(default_factory=dict)
    #: Candidate imported dotted names (resolved against the program's
    #: module table when the import graph is queried).
    import_targets: list[str] = field(default_factory=list)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    #: ``(name, line, value description)`` of module-level mutable
    #: accumulators (empty containers and cache/registry constructors).
    mutable_globals: list[tuple[str, int, str]] = field(
        default_factory=list
    )


@dataclass
class Program:
    """The whole-program view the concurrency passes consume."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def import_edges(self) -> dict[str, list[str]]:
        """Module -> imported modules, restricted to analysed modules."""
        known = self.modules
        edges: dict[str, list[str]] = {}
        for name in sorted(known):
            targets: set[str] = set()
            for dotted in known[name].import_targets:
                resolved = _longest_module_prefix(known, dotted)
                if resolved is not None and resolved != name:
                    targets.add(resolved)
            edges[name] = sorted(targets)
        return edges


def module_name_for(path: Path) -> str:
    """Dotted module name derived from package structure on disk.

    Walks up while ``__init__.py`` exists, so ``src/repro/sql/ast.py``
    becomes ``repro.sql.ast`` and a loose fixture file becomes its
    stem.
    """
    path = Path(path)
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    for _ in range(_RESOLVE_DEPTH):
        if not (parent / "__init__.py").exists():
            break
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def build_program(sources: list[tuple[str, ast.Module]]) -> Program:
    """Build the call graph over ``(display_path, tree)`` pairs."""
    program = Program()
    # Pass 1: index every module's definitions.
    for display, tree in sources:
        module = module_name_for(Path(display))
        info = ModuleInfo(name=module, path=display)
        program.modules[module] = info
        _index_module(program, info, tree, display)
    # Pass 2: resolve every function's call expressions.
    for qualname in sorted(program.functions):
        _link_function(program, program.functions[qualname])
    return program


# -- indexing --------------------------------------------------------------


def _index_module(program: Program, info: ModuleInfo, tree: ast.Module,
                  display: str) -> None:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{info.name}.{stmt.name}"
            info.functions[stmt.name] = qual
            _register_function(program, info, display, stmt, qual, None)
        elif isinstance(stmt, ast.ClassDef):
            _index_class(program, info, display, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            _index_global(info, stmt)
    _index_imports(info, tree)


def _index_class(program: Program, info: ModuleInfo, display: str,
                 node: ast.ClassDef) -> None:
    qual = f"{info.name}.{node.name}"
    info.classes[node.name] = qual
    cls = ClassInfo(qualname=qual, module=info.name)
    program.classes[qual] = cls
    for base in node.bases:
        dotted = _dotted_text(base)
        if dotted is not None:
            cls.bases.append(dotted)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_qual = f"{qual}.{stmt.name}"
            cls.methods[stmt.name] = method_qual
            _register_function(
                program, info, display, stmt, method_qual, qual
            )
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            annotated = _annotation_text(stmt.annotation)
            if annotated is not None:
                cls.attr_types.setdefault(stmt.target.id, annotated)
    # Attribute the types of ``self.<attr>`` fields from assignments in
    # any method body (``__init__`` first, so it wins ties).
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.AnnAssign):
                target, value = sub.target, sub.value
                annotated = _annotation_text(sub.annotation)
                if _is_self_attr(target) and annotated is not None:
                    cls.attr_types.setdefault(target.attr, annotated)
                continue
            if not isinstance(sub, ast.Assign) or \
                    not isinstance(sub.value, ast.Call):
                continue
            ctor = _dotted_text(sub.value.func)
            if ctor is None:
                continue
            for target in sub.targets:
                if _is_self_attr(target):
                    cls.attr_types.setdefault(target.attr, ctor)


def _is_self_attr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _register_function(program: Program, info: ModuleInfo, display: str,
                       node: ast.AST, qualname: str,
                       class_qualname: str | None) -> None:
    fn = FunctionNode(
        qualname=qualname, module=info.name, path=display,
        name=node.name, lineno=node.lineno, node=node,
        class_qualname=class_qualname,
    )
    program.functions[qualname] = fn
    # Nested defs become their own nodes, addressable from the parent.
    for stmt in ast.walk(node):
        if stmt is node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_qual = f"{qualname}.{stmt.name}"
            if nested_qual not in program.functions:
                program.functions[nested_qual] = FunctionNode(
                    qualname=nested_qual, module=info.name, path=display,
                    name=stmt.name, lineno=stmt.lineno, node=stmt,
                    class_qualname=class_qualname,
                )


def _index_imports(info: ModuleInfo, tree: ast.Module) -> None:
    """Collect imports module-wide, skipping TYPE_CHECKING blocks.

    Function-local imports are registered as module-wide aliases — an
    over-approximation that matches how this codebase uses them (lazy
    imports of fixed modules).
    """
    skip: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            for sub in node.body:
                for inner in ast.walk(sub):
                    skip.add(id(inner))
    for node in ast.walk(tree):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                binding = alias.asname or target.split(".")[0]
                info.aliases.setdefault(
                    binding,
                    target if alias.asname else target.split(".")[0],
                )
                info.import_targets.append(target)
        elif isinstance(node, ast.ImportFrom):
            base = _relative_base(info.name, node.level, node.module)
            if base is None:
                continue
            info.import_targets.append(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                info.aliases.setdefault(alias.asname or alias.name,
                                        target)
                info.import_targets.append(target)


def _is_type_checking(test: ast.expr) -> bool:
    dotted = _dotted_text(test)
    return dotted is not None and dotted.endswith("TYPE_CHECKING")


def _relative_base(module: str, level: int, target: str | None
                   ) -> str | None:
    if level == 0:
        return target
    parts = module.split(".")
    if level > len(parts):
        return None
    base_parts = parts[:-level] if level < len(parts) else []
    if target:
        base_parts = base_parts + target.split(".")
    return ".".join(base_parts) if base_parts else None


def _index_global(info: ModuleInfo, stmt: ast.stmt) -> None:
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    else:
        targets, value = [stmt.target], stmt.value
    if value is None:
        return
    kind = _mutable_value_kind(value)
    if kind is None:
        return
    for target in targets:
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            continue
        info.mutable_globals.append((name, stmt.lineno, kind))


def _mutable_value_kind(value: ast.expr) -> str | None:
    """Describe ``value`` when it is an accumulating mutable; else None."""
    if isinstance(value, (ast.Dict, ast.Set)) and not _literal_entries(
        value
    ):
        return "{}" if isinstance(value, ast.Dict) else "set literal"
    if isinstance(value, ast.List) and not value.elts:
        return "[]"
    if isinstance(value, ast.Call):
        name = _dotted_text(value.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        if tail in _EMPTY_MUTABLE_CALLS and not value.args:
            return f"{tail}()"
        if tail in _EMPTY_MUTABLE_CALLS and tail == "defaultdict":
            return f"{tail}(...)"
        if any(fragment in tail for fragment in _CACHE_NAME_FRAGMENTS):
            return f"{tail}(...)"
    return None


def _literal_entries(value: ast.expr) -> bool:
    if isinstance(value, ast.Dict):
        return bool(value.keys)
    if isinstance(value, ast.Set):
        return bool(value.elts)
    return False


# -- call resolution -------------------------------------------------------


def _link_function(program: Program, fn: FunctionNode) -> None:
    info = program.modules[fn.module]
    cls = (program.classes.get(fn.class_qualname)
           if fn.class_qualname else None)
    local_types = _infer_local_types(program, info, cls, fn)
    for stmt in _own_statements(fn.node):
        if not isinstance(stmt, ast.Call):
            continue
        callee = _resolve_call(program, info, cls, fn, local_types,
                               stmt.func)
        if callee is not None:
            fn.calls_by_node[id(stmt)] = callee


def _own_statements(node: ast.AST):
    """Walk a function body excluding nested def/class subtrees."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _infer_local_types(program: Program, info: ModuleInfo,
                       cls: ClassInfo | None,
                       fn: FunctionNode) -> dict[str, str]:
    """Map local names to class qualnames where statically evident."""
    types: dict[str, str] = {}
    args = getattr(fn.node, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            annotated = _annotation_text(arg.annotation)
            if annotated is None:
                continue
            resolved = _resolve_class_name(program, info, annotated)
            if resolved is not None:
                types[arg.arg] = resolved
    for stmt in _own_statements(fn.node):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if isinstance(value, ast.Call):
            ctor = _dotted_text(value.func)
            if ctor is None:
                continue
            resolved = _resolve_class_name(program, info, ctor)
            if resolved is not None:
                types[target.id] = resolved
        elif _is_self_attr(value) and cls is not None:
            attributed = _attr_type(program, cls.qualname, value.attr)
            if attributed is not None:
                types[target.id] = attributed
    return types


def _resolve_call(program: Program, info: ModuleInfo,
                  cls: ClassInfo | None, fn: FunctionNode,
                  local_types: dict[str, str],
                  func: ast.expr) -> str | None:
    dotted = _dotted_text(func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    head = parts[0]
    if head == "self" and cls is not None:
        if len(parts) == 2:
            return _resolve_method(program, cls.qualname, parts[1])
        if len(parts) == 3:
            attributed = _attr_type(program, cls.qualname, parts[1])
            if attributed is not None:
                return _resolve_method(program, attributed, parts[2])
        return None
    if len(parts) == 1:
        nested = f"{fn.qualname}.{head}"
        if nested in program.functions:
            return nested
        if head in info.functions:
            return info.functions[head]
        if head in info.classes:
            return _resolve_method(program, info.classes[head],
                                   "__init__")
        target = info.aliases.get(head)
        if target is not None:
            return _resolve_symbol(program, target)
        return None
    receiver_type = local_types.get(head)
    if receiver_type is not None:
        if len(parts) == 2:
            return _resolve_method(program, receiver_type, parts[1])
        if len(parts) == 3:
            attributed = _attr_type(program, receiver_type, parts[1])
            if attributed is not None:
                return _resolve_method(program, attributed, parts[2])
        return None
    if head in info.classes and len(parts) == 2:
        return _resolve_method(program, info.classes[head], parts[1])
    target = info.aliases.get(head)
    if target is not None:
        return _resolve_symbol(program,
                               ".".join([target] + parts[1:]))
    return None


def _resolve_symbol(program: Program, dotted: str) -> str | None:
    """Resolve a dotted name to a function node across modules."""
    if dotted in program.functions:
        return dotted
    prefix = _longest_module_prefix(program.modules, dotted)
    if prefix is None:
        return None
    rest = dotted[len(prefix):].lstrip(".").split(".") if \
        len(dotted) > len(prefix) else []
    info = program.modules[prefix]
    if len(rest) == 1:
        name = rest[0]
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return _resolve_method(program, info.classes[name],
                                   "__init__")
        # One more alias hop (``from .a import f`` re-exports).
        target = info.aliases.get(name)
        if target is not None and target != dotted:
            return _resolve_symbol(program, target)
    elif len(rest) == 2 and rest[0] in info.classes:
        return _resolve_method(program, info.classes[rest[0]], rest[1])
    return None


def _longest_module_prefix(modules: dict[str, ModuleInfo],
                           dotted: str) -> str | None:
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in modules:
            return candidate
    return None


def _resolve_method(program: Program, class_qualname: str,
                    method: str, depth: int = 0) -> str | None:
    """Look ``method`` up on the class, then its bases (linearised)."""
    if depth > _RESOLVE_DEPTH:
        return None
    cls = program.classes.get(class_qualname)
    if cls is None:
        return None
    if method in cls.methods:
        return cls.methods[method]
    info = program.modules.get(cls.module)
    for base in cls.bases:
        base_qual = (_resolve_class_name(program, info, base)
                     if info is not None else None)
        if base_qual is None:
            continue
        found = _resolve_method(program, base_qual, method, depth + 1)
        if found is not None:
            return found
    return None


def _resolve_class_name(program: Program, info: ModuleInfo,
                        dotted: str) -> str | None:
    """Resolve a dotted class reference in ``info``'s namespace."""
    parts = dotted.split(".")
    head = parts[0]
    if len(parts) == 1 and head in info.classes:
        return info.classes[head]
    target = info.aliases.get(head)
    if target is not None:
        full = ".".join([target] + parts[1:])
        if full in program.classes:
            return full
        prefix = _longest_module_prefix(program.modules, full)
        if prefix is not None:
            rest = full[len(prefix):].lstrip(".")
            owner = program.modules[prefix]
            if rest in owner.classes:
                return owner.classes[rest]
    if dotted in program.classes:
        return dotted
    return None


def _attr_type(program: Program, class_qualname: str,
               attr: str) -> str | None:
    """Class qualname of ``self.<attr>`` on ``class_qualname``, if
    attributed."""
    for _ in range(_RESOLVE_DEPTH):
        cls = program.classes.get(class_qualname)
        if cls is None:
            return None
        raw = cls.attr_types.get(attr)
        if raw is not None:
            info = program.modules.get(cls.module)
            if info is None:
                return None
            return _resolve_class_name(program, info, raw)
        # Walk single-inheritance chains for inherited attributes.
        if not cls.bases:
            return None
        info = program.modules.get(cls.module)
        if info is None:
            return None
        base = _resolve_class_name(program, info, cls.bases[0])
        if base is None:
            return None
        class_qualname = base
    return None


def _dotted_text(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_text(node: ast.expr) -> str | None:
    """The dotted class text of an annotation (``Foo``, ``m.Foo``,
    ``"Foo"``, ``Foo | None``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_text(node.left)
        if left is not None:
            return left
        return _annotation_text(node.right)
    if isinstance(node, ast.Subscript):
        return None  # generics name containers, not lockable receivers
    return _dotted_text(node)
