"""Runtime sanitizers: invariant detectors armed while tests run.

The lint rules (:mod:`repro.analysis.rules`) catch what is visible in
the source; these sanitizers catch what only shows up at run time.
:class:`SanitizerRuntime` wraps live objects of one
:class:`~repro.env.Environment` — no behavioural change, pure
detection:

* **snapshot immutability** — a ``write_instance`` or ``drop_snapshot``
  against an already-committed, still-queryable snapshot id is the
  torn-read bug snapshot isolation promises away (§VII); optionally,
  content fingerprints taken at commit are re-checked at
  :meth:`SanitizerRuntime.verify` to catch in-place mutation that
  bypasses the store API (the shared-arrangements reader guarantee);
* **lock leaks** — a query that completes while still holding key
  locks would starve every later writer of those keys;
* **billing / isolation classification** — a live (read-uncommitted)
  query must never be accounted as a snapshot read or vice versa, and
  a query that shipped rows must have billed shipping bytes;
* **dead-node scheduling** — work submitted to a pool or store server
  of a node that is not alive would execute on a ghost;
* **lockdep** — the runtime mirror of the static lock-order rule:
  every (held class, acquired class) lock pair is recorded at
  acquisition, and the first pair observed in *both* orders is
  reported with both stacks — a potential deadlock even if this run's
  timing got lucky.  Edge and violation counts roll into
  :class:`~repro.observability.ClusterReport` as
  ``lock_order_edges_observed`` / ``lockdep_violations``;
* **index coherence** — every secondary index must agree with its
  backing partitions at verification time, committed snapshot versions
  must have frozen index registries, and any mutation of a frozen
  registry is reported the instant it is attempted;
* **sketch coherence** — every probabilistic summary (count-min, HLL,
  reservoir) must be rebuildable bit-identically from its backing
  partitions, committed snapshot versions must have frozen sketch
  registries, and any mutation of a frozen sketch registry is reported
  the instant it is attempted.

Violations either raise :class:`~repro.errors.SanitizerError`
immediately (``fail_fast``) or accumulate on the runtime.  The test
suite arms the cheap detectors for every environment through an
autouse fixture (see ``tests/conftest.py``); the CI smoke run arms
everything including fingerprints.
"""

from __future__ import annotations

import hashlib
import traceback
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from ..config import SanitizerConfig
from ..errors import SanitizerError
from ..state.isolation import IsolationLevel

if TYPE_CHECKING:  # pragma: no cover
    from ..env import Environment

#: Default config consulted by ``Environment`` when none is passed
#: (set by the pytest autouse fixture, ``None`` in production runs).
_default_config: SanitizerConfig | None = None

#: Runtimes installed since the last drain (test-teardown bookkeeping).
# lint: allow(shared-state) append/drain bookkeeping list owned by the
# pytest autouse fixture; single event-loop thread, no lock needed.
_runtimes: list["SanitizerRuntime"] = []


def set_default_config(config: SanitizerConfig | None) -> None:
    """Set the config future ``Environment``s adopt when not given one."""
    global _default_config
    _default_config = config


def default_config() -> SanitizerConfig | None:
    return _default_config


def active_runtimes() -> list["SanitizerRuntime"]:
    return list(_runtimes)


def drain_runtimes() -> list["SanitizerRuntime"]:
    """Return and forget every runtime installed since the last drain."""
    drained = list(_runtimes)
    _runtimes.clear()
    return drained


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected invariant violation."""

    kind: str
    message: str

    def format(self) -> str:
        return f"[{self.kind}] {self.message}"


class SanitizerRuntime:
    """Detection wrappers around one environment's moving parts."""

    def __init__(self, env: "Environment", config: SanitizerConfig,
                 from_default: bool = False) -> None:
        config.validate()
        self.env = env
        self.config = config
        #: Whether this runtime was armed by the process-wide default
        #: (autouse fixture) rather than an explicit config — fixtures
        #: only assert on default-armed runtimes, so tests that verify
        #: the sanitizers themselves can violate invariants on purpose.
        self.from_default = from_default
        self.violations: list[SanitizerViolation] = []
        #: (table name, ssid) -> content hash taken at commit time.
        self._fingerprints: dict[tuple[str, int], str] = {}
        #: Lock classes currently held, per ``id(owner)`` (lockdep).
        self._lockdep_held: dict[int, Counter] = {}
        #: Request-time hold snapshots of still-queued acquires.
        self._lockdep_pending: dict[
            tuple[Hashable, int], tuple[str, ...]
        ] = {}
        #: (held class, acquired class) -> stack summary at first sight.
        self._lockdep_edges: dict[tuple[str, str], str] = {}

    @property
    def lock_order_edges_observed(self) -> int:
        """Distinct (held, acquired) lock-class pairs seen so far."""
        return len(self._lockdep_edges)

    @property
    def lockdep_violations(self) -> int:
        """Lock-order inversions detected by the lockdep sanitizer."""
        return sum(1 for v in self.violations if v.kind == "lockdep")

    # -- recording ---------------------------------------------------------

    def _record(self, kind: str, message: str) -> None:
        violation = SanitizerViolation(kind, message)
        self.violations.append(violation)
        if self.config.fail_fast:
            raise SanitizerError(violation.format())

    # -- installation ------------------------------------------------------

    def install(self) -> "SanitizerRuntime":
        if self.config.snapshot_immutability:
            self._install_snapshot_guard()
        if self.config.lock_leaks or self.config.billing:
            self._install_query_guard()
        if self.config.dead_node_scheduling:
            self._install_dead_node_guard()
        if self.config.lockdep:
            self._install_lockdep()
        _runtimes.append(self)
        return self

    # -- snapshot immutability ---------------------------------------------

    def _install_snapshot_guard(self) -> None:
        store = self.env.store
        for name in store.snapshot_table_names():
            self._wrap_snapshot_table(name, store.get_snapshot_table(name))
        original_register = store.register_snapshot_table

        def register(name: str, table: object) -> None:
            original_register(name, table)
            self._wrap_snapshot_table(name, table)

        store.register_snapshot_table = register  # type: ignore[assignment]
        if self.config.snapshot_fingerprints:
            store.add_commit_listener(self._fingerprint_commit)

    def _wrap_snapshot_table(self, name: str, table: object) -> None:
        # Tolerate partial table APIs (tests register minimal fakes):
        # guard whichever of the mutating methods the table exposes.
        store = self.env.store
        original_write = getattr(table, "write_instance", None)
        original_drop = getattr(table, "drop_snapshot", None)
        set_hook = getattr(table, "set_index_mutation_hook", None)
        if set_hook is not None:
            set_hook(lambda message, name=name: self._record(
                "frozen-index", f"snapshot table {name!r}: {message}"
            ))
        set_sketch_hook = getattr(table, "set_sketch_mutation_hook",
                                  None)
        if set_sketch_hook is not None:
            set_sketch_hook(lambda message, name=name: self._record(
                "frozen-sketch", f"snapshot table {name!r}: {message}"
            ))

        if original_write is not None:
            def write_instance(ssid, *args, **kwargs):
                if ssid in store.available_ssids():
                    self._record(
                        "snapshot-mutation",
                        f"write to snapshot table {name!r} for "
                        f"committed ssid {ssid}: committed versions "
                        "are immutable",
                    )
                return original_write(ssid, *args, **kwargs)

            table.write_instance = write_instance  # type: ignore

        if original_drop is not None:
            def drop_snapshot(ssid):
                if ssid in store.available_ssids():
                    self._record(
                        "snapshot-mutation",
                        f"drop of snapshot {ssid} from {name!r} while "
                        "it is still queryable (retire it first)",
                    )
                return original_drop(ssid)

            table.drop_snapshot = drop_snapshot  # type: ignore

    def _fingerprint_commit(self, ssid: int) -> None:
        store = self.env.store
        for name in store.snapshot_table_names():
            table = store.get_snapshot_table(name)
            if not table.has_snapshot(ssid):
                continue
            self._fingerprints[(name, ssid)] = _content_hash(table, ssid)

    # -- query completion (locks + billing) --------------------------------

    def _install_query_guard(self) -> None:
        for service in self.env.query_services:
            self._wrap_service(service)
        self.env.query_services = _ServiceRegistry(
            self, self.env.query_services
        )

    def _wrap_service(self, service) -> None:
        original_finish = service._finish_execution

        def finish(execution, result, error) -> None:
            was_done = execution.done
            original_finish(execution, result, error)
            if was_done:
                return  # duplicate completion: nothing new happened
            if self.config.lock_leaks:
                self._check_lock_leak(service, execution)
            if self.config.billing:
                self._check_billing(execution)

        service._finish_execution = finish

    def _check_lock_leak(self, service, execution) -> None:
        locks = service.store.locks
        leaked = [
            key for key in locks.held_keys()
            if locks.holder_of(key) is execution
        ]
        if leaked:
            self._record(
                "lock-leak",
                f"query {execution.qid} completed still holding "
                f"{len(leaked)} key lock(s), e.g. {leaked[0]!r}",
            )

    def _check_billing(self, execution) -> None:
        if execution.error is not None:
            return  # aborted queries may stop before resolution/billing
        resolved_snapshot = (
            execution.snapshot_id is not None
            or execution.snapshot_versions is not None
        )
        snapshot_billed = execution.isolation.at_least(
            IsolationLevel.SNAPSHOT
        )
        if snapshot_billed and not resolved_snapshot:
            self._record(
                "billing-isolation",
                f"query {execution.qid} billed as a snapshot read "
                f"({execution.isolation.value}) but resolved no "
                "snapshot id",
            )
        elif resolved_snapshot and not snapshot_billed:
            self._record(
                "billing-isolation",
                f"query {execution.qid} read snapshot "
                f"{execution.snapshot_id} under read-uncommitted "
                "accounting",
            )
        if execution.rows_shipped > 0 and execution.bytes_shipped <= 0:
            self._record(
                "unbilled-ship",
                f"query {execution.qid} shipped "
                f"{execution.rows_shipped} rows but billed zero bytes",
            )

    # -- dead-node scheduling ----------------------------------------------

    def _install_dead_node_guard(self) -> None:
        for node in self.env.cluster.nodes:
            self._wrap_submitter(node, node.processing_pool)
            self._wrap_submitter(node, node.query_pool)
            for server in node.store_servers:
                self._wrap_submitter(node, server)

    def _wrap_submitter(self, node, resource) -> None:
        original_submit = resource.submit

        def submit(*args, **kwargs):
            if not node.alive:
                self._record(
                    "dead-node-schedule",
                    f"work submitted to {resource.name!r} while node "
                    f"{node.node_id} is down",
                )
            return original_submit(*args, **kwargs)

        resource.submit = submit  # type: ignore[assignment]

    # -- lockdep: runtime lock-order inversion detection -------------------

    @staticmethod
    def _lock_class(key: Hashable) -> str:
        """The lockdep *class* of a key: its table-name component.

        Keys are ``(table, partition_key)`` tuples, so ordering is
        tracked between tables rather than between the O(n²) pairs of
        individual keys a repeatable-read scan holds (within-table
        order is canonicalised at the acquisition sites instead —
        exactly how kernel lockdep collapses lock instances into
        classes).
        """
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return repr(key)

    @staticmethod
    def _stack_summary() -> str:
        """Compact innermost-first summary of the current call stack."""
        frames = traceback.extract_stack()[:-2]
        return " <- ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}:"
            f"{frame.name}"
            for frame in reversed(frames[-8:])
        )

    def _install_lockdep(self) -> None:
        """Wrap the lock table to record acquisition order.

        Every successful acquisition records one edge per lock class
        the owner already held when it *requested* the lock (for FIFO
        waiters that is the request-time snapshot, stashed in
        ``_lockdep_pending`` — by grant time the owner's holdings may
        have changed).  The first pair observed in both orders is
        reported with both stacks: an inversion that can deadlock on a
        timing this run did not happen to hit.
        """
        locks = self.env.store.locks
        held = self._lockdep_held
        pending = self._lockdep_pending
        original_try = locks.try_acquire
        original_acquire = locks.acquire
        original_release = locks.release

        def snapshot(owner) -> tuple[str, ...]:
            counter = held.get(id(owner))
            if not counter:
                return ()
            return tuple(sorted(counter))

        def bump(owner, key) -> None:
            held.setdefault(id(owner), Counter())[
                self._lock_class(key)
            ] += 1

        def drop(owner, key) -> None:
            counter = held.get(id(owner))
            if counter is None:
                return
            cls = self._lock_class(key)
            if counter[cls] > 0:
                counter[cls] -= 1
            if counter[cls] <= 0:
                del counter[cls]
            if not counter:
                del held[id(owner)]

        def note_acquired(key, held_classes) -> None:
            cls = self._lock_class(key)
            for holder_cls in held_classes:
                if holder_cls == cls:
                    continue
                edge = (holder_cls, cls)
                if edge not in self._lockdep_edges:
                    self._lockdep_edges[edge] = self._stack_summary()
                inverse = self._lockdep_edges.get((cls, holder_cls))
                if inverse is not None:
                    self._record(
                        "lockdep",
                        f"lock-order inversion: {cls!r} acquired "
                        f"while {holder_cls!r} is held [stack: "
                        f"{self._lockdep_edges[edge]}] but "
                        f"{holder_cls!r} was previously acquired "
                        f"while {cls!r} was held [stack: {inverse}]; "
                        "the two orders can deadlock",
                    )

        def try_acquire(key, owner):
            ok = original_try(key, owner)
            if ok:
                note_acquired(key, snapshot(owner))
                bump(owner, key)
            return ok

        def acquire(key, owner, granted=None):
            before = snapshot(owner)
            # An immediate grant goes through the wrapped try_acquire
            # (instance attribute), which records the edge itself.
            ok = original_acquire(key, owner, granted)
            if not ok:
                pending[(key, id(owner))] = before
            return ok

        def release(key, owner):
            original_release(key, owner)  # raises before bookkeeping
            drop(owner, key)
            # A released key cannot have a live queued request from
            # the same owner; drop any stale snapshot (late grants to
            # finished queries release from inside their callback).
            pending.pop((key, id(owner)), None)
            new_holder = locks.holder_of(key)
            if new_holder is not None and new_holder is not owner:
                queued = pending.pop((key, id(new_holder)), None)
                if queued is not None:
                    note_acquired(key, queued)
                    bump(new_holder, key)

        locks.try_acquire = try_acquire  # type: ignore[assignment]
        locks.acquire = acquire  # type: ignore[assignment]
        locks.release = release  # type: ignore[assignment]

    # -- verification ------------------------------------------------------

    def verify(self) -> list[SanitizerViolation]:
        """End-of-run checks: fingerprints and orphaned locks.

        Returns all violations recorded so far (raising on a fresh one
        first when ``fail_fast``).
        """
        store = self.env.store
        if self.config.snapshot_fingerprints:
            available = set(store.available_ssids())
            for (name, ssid), expected in sorted(
                self._fingerprints.items()
            ):
                if ssid not in available:
                    continue  # retired since commit: nothing to check
                table = store.get_snapshot_table(name)
                if not table.has_snapshot(ssid):
                    continue
                if _content_hash(table, ssid) != expected:
                    self._record(
                        "torn-snapshot",
                        f"snapshot table {name!r} ssid {ssid} content "
                        "changed after commit (in-place mutation "
                        "bypassed the store API)",
                    )
        if self.config.lock_leaks:
            for key in store.locks.held_keys():
                holder = store.locks.holder_of(key)
                if getattr(holder, "done", False):
                    self._record(
                        "lock-leak",
                        f"lock on {key!r} still held by finished "
                        f"query {getattr(holder, 'qid', holder)!r}",
                    )
        if self.config.index_coherence:
            self._check_index_coherence()
        if self.config.sketch_coherence:
            self._check_sketch_coherence()
        return list(self.violations)

    def _check_index_coherence(self) -> None:
        """Every secondary index must agree with its backing store, and
        committed snapshot versions must have frozen indexes."""
        store = self.env.store
        for name in store.live_table_names():
            table = store.get_live_table(name)
            errors = getattr(table, "index_coherence_errors", None)
            if errors is None:
                continue
            for problem in errors():
                self._record(
                    "index-coherence",
                    f"live table {name!r}: {problem}",
                )
        available = store.available_ssids()
        for name in store.snapshot_table_names():
            table = store.get_snapshot_table(name)
            if not getattr(table, "index_count", 0):
                continue
            for ssid in available:
                if not table.has_snapshot(ssid):
                    continue
                if not table.index_ready(ssid):
                    self._record(
                        "frozen-index",
                        f"snapshot table {name!r} ssid {ssid} committed "
                        "but its indexes were never frozen",
                    )
                    continue
                for problem in table.index_coherence_errors(ssid):
                    self._record(
                        "index-coherence",
                        f"snapshot table {name!r} ssid {ssid}: "
                        f"{problem}",
                    )

    def _check_sketch_coherence(self) -> None:
        """Every sketch must be rebuildable bit-identically from its
        backing store, and committed versions must have frozen
        sketches."""
        store = self.env.store
        for name in store.live_table_names():
            table = store.get_live_table(name)
            errors = getattr(table, "sketch_coherence_errors", None)
            if errors is None:
                continue
            for problem in errors():
                self._record(
                    "sketch-coherence",
                    f"live table {name!r}: {problem}",
                )
        available = store.available_ssids()
        for name in store.snapshot_table_names():
            table = store.get_snapshot_table(name)
            if not getattr(table, "sketch_count", 0):
                continue
            for ssid in available:
                if not table.has_snapshot(ssid):
                    continue
                if not table.sketch_ready(ssid):
                    self._record(
                        "frozen-sketch",
                        f"snapshot table {name!r} ssid {ssid} committed "
                        "but its sketches were never frozen",
                    )
                    continue
                for problem in table.sketch_coherence_errors(ssid):
                    self._record(
                        "sketch-coherence",
                        f"snapshot table {name!r} ssid {ssid}: "
                        f"{problem}",
                    )


class _ServiceRegistry(list):
    """``env.query_services`` replacement wrapping services on append."""

    def __init__(self, runtime: SanitizerRuntime, services) -> None:
        super().__init__(services)
        self._runtime = runtime

    def append(self, service) -> None:
        self._runtime._wrap_service(service)
        super().append(service)


def _content_hash(table, ssid: int) -> str:
    """Order-independent digest of one snapshot version's rows."""
    digest = hashlib.sha256()
    for row in sorted(repr(sorted(row.items()))
                      for row in table.rows_for_snapshot(ssid)):
        digest.update(row.encode("utf-8"))
    return digest.hexdigest()


def install_sanitizers(env: "Environment",
                       config: SanitizerConfig | None = None,
                       from_default: bool = False) -> SanitizerRuntime:
    """Arm ``config``'s sanitizers on ``env``; returns the runtime."""
    if config is None:
        config = SanitizerConfig(enabled=True)
    runtime = SanitizerRuntime(env, config, from_default=from_default)
    return runtime.install()
