"""``python -m repro.analysis`` — the lint CLI and the sanitizer smoke.

Usage::

    python -m repro.analysis lint                  # whole repo, baseline
    python -m repro.analysis lint --rule determinism
    python -m repro.analysis lint --path src/repro/query
    python -m repro.analysis lint --write-baseline
    python -m repro.analysis smoke                 # sanitized chaos run

``lint`` exits 1 when any non-baselined violation remains; ``smoke``
runs a chaos workload with every runtime sanitizer enabled (fail-fast)
and exits 1 on any detected invariant violation.  Both are wired into
CI as the blocking ``analysis`` job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .lint import (
    filter_baselined,
    lint_paths,
    load_baseline,
    write_baseline,
)
from .rules import rule_names, rules_by_name

#: Default scan roots, relative to the repository root.
DEFAULT_SCAN_PATHS = ("src/repro", "tests", "benchmarks", "examples")
DEFAULT_BASELINE = "analysis-baseline.txt"


def repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` (fallback: cwd)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="invariant lint suite and runtime sanitizers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the AST invariant lints")
    lint.add_argument(
        "--rule", action="append", default=None, choices=rule_names(),
        help="run only this rule (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (merged with --rule)",
    )
    lint.add_argument(
        "--path", action="append", default=None,
        help="file or directory to scan (repeatable; default: "
             + ", ".join(DEFAULT_SCAN_PATHS) + ")",
    )
    lint.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} at repo root)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every violation, ignoring the baseline",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current violations as the new baseline",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON output (for CI annotations)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="rebuild the whole-program model even when a cached "
             "build matches the source digests",
    )

    smoke = sub.add_parser(
        "smoke",
        help="chaos workload under fail-fast runtime sanitizers",
    )
    smoke.add_argument("--horizon-ms", type=float, default=6_000.0)
    smoke.add_argument("--seed", type=int, default=29)
    return parser


def _selected_rule_names(args) -> list[str] | None:
    """Merge ``--rule`` (repeatable) and ``--rules a,b,c``."""
    names = list(args.rule or [])
    if args.rules:
        names.extend(
            part.strip() for part in args.rules.split(",")
            if part.strip()
        )
    return names or None


def cmd_lint(args) -> int:
    root = repo_root()
    if args.path:
        paths = [Path(p) for p in args.path]
    else:
        paths = [root / p for p in DEFAULT_SCAN_PATHS
                 if (root / p).exists()]
    try:
        rules = rules_by_name(_selected_rule_names(args))
    except ValueError as exc:
        print(f"repro.analysis lint: {exc}", file=sys.stderr)
        return 2
    timings: dict[str, float] = {}
    cache_dir = None if args.no_cache else root / ".analysis-cache"
    violations = lint_paths(paths, rules, timings=timings,
                            cache_dir=cache_dir)
    baseline_path = Path(args.baseline) if args.baseline \
        else root / DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(f"wrote {len(violations)} baseline entr"
              f"{'y' if len(violations) == 1 else 'ies'} to "
              f"{baseline_path}")
        return 0
    suppressed = 0
    if not args.no_baseline:
        violations, suppressed = filter_baselined(
            violations, load_baseline(baseline_path)
        )
    scanned = ", ".join(str(p) for p in paths)
    if args.json:
        print(json.dumps({
            "violations": [
                {"rule": v.rule, "path": v.path, "line": v.line,
                 "message": v.message}
                for v in violations
            ],
            "baselined": suppressed,
            "rules": [rule.name for rule in rules],
            "scanned": [str(p) for p in paths],
            "timings_ms": {name: round(ms, 3)
                           for name, ms in sorted(timings.items())},
        }, indent=2))
        return 1 if violations else 0
    for violation in violations:
        print(violation.format())
    summary = (f"{len(violations)} violation"
               f"{'' if len(violations) == 1 else 's'}")
    if suppressed:
        summary += f" ({suppressed} baselined)"
    print(f"repro.analysis lint: {summary} in {scanned}")
    if timings:
        spent = " ".join(f"{name}={ms:.0f}ms"
                         for name, ms in sorted(timings.items()))
        print(f"rule wall time: {spent}")
    return 1 if violations else 0


def cmd_smoke(args) -> int:
    """A chaos-harness run with every sanitizer armed.

    Builds a small streaming job plus live/snapshot queries, kills and
    restarts nodes while queries are in flight, and lets the fail-fast
    sanitizers scream if any invariant (snapshot immutability, lock
    hygiene, billing classification, dead-node scheduling) is broken.
    """
    from ..chaos import ChaosHarness
    from ..config import ClusterConfig, SanitizerConfig
    from ..env import Environment
    from ..errors import NoCommittedSnapshotError, QueryAbortedError
    from ..observability import collect_report
    from ..query.service import QueryService

    env = Environment(
        ClusterConfig(nodes=3, processing_workers_per_node=2),
        sanitizers=SanitizerConfig(
            enabled=True, snapshot_fingerprints=True, fail_fast=True,
        ),
    )
    job = _smoke_job(env)
    job.start()
    service = QueryService(env, repeatable_read=True)
    chaos = ChaosHarness(env, seed=args.seed)
    chaos.schedule_kill(1_200.0, node_id=1)
    chaos.schedule_restart(3_200.0, node_id=1)
    chaos.plan_random(horizon_ms=args.horizon_ms * 0.8, kills=1,
                      restart_after_ms=500.0)

    completed = {"ok": 0, "aborted": 0}

    def on_done(execution) -> None:
        if execution.error is None:
            completed["ok"] += 1
        elif isinstance(execution.error,
                        (QueryAbortedError, NoCommittedSnapshotError)):
            completed["aborted"] += 1
        else:
            raise execution.error

    def pump(round_no: int = 0) -> None:
        if env.now >= args.horizon_ms - 500.0:
            return
        service.submit("SELECT * FROM average", on_done=on_done)
        service.submit(
            "SELECT COUNT(*) AS n FROM snapshot_average",
            on_done=on_done,
        )
        env.sim.schedule(180.0, pump, round_no + 1)

    env.sim.schedule(1_000.0, pump)
    env.run_until(args.horizon_ms)
    runtime = env.sanitizers
    runtime.verify()
    report = collect_report(env)
    print(chaos.describe())
    print(f"queries: {completed['ok']} completed, "
          f"{completed['aborted']} aborted cleanly; "
          f"retries={report.query_retries}, "
          f"locks held={report.locks_held}, "
          f"sanitizer violations={len(runtime.violations)}")
    print(f"lockdep: {report.lock_order_edges_observed} lock-order "
          f"edges observed, {report.lockdep_violations} inversions")
    if runtime.violations:
        for violation in runtime.violations:
            print(f"  {violation.kind}: {violation.message}")
        return 1
    print("sanitizer smoke: all invariants held")
    return 0


def _smoke_job(env):
    """source -> keyed average -> sink, S-QUERY state enabled."""
    from ..config import JobConfig, SQueryConfig
    from ..dataflow import (
        Job,
        KeyedAggregateOperator,
        Pipeline,
        SinkOperator,
    )
    from ..dataflow.sources import CallableSource
    from ..state.manager import SQueryBackend

    def gen(instance, seq):
        return (instance * 31 + seq) % 24, float(seq % 10)

    pipeline = Pipeline()
    pipeline.add_source("nums", CallableSource(gen, 1_500.0))
    pipeline.add_operator(
        "average",
        lambda: KeyedAggregateOperator(
            lambda s, v: (v if s is None else s + v), lambda k, s: s
        ),
    )
    pipeline.add_operator("sink", SinkOperator)
    pipeline.connect("nums", "average")
    pipeline.connect("average", "sink")
    backend = SQueryBackend(env.cluster, env.store, SQueryConfig(
        repeatable_read_locks=True,
    ))
    return Job(env, pipeline, JobConfig(checkpoint_interval_ms=800.0),
               backend)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return cmd_lint(args)
    return cmd_smoke(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
