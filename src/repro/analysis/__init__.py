"""Static invariant lints and runtime sanitizers.

S-QUERY's correctness claims rest on invariants the rest of the code
only enforces by convention: the simulation must stay bit-deterministic,
key locks must be released on every exit path, every network shipment
must be billed to the cost model, snapshot versions must stay immutable
after commit, and retry paths must respect the per-table attempt tokens.
This package checks those invariants mechanically:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — an
  AST-based lint pass (``python -m repro.analysis lint``) that walks the
  source tree and reports rule violations with ``file:line``;
* :mod:`repro.analysis.sanitizers` — a runtime layer (enabled via
  :class:`repro.config.SanitizerConfig`) that wraps state backends, the
  query service, and node resources to detect invariant violations while
  tests and chaos runs execute.

See ``docs/ANALYSIS.md`` for the rule catalogue and workflows.
"""

from __future__ import annotations

from .lint import (
    Violation,
    filter_baselined,
    lint_paths,
    load_baseline,
    write_baseline,
)
from .rules import ALL_RULES, rule_names
from .sanitizers import (
    SanitizerRuntime,
    SanitizerViolation,
    active_runtimes,
    default_config,
    drain_runtimes,
    install_sanitizers,
    set_default_config,
)

__all__ = [
    "ALL_RULES",
    "SanitizerRuntime",
    "SanitizerViolation",
    "Violation",
    "active_runtimes",
    "default_config",
    "drain_runtimes",
    "filter_baselined",
    "install_sanitizers",
    "lint_paths",
    "load_baseline",
    "rule_names",
    "set_default_config",
    "write_baseline",
]
