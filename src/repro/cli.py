"""Command-line interface for running S-QUERY experiments.

Usage::

    python -m repro overhead   --mode snap --rate 1000000
    python -m repro snapshot   --keys 100000 --mode snap --queries
    python -m repro delta      --keys 100000 --fraction 0.1 --incremental
    python -m repro query-latency --keys 100000 --incremental
    python -m repro direct     --system tspoon --select 10
    python -m repro scalability --nodes 3 --interval 1000

Each subcommand runs one configuration of a paper experiment through
:mod:`repro.bench.harness` and prints the measured series.  The full
figure reproductions (all series of a figure, with shape assertions)
live in ``benchmarks/`` and run under pytest.
"""

from __future__ import annotations

import argparse
import sys

from .bench.harness import (
    measure_max_throughput,
    paper_rate,
    run_delta_snapshot_experiment,
    run_direct_object_experiment,
    run_overhead_experiment,
    run_query_latency_experiment,
    run_snapshot_experiment,
    scaled_cluster,
)
from .bench.latency import PAPER_PERCENTILES
from .bench.report import format_series


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S-QUERY reproduction experiments (ICDE 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    overhead = sub.add_parser(
        "overhead", help="source-sink latency (Figs. 8-9)"
    )
    overhead.add_argument("--mode", default="snap",
                          choices=["live+snap", "live", "snap", "jet"])
    overhead.add_argument("--rate", type=float, default=1_000_000,
                          help="paper-equivalent events/s")
    overhead.add_argument("--measure-ms", type=float, default=2000)

    snapshot = sub.add_parser(
        "snapshot", help="snapshot 2PC latency (Figs. 10-11)"
    )
    snapshot.add_argument("--keys", type=int, default=10_000)
    snapshot.add_argument("--mode", default="snap",
                          choices=["snap", "jet"])
    snapshot.add_argument("--queries", action="store_true",
                          help="run 2 concurrent Query-1 threads")
    snapshot.add_argument("--checkpoints", type=int, default=20)

    delta = sub.add_parser(
        "delta", help="incremental vs full snapshot cost (Fig. 12)"
    )
    delta.add_argument("--keys", type=int, default=100_000)
    delta.add_argument("--fraction", type=float, default=0.1)
    delta.add_argument("--incremental", action="store_true")
    delta.add_argument("--checkpoints", type=int, default=20)

    qlat = sub.add_parser(
        "query-latency", help="SQL query latency (Fig. 13)"
    )
    qlat.add_argument("--keys", type=int, default=10_000)
    qlat.add_argument("--incremental", action="store_true")
    qlat.add_argument("--checkpoints", type=int, default=40)

    direct = sub.add_parser(
        "direct", help="direct-object throughput (Fig. 14)"
    )
    direct.add_argument("--system", default="squery",
                        choices=["squery", "tspoon"])
    direct.add_argument("--select", type=int, default=1,
                        help="keys selected per query")
    direct.add_argument("--measure-ms", type=float, default=600)

    scal = sub.add_parser(
        "scalability", help="max sustainable throughput (Fig. 15)"
    )
    scal.add_argument("--nodes", type=int, default=3)
    scal.add_argument("--interval", type=float, default=1000,
                      help="snapshot interval in ms")

    return parser


def _print_latency(label: str, recorder) -> None:
    print(format_series(label, recorder.summary(PAPER_PERCENTILES)))


def cmd_overhead(args) -> int:
    result = run_overhead_experiment(args.mode, args.rate,
                                     measure_ms=args.measure_ms)
    print(f"NEXMark q6, {args.mode} @ {args.rate:g} ev/s "
          f"(paper-equivalent), {result.sink_records} samples, "
          f"{result.checkpoints} checkpoints")
    _print_latency("source-sink latency", result.latency)
    return 0


def cmd_snapshot(args) -> int:
    result = run_snapshot_experiment(
        args.keys, mode=args.mode, with_queries=args.queries,
        checkpoints=args.checkpoints,
    )
    print(f"snapshot 2PC, {args.mode}, {args.keys} keys"
          f"{', with queries' if args.queries else ''} "
          f"({result.checkpoints} checkpoints)")
    _print_latency("phase 1", result.phase1)
    _print_latency("phase 1+2", result.total)
    if args.queries:
        print(f"concurrent queries completed: "
              f"{result.query_latencies.count}")
    return 0


def cmd_delta(args) -> int:
    result = run_delta_snapshot_experiment(
        args.keys, args.fraction, incremental=args.incremental,
        checkpoints=args.checkpoints,
    )
    print(f"{result.label}, {args.keys} keys "
          f"({result.checkpoints} checkpoints)")
    _print_latency("2PC latency", result.total)
    return 0


def cmd_query_latency(args) -> int:
    result = run_query_latency_experiment(
        args.keys, args.incremental, checkpoints=args.checkpoints,
    )
    print(f"{result.label}: {result.queries} queries")
    _print_latency("query latency", result.latency)
    return 0


def cmd_direct(args) -> int:
    result = run_direct_object_experiment(
        args.system, args.select, measure_ms=args.measure_ms,
    )
    print(f"{args.system}, {args.select} key(s)/query: "
          f"{result.throughput_per_s:,.0f} q/s "
          f"({result.queries} completions)")
    return 0


def cmd_scalability(args) -> int:
    sustained = measure_max_throughput(args.nodes, args.interval)
    config = scaled_cluster(args.nodes, 1)
    equivalent = paper_rate(sustained, config)
    dop = args.nodes * 12
    print(f"DOP {dop} (= {args.nodes} nodes), "
          f"{args.interval / 1000:g}s snapshot interval: "
          f"max {equivalent / 1e6:.2f}M ev/s paper-equivalent "
          f"({equivalent / dop / 1e3:.0f}k ev/s per DOP)")
    return 0


COMMANDS = {
    "overhead": cmd_overhead,
    "snapshot": cmd_snapshot,
    "delta": cmd_delta,
    "query-latency": cmd_query_latency,
    "direct": cmd_direct,
    "scalability": cmd_scalability,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
