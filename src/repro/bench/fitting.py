"""Trendline fits used by the paper's figures.

Fig. 14 fits a power law to throughput vs. keys selected (R² = 0.993
for S-QUERY, 0.97 for TSpoon); Fig. 15 fits a line to max throughput
vs. degrees of parallelism (R² > 0.96).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Fit:
    """A fitted trendline with its coefficient of determination."""

    kind: str
    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        if self.kind == "linear":
            slope, intercept = self.coefficients
            return slope * x + intercept
        if self.kind == "power":
            scale, exponent = self.coefficients
            return scale * x ** exponent
        raise ValueError(f"unknown fit kind {self.kind!r}")


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    if total == 0.0:
        return 1.0
    return 1.0 - residual / total


def linear_fit(xs: list[float], ys: list[float]) -> Fit:
    """Least-squares line ``y = a*x + b`` (Fig. 15 trendlines)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("linear fit needs at least two points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    return Fit("linear", (float(slope), float(intercept)),
               _r_squared(y, predicted))


def power_law_fit(xs: list[float], ys: list[float]) -> Fit:
    """Least-squares power law ``y = a * x**b`` via log-log regression,
    with R² computed in log space (as spreadsheet trendlines do,
    matching the paper's Fig. 14 annotations)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("power-law fit needs at least two points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    log_x = np.log(x)
    log_y = np.log(y)
    exponent, log_scale = np.polyfit(log_x, log_y, 1)
    predicted = exponent * log_x + log_scale
    return Fit("power", (float(np.exp(log_scale)), float(exponent)),
               _r_squared(log_y, predicted))
