"""Plain-text tables and series for benchmark output.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output aligned and readable in a terminal.
"""

from __future__ import annotations

from .latency import PAPER_PERCENTILES


def format_table(headers: list[str], rows: list[list[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(
            cell.rjust(width) if _is_numeric(cell) else cell.ljust(width)
            for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


def format_series(name: str, summary: dict[float, float],
                  points: tuple[float, ...] = PAPER_PERCENTILES) -> str:
    """One latency-distribution series as a single aligned row."""
    parts = [f"{name:<24}"]
    for point in points:
        value = summary.get(point, float("nan"))
        parts.append(f"p{point:g}={value:8.2f}ms")
    return "  ".join(parts)


def percentile_headers(points: tuple[float, ...] = PAPER_PERCENTILES,
                       ) -> list[str]:
    return [f"p{point:g}" for point in points]


def percentile_row(label: str, summary: dict[float, float],
                   points: tuple[float, ...] = PAPER_PERCENTILES,
                   ) -> list[object]:
    return [label] + [round(summary.get(point, float("nan")), 2)
                      for point in points]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
