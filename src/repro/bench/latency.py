"""Latency recording and exact percentile computation."""

from __future__ import annotations

import numpy as np

#: The percentile axis used by the paper's latency figures (inverted
#: log scale from 0% to 99.99%).
PAPER_PERCENTILES = (0.0, 50.0, 90.0, 99.0, 99.9, 99.99)


def percentiles(samples: list[float],
                points: tuple[float, ...] = PAPER_PERCENTILES,
                ) -> dict[float, float]:
    """Exact percentiles of ``samples`` at the requested points."""
    if not samples:
        return {point: float("nan") for point in points}
    data = np.asarray(samples, dtype=float)
    values = np.percentile(data, points)
    return {point: float(value) for point, value in zip(points, values)}


class LatencyRecorder:
    """Accumulates latency samples and summarises them."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: list[float] = []

    def record(self, value_ms: float) -> None:
        self._samples.append(value_ms)

    def extend(self, values: list[float]) -> None:
        self._samples.extend(values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))

    def percentile(self, point: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), point))

    def summary(self, points: tuple[float, ...] = PAPER_PERCENTILES,
                ) -> dict[float, float]:
        return percentiles(self._samples, points)
