"""Sustainable-throughput search (§IX-E).

The paper defines sustainable throughput as "the throughput at which
the system achieves the highest sustainable performance with steady
latency".  We operationalise that as the largest offered rate at which
the job (a) keeps up — completed sink records within a few percent of
offered — and (b) keeps its median latency below a stability bound.
A geometric bracket followed by binary search finds the knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RateProbe:
    """Outcome of running the workload at one offered rate."""

    offered_per_s: float
    achieved_per_s: float
    p50_ms: float
    p99_ms: float

    def sustainable(self, completion_slack: float = 0.05,
                    p50_bound_ms: float = 50.0) -> bool:
        keeps_up = (
            self.achieved_per_s >= self.offered_per_s
            * (1.0 - completion_slack)
        )
        stable = self.p50_ms <= p50_bound_ms
        return keeps_up and stable


def find_sustainable_rate(probe: Callable[[float], RateProbe],
                          low_per_s: float, high_per_s: float,
                          iterations: int = 6,
                          completion_slack: float = 0.05,
                          p50_bound_ms: float = 50.0) -> float:
    """Binary search for the highest sustainable rate in the bracket.

    ``probe(rate)`` runs the workload at the offered rate and reports a
    :class:`RateProbe`.  ``low_per_s`` must be sustainable (the caller
    picks a conservative floor); ``high_per_s`` should overload.
    """
    best = low_per_s
    low, high = low_per_s, high_per_s
    for _ in range(iterations):
        mid = (low + high) / 2.0
        result = probe(mid)
        if result.sustainable(completion_slack, p50_bound_ms):
            best = mid
            low = mid
        else:
            high = mid
    return best
