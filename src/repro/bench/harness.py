"""Scaled experiment setups for the paper's figures.

**Scaling rule.**  The paper runs on clusters of 3–7 nodes with 12
processing CPUs each (36–84 workers).  Simulating hundreds of millions
of per-record events is infeasible in Python, so every experiment here
shrinks the *worker count* while preserving the **per-worker offered
rate** (and hence utilisation, queueing, and latency behaviour) and the
**per-node state size** (node counts are NOT scaled, so snapshot and
scan volumes per node match the paper exactly).  Rates are reported in
paper-equivalent units:

    sim_rate = paper_rate * sim_workers / paper_workers

with ``paper_workers = paper_nodes * 12``.  DESIGN.md §2 records this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.partition import stable_hash
from ..config import ClusterConfig, JobConfig, SQueryConfig
from ..dataflow import Job, Operator, Pipeline
from ..dataflow.backend import VanillaBackend
from ..env import Environment
from ..query import DirectObjectInterface, QueryService
from ..state import SQueryBackend
from ..workloads.nexmark import build_query6_job
from ..workloads.qcommerce import (
    build_qcommerce_job,
    order_info_for,
    order_status_for,
    rider_location_for,
)
from .clients import ClosedLoopClient, OpenLoopSqlClient
from .latency import LatencyRecorder

#: Processing CPUs per node in the paper's clusters (Table III).
PAPER_WORKERS_PER_NODE = 12


def scaled_cluster(nodes: int = 3,
                   workers_per_node: int = 1) -> ClusterConfig:
    """A simulation-sized cluster standing in for a paper cluster of the
    same node count."""
    return ClusterConfig(
        nodes=nodes,
        processing_workers_per_node=workers_per_node,
        query_workers_per_node=4,
        backup_count=1 if nodes > 1 else 0,
    )


def sim_rate(paper_rate_per_s: float, config: ClusterConfig) -> float:
    """Map a paper-reported event rate to the scaled cluster."""
    paper_workers = config.nodes * PAPER_WORKERS_PER_NODE
    return paper_rate_per_s * config.total_processing_workers / paper_workers


def paper_rate(sim_rate_per_s: float, config: ClusterConfig) -> float:
    """Inverse of :func:`sim_rate` for reporting."""
    paper_workers = config.nodes * PAPER_WORKERS_PER_NODE
    return sim_rate_per_s * paper_workers / config.total_processing_workers




def make_backend(env: Environment, mode: str,
                 incremental: bool = False,
                 prune_chain_length: int = 8,
                 colocate_state: bool = True,
                 incremental_backend: str = "chain"):
    """Backend for one of the figure configurations.

    ``mode``: ``"live+snap"``, ``"live"``, ``"snap"``, or ``"jet"``.
    """
    if mode == "jet":
        return VanillaBackend(env.cluster)
    if mode not in ("live+snap", "live", "snap"):
        raise ValueError(f"unknown backend mode {mode!r}")
    live = mode in ("live+snap", "live")
    snap = mode in ("live+snap", "snap")
    config = SQueryConfig(
        live_state=live,
        snapshot_state=snap,
        incremental=incremental,
        prune_chain_length=prune_chain_length,
        colocate_state=colocate_state,
        incremental_backend=incremental_backend,
    )
    return SQueryBackend(env.cluster, env.store, config)


# ---------------------------------------------------------------------------
# Figures 8 & 9: source→sink latency on NEXMark query 6
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    mode: str
    paper_rate_per_s: float
    latency: LatencyRecorder
    sink_records: int
    checkpoints: int


def run_overhead_experiment(mode: str, paper_rate_per_s: float,
                            nodes: int = 3, workers_per_node: int = 1,
                            warmup_ms: float = 1000.0,
                            measure_ms: float = 3000.0,
                            paper_sellers: int = 10_000,
                            checkpoint_interval_ms: float = 1000.0,
                            seed: int = 7) -> OverheadResult:
    """One configuration of Fig. 8 / Fig. 9."""
    config = scaled_cluster(nodes, workers_per_node)
    env = Environment(config, seed=seed)
    backend = make_backend(env, mode)
    job = build_query6_job(
        env,
        backend,
        rate_per_s=sim_rate(paper_rate_per_s, config),
        sellers=paper_sellers,
        checkpoint_interval_ms=checkpoint_interval_ms,
        parallelism=config.total_processing_workers,
        seed=seed,
    )
    job.start()
    env.run_until(warmup_ms)
    skip = len(job.metrics.sink_latencies)
    env.run_until(warmup_ms + measure_ms)
    recorder = LatencyRecorder(f"{mode}@{paper_rate_per_s:g}")
    recorder.extend(job.metrics.sink_latencies[skip:])
    return OverheadResult(
        mode=mode,
        paper_rate_per_s=paper_rate_per_s,
        latency=recorder,
        sink_records=recorder.count,
        checkpoints=job.coordinator.completed,
    )


# ---------------------------------------------------------------------------
# Figures 10 & 11: snapshot 2PC latency on the Q-commerce workload
# ---------------------------------------------------------------------------


def preload_qcommerce_state(job: Job, orders: int, riders: int) -> None:
    """Warm-start the three Q-commerce operators with a full key
    universe, as the paper's ≥20-minute runs reach steady state before
    measuring.  Values come from the same deterministic builders as the
    sources, so later stream updates simply refresh the same keys."""
    _preload_vertex(job, "orderinfo",
                    {k: order_info_for(k) for k in range(orders)})
    _preload_vertex(job, "orderstate", {
        k: order_status_for(k, k % 8, late=(k % 4 == 0))
        for k in range(orders)
    })
    _preload_vertex(job, "riderlocation",
                    {k: rider_location_for(k, 0) for k in range(riders)})


def _preload_vertex(job: Job, vertex: str, data: dict) -> None:
    instances = job.instances_of(vertex)
    parallelism = len(instances)
    for key, value in data.items():
        index = stable_hash(key) % parallelism
        instances[index].operator.state.put(key, value)


@dataclass
class SnapshotResult:
    label: str
    paper_keys: int
    phase1: LatencyRecorder
    total: LatencyRecorder
    checkpoints: int
    query_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("queries")
    )


def run_snapshot_experiment(paper_keys: int, mode: str = "snap",
                            with_queries: bool = False,
                            query_sql: str | None = None,
                            query_concurrency: int = 2,
                            nodes: int = 7, workers_per_node: int = 1,
                            checkpoints: int = 30,
                            checkpoint_interval_ms: float = 1000.0,
                            events_per_s: float = 2000.0,
                            seed: int = 7,
                            label: str | None = None) -> SnapshotResult:
    """One series of Fig. 10 (``with_queries=False``) or Fig. 11.

    ``paper_keys`` is the paper's unique-key count (1K/10K/100K), used
    as-is: node counts match the paper, so per-node snapshot volumes are
    faithful.  ``events_per_s`` is
    the simulated stream rate (state refresh traffic; the experiment's
    focus is snapshot cost, which depends on key count, not rate).
    """
    from ..workloads.qcommerce import QUERY_1

    config = scaled_cluster(nodes, workers_per_node)
    env = Environment(config, seed=seed)
    backend = make_backend(env, mode)
    orders = paper_keys
    riders = max(10, orders // 10)
    job = build_qcommerce_job(
        env,
        backend,
        orders=orders,
        riders=riders,
        events_per_s=events_per_s,
        checkpoint_interval_ms=checkpoint_interval_ms,
        parallelism=config.total_processing_workers,
        seed=seed,
    )
    preload_qcommerce_state(job, orders, riders)
    job.start()

    result = SnapshotResult(
        label=label or f"{mode} {paper_keys // 1000}k",
        paper_keys=paper_keys,
        phase1=LatencyRecorder("phase1"),
        total=LatencyRecorder("2pc"),
        checkpoints=0,
    )

    client = None
    if with_queries:
        service = QueryService(env)
        sql = query_sql or QUERY_1

        def submit(on_done):
            return service.submit(sql, on_done=on_done, materialize=False)

        client = ClosedLoopClient(env.sim, submit, query_concurrency)
        # Let the first checkpoint commit before querying snapshots.
        env.sim.schedule(
            checkpoint_interval_ms * 2.5, lambda: client.start()
        )

    horizon = checkpoint_interval_ms * (checkpoints + 2)
    env.run_until(horizon)
    if client is not None:
        client.stop()

    warm = 2  # discard the first snapshots (cold caches, preload flush)
    samples = job.coordinator.samples[warm:]
    for sample in samples:
        result.phase1.record(sample.phase1_ms)
        result.total.record(sample.phase2_ms)
    result.checkpoints = len(samples)
    if client is not None:
        window_start = checkpoint_interval_ms * 3
        result.query_latencies.extend(
            client.latencies_in(window_start, horizon)
        )
    return result


# ---------------------------------------------------------------------------
# Figures 12 & 13: incremental snapshots (delta-ratio write cost and
# reconstruction query cost)
# ---------------------------------------------------------------------------


class BlockUpdateOperator(Operator):
    """Updates a block of co-located keys per record.

    Used by the delta-ratio experiments: it lets the harness control the
    exact number of distinct keys changed per checkpoint interval
    without simulating one event per key.  All keys written by instance
    ``i`` satisfy ``key % parallelism == i``, so updates stay local.
    """

    stateful = True

    def __init__(self, rows_per_instance: int) -> None:
        super().__init__()
        self._rows = rows_per_instance
        self._instance = 0
        self._parallelism = 1

    def open(self, instance: int, parallelism: int) -> None:
        self._instance = instance
        self._parallelism = parallelism

    def process(self, record, out) -> None:
        start, count, stamp = record.value
        for offset in range(count):
            index = (start + offset) % self._rows
            key = self._instance + self._parallelism * index
            self.state.put(key, stamp)


class BlockUpdateSource:
    """Emits block-update commands whose keys route to their instance.

    ``delta_fraction`` restricts updates to that fraction of each
    instance's rows (Fig. 12's 1%/10%/100% delta ratios);
    ``randomized`` draws block starts pseudo-uniformly so consecutive
    checkpoint deltas overlap (Fig. 13's chain-walk cost).
    """

    def __init__(self, total_rate_per_s: float, rows_per_instance: int,
                 parallelism: int, block: int = 64,
                 delta_fraction: float = 1.0,
                 randomized: bool = False) -> None:
        self._rate = total_rate_per_s
        self._rows = rows_per_instance
        self._parallelism = parallelism
        self._block = block
        self._span = max(1, int(rows_per_instance * delta_fraction))
        self._randomized = randomized

    def generate(self, instance: int, seq: int):
        if self._randomized:
            # splitmix64-style avalanche: without it the golden-ratio
            # multiply yields a low-discrepancy sequence whose blocks
            # barely overlap, defeating the chain-depth experiment.
            mixed = (instance * 1_000_003 + seq + 1) \
                * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
            mixed = (mixed ^ (mixed >> 30)) \
                * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
            mixed = (mixed ^ (mixed >> 27)) \
                * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
            mixed ^= mixed >> 31
            start = mixed % self._span
        else:
            start = (seq * self._block) % self._span
        # The record key equals the instance index, which hashes to
        # itself, so the record is processed by the owning instance.
        return instance, (start, self._block, float(seq))

    def rate_per_instance(self, parallelism: int) -> float:
        return self._rate / parallelism


@dataclass
class DeltaExperimentSetup:
    env: Environment
    job: Job
    backend: object
    rows_per_instance: int
    parallelism: int


def build_delta_job(paper_keys: int, delta_fraction: float,
                    incremental: bool, nodes: int = 7,
                    workers_per_node: int = 1,
                    records_per_s: float = 2000.0, block: int = 64,
                    prune_chain_length: int = 8,
                    randomized: bool = False,
                    checkpoint_interval_ms: float = 1000.0,
                    incremental_backend: str = "chain",
                    seed: int = 7) -> DeltaExperimentSetup:
    """Deploy the delta-ratio workload (operator ``deltastate``)."""
    config = scaled_cluster(nodes, workers_per_node)
    env = Environment(config, seed=seed)
    backend = make_backend(
        env, "snap", incremental=incremental,
        prune_chain_length=prune_chain_length,
        incremental_backend=incremental_backend,
    )
    parallelism = config.total_processing_workers
    keys = paper_keys
    rows_per_instance = max(1, keys // parallelism)
    source = BlockUpdateSource(
        records_per_s, rows_per_instance, parallelism,
        block=block, delta_fraction=delta_fraction,
        randomized=randomized,
    )
    pipeline = Pipeline()
    pipeline.add_source("updates", source)
    pipeline.add_operator(
        "deltastate", lambda: BlockUpdateOperator(rows_per_instance)
    )
    pipeline.connect("updates", "deltastate")
    job = Job(env, pipeline, JobConfig(
        checkpoint_interval_ms=checkpoint_interval_ms,
        parallelism=parallelism,
        seed=seed,
    ), backend)
    # Warm start: the full key universe exists before measurement.
    for instance_index, instance in enumerate(job.instances_of("deltastate")):
        for index in range(rows_per_instance):
            key = instance_index + parallelism * index
            instance.operator.state.put(key, 0.0)
    return DeltaExperimentSetup(env, job, backend, rows_per_instance,
                                parallelism)


def run_delta_snapshot_experiment(paper_keys: int, delta_fraction: float,
                                  incremental: bool,
                                  checkpoints: int = 30,
                                  label: str | None = None,
                                  **kwargs) -> SnapshotResult:
    """One series of Fig. 12: snapshot 2PC latency vs. delta ratio."""
    setup = build_delta_job(paper_keys, delta_fraction, incremental,
                            **kwargs)
    setup.job.start()
    interval = setup.job.config.checkpoint_interval_ms
    setup.env.run_until(interval * (checkpoints + 2))
    result = SnapshotResult(
        label=label or (
            f"{'incr' if incremental else 'full'} "
            f"{delta_fraction:.0%} delta"
        ),
        paper_keys=paper_keys,
        phase1=LatencyRecorder("phase1"),
        total=LatencyRecorder("2pc"),
        checkpoints=0,
    )
    samples = setup.job.coordinator.samples[2:]
    for sample in samples:
        result.phase1.record(sample.phase1_ms)
        result.total.record(sample.phase2_ms)
    result.checkpoints = len(samples)
    return result


@dataclass
class QueryLatencyResult:
    label: str
    paper_keys: int
    latency: LatencyRecorder
    queries: int
    #: Median virtual ms billed on the scan path per query inside the
    #: measurement window (isolates scan cost from merge/queueing).
    scan_ms_median: float = 0.0


def run_query_latency_experiment(paper_keys: int, incremental: bool,
                                 checkpoints: int = 60,
                                 query_concurrency: int = 2,
                                 prune_chain_length: int = 48,
                                 update_rate_per_s: float = 80_000.0,
                                 label: str | None = None,
                                 nodes: int = 7,
                                 incremental_backend: str = "chain",
                                 vectorized: bool | None = None,
                                 seed: int = 7) -> QueryLatencyResult:
    """One series of Fig. 13: SQL query latency, full vs. incremental.

    Runs the delta workload with randomized updates (so incremental
    chains overlap) and measures end-to-end latency of an aggregate
    query over the ``snapshot_deltastate`` table.  The update rate is
    chosen so that a 10K-key state is fully refreshed every checkpoint
    (incremental reconstruction stops at the newest delta — "identical
    to full", as the paper observes) while a 100K-key state is only
    ~50% refreshed (the backward walk goes ~10 deltas deep — the ~5x
    latency of the paper's 100K series)."""
    block = 32
    records = max(100.0, update_rate_per_s / block)
    setup = build_delta_job(
        paper_keys, 1.0, incremental,
        nodes=nodes,
        records_per_s=records, block=block,
        prune_chain_length=prune_chain_length, randomized=True,
        incremental_backend=incremental_backend,
        seed=seed,
    )
    env, job = setup.env, setup.job
    service = QueryService(env, vectorized=vectorized)
    sql = (
        'SELECT COUNT(*), MAX(value) FROM "snapshot_deltastate" '
        "WHERE value >= 0"
    )
    scan_samples: list[tuple[float, float]] = []

    def submit(on_done):
        def done(execution):
            scan_samples.append((env.sim.now, execution.scan_ms_billed))
            on_done(execution)

        return service.submit(sql, on_done=done, materialize=False)

    client = ClosedLoopClient(env.sim, submit, query_concurrency)
    interval = job.config.checkpoint_interval_ms
    job.start()
    env.sim.schedule(interval * 2.5, client.start)
    horizon = interval * (checkpoints + 2)
    env.run_until(horizon)
    client.stop()
    recorder = LatencyRecorder(label or (
        f"{'incremental' if incremental else 'full'} "
        f"{paper_keys // 1000}k"
    ))
    # Measure once incremental chains have reached steady depth.
    window_start = interval * min(checkpoints // 2, 25)
    recorder.extend(client.latencies_in(window_start, horizon))
    windowed_scans = sorted(
        scan_ms for time, scan_ms in scan_samples
        if window_start <= time < horizon
    )
    scan_median = (windowed_scans[len(windowed_scans) // 2]
                   if windowed_scans else 0.0)
    return QueryLatencyResult(
        label=recorder.name,
        paper_keys=paper_keys,
        latency=recorder,
        queries=recorder.count,
        scan_ms_median=scan_median,
    )


# ---------------------------------------------------------------------------
# Figure 14: direct-object throughput, S-QUERY vs TSpoon
# ---------------------------------------------------------------------------


@dataclass
class DirectObjectResult:
    system: str
    keys_selected: int
    throughput_per_s: float
    queries: int


def run_direct_object_experiment(system: str, keys_selected: int,
                                 total_keys: int = 100_000,
                                 concurrency: int = 180,
                                 nodes: int = 3,
                                 warmup_ms: float = 200.0,
                                 measure_ms: float = 1000.0,
                                 seed: int = 7) -> DirectObjectResult:
    """One point of Fig. 14: throughput at a key-selection size.

    A rider-location job supplies the state (two doubles + timestamp per
    key, as in §IX-D); ``concurrency`` outstanding queries emulate the
    paper's 180 client threads against the 3-node cluster."""
    from ..baselines.tspoon import TSpoonSystem
    from ..workloads.qcommerce.generator import RiderLocationSource
    from ..workloads.qcommerce.queries import _latest, _no_output
    from ..dataflow import KeyedAggregateOperator

    config = scaled_cluster(nodes, workers_per_node=1)
    env = Environment(config, seed=seed)
    backend = make_backend(env, "live+snap")
    parallelism = config.total_processing_workers
    source = RiderLocationSource(2000.0, total_keys, parallelism)
    pipeline = Pipeline()
    pipeline.add_source("rider-events", source)
    pipeline.add_operator(
        "riderlocation", lambda: KeyedAggregateOperator(_latest, _no_output)
    )
    pipeline.connect("rider-events", "riderlocation")
    job = Job(env, pipeline, JobConfig(parallelism=parallelism, seed=seed),
              backend)
    _preload_vertex(job, "riderlocation",
                    {k: rider_location_for(k, 0) for k in range(total_keys)})
    job.start()

    rng = env.sim.rng.stream("direct-keys")

    def pick_keys() -> list[int]:
        return [rng.randrange(total_keys) for _ in range(keys_selected)]

    if system == "squery":
        interface = DirectObjectInterface(env)

        def submit(on_done):
            return interface.submit_get("riderlocation", pick_keys(),
                                        on_done=on_done)
    elif system == "tspoon":
        tspoon = TSpoonSystem(env)

        def submit(on_done):
            return tspoon.submit_get("riderlocation", pick_keys(),
                                     on_done=on_done)
    else:
        raise ValueError(f"unknown system {system!r}")

    client = ClosedLoopClient(env.sim, submit, concurrency)
    client.start()
    env.run_until(warmup_ms + measure_ms)
    client.stop()
    throughput = client.throughput_per_s(warmup_ms, warmup_ms + measure_ms)
    return DirectObjectResult(
        system=system,
        keys_selected=keys_selected,
        throughput_per_s=throughput,
        queries=len(client.completions),
    )


# ---------------------------------------------------------------------------
# Figure 15: scalability (sustainable throughput vs DOP)
# ---------------------------------------------------------------------------


@dataclass
class ScalabilityProbeResult:
    offered_per_s: float
    achieved_per_s: float
    p50_ms: float
    p99_ms: float


#: Time-dilation factor for the throughput experiment: per-record CPU
#: costs are multiplied by this and offered rates divided by it, which
#: preserves utilisation and checkpoint-stall fractions while cutting
#: the simulated event count.  Throughputs are reported multiplied back.
THROUGHPUT_DILATION = 10.0


def measure_max_throughput(nodes: int, snapshot_interval_ms: float,
                           queries_per_s: float = 10.0,
                           overload_factor: float = 1.3,
                           warmup_intervals: float = 2.0,
                           measure_intervals: float = 3.0,
                           cost_scale: float = THROUGHPUT_DILATION,
                           seed: int = 7) -> float:
    """Peak sustainable throughput for one Fig. 15 configuration.

    Offers a deliberate overload (``overload_factor`` × the cluster's
    analytic service capacity); the sink completion rate then plateaus
    at the service capacity, which is the sustainable maximum.  One run
    per configuration instead of a full binary search keeps the
    benchmark tractable; :func:`probe_q6_rate` +
    :func:`repro.bench.throughput.find_sustainable_rate` provide the
    paper's stricter steady-latency definition when runtime allows.

    The measurement window spans the same number of checkpoint
    intervals for every configuration so each experiences the same
    relative snapshot load.  Returns the *undilated* simulated
    sustainable rate; callers convert to paper-equivalent units via
    :func:`paper_rate`.
    """
    from ..config import CostModel

    base = CostModel()
    per_record_ms = cost_scale * (
        2 * base.record_service_ms
        + base.record_service_ms + base.state_update_ms
    )
    capacity = nodes * 1000.0 / per_record_ms
    offered = capacity * overload_factor
    probe = probe_q6_rate(
        offered, nodes, snapshot_interval_ms,
        queries_per_s=queries_per_s,
        warmup_ms=warmup_intervals * snapshot_interval_ms,
        measure_ms=measure_intervals * snapshot_interval_ms,
        cost_scale=cost_scale,
        seed=seed,
    )
    return probe.achieved_per_s * cost_scale


def probe_q6_rate(sim_rate_per_s: float, nodes: int,
                  snapshot_interval_ms: float,
                  queries_per_s: float = 10.0,
                  warmup_ms: float = 1000.0,
                  measure_ms: float = 2000.0,
                  cost_scale: float = 1.0,
                  seed: int = 7) -> ScalabilityProbeResult:
    """Run NEXMark q6 + SQL query load at one offered rate (Fig. 15)."""
    import dataclasses

    from ..config import CostModel

    config = scaled_cluster(nodes, workers_per_node=1)
    base = CostModel()
    costs = dataclasses.replace(
        base,
        record_service_ms=base.record_service_ms * cost_scale,
        state_update_ms=base.state_update_ms * cost_scale,
    )
    env = Environment(config, costs=costs, seed=seed)
    backend = make_backend(env, "snap")
    job = build_query6_job(
        env, backend,
        rate_per_s=sim_rate_per_s,
        sellers=10_000,
        checkpoint_interval_ms=snapshot_interval_ms,
        parallelism=config.total_processing_workers,
        seed=seed,
    )
    service = QueryService(env)
    client = OpenLoopSqlClient(
        env.sim, service,
        ['SELECT COUNT(*), AVG(average) FROM "snapshot_q6"'],
        rate_per_s=queries_per_s,
    )
    job.start()
    env.sim.schedule(snapshot_interval_ms * 2.2, client.start)
    env.run_until(warmup_ms)
    skip = len(job.metrics.sink_latencies)
    start_records = job.metrics.sink_records
    env.run_until(warmup_ms + measure_ms)
    client.stop()
    achieved = (
        (job.metrics.sink_records - start_records) / (measure_ms / 1000.0)
    )
    samples = job.metrics.sink_latencies[skip:]
    recorder = LatencyRecorder("probe")
    recorder.extend(samples)
    return ScalabilityProbeResult(
        offered_per_s=sim_rate_per_s,
        achieved_per_s=achieved,
        p50_ms=recorder.percentile(50) if samples else float("inf"),
        p99_ms=recorder.percentile(99) if samples else float("inf"),
    )
