"""Benchmark harness: recorders, load drivers, fits, and reports.

Everything the per-figure benchmarks in ``benchmarks/`` share: exact
percentile computation (:mod:`~repro.bench.latency`), closed- and
open-loop query clients (:mod:`~repro.bench.clients`), sustainable
throughput search (:mod:`~repro.bench.throughput`), power-law/linear
fits with R² (:mod:`~repro.bench.fitting`), scaled experiment setups
mapping the paper's cluster to simulation-sized runs
(:mod:`~repro.bench.harness`), and plain-text tables/series
(:mod:`~repro.bench.report`).
"""

from .clients import ClosedLoopClient, OpenLoopSqlClient
from .fitting import linear_fit, power_law_fit
from .latency import LatencyRecorder, percentiles
from .report import format_series, format_table
from .throughput import find_sustainable_rate

__all__ = [
    "ClosedLoopClient",
    "LatencyRecorder",
    "OpenLoopSqlClient",
    "find_sustainable_rate",
    "format_series",
    "format_table",
    "linear_fit",
    "percentiles",
    "power_law_fit",
]
