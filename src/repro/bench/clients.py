"""Query load drivers.

:class:`ClosedLoopClient` keeps a fixed number of queries outstanding
(the paper's "180 threads" / "two concurrent threads at full speed"
setups); :class:`OpenLoopSqlClient` submits SQL at a Poisson rate (the
scalability experiment's "10 SQL queries per second").
"""

from __future__ import annotations

from typing import Callable

from ..simtime import Simulator


class ClosedLoopClient:
    """Fixed-concurrency load: resubmit immediately on completion.

    ``submit_fn(on_done)`` starts one query and arranges for
    ``on_done(handle)`` to fire at completion; the handle must expose
    ``latency_ms``.
    """

    def __init__(self, sim: Simulator, submit_fn: Callable,
                 concurrency: int) -> None:
        self._sim = sim
        self._submit = submit_fn
        self._concurrency = concurrency
        self._stopped = False
        self.completions: list[tuple[float, float]] = []  # (time, latency)

    def start(self) -> None:
        for _ in range(self._concurrency):
            self._launch()

    def stop(self) -> None:
        self._stopped = True

    def _launch(self) -> None:
        if self._stopped:
            return
        self._submit(self._on_done)

    def _on_done(self, handle) -> None:
        self.completions.append((self._sim.now, handle.latency_ms))
        self._launch()

    def throughput_per_s(self, window_start_ms: float,
                         window_end_ms: float) -> float:
        """Completed queries per second inside the window."""
        duration_s = (window_end_ms - window_start_ms) / 1000.0
        if duration_s <= 0:
            return 0.0
        count = sum(
            1 for time, _ in self.completions
            if window_start_ms <= time < window_end_ms
        )
        return count / duration_s

    def latencies_in(self, window_start_ms: float,
                     window_end_ms: float) -> list[float]:
        return [
            latency for time, latency in self.completions
            if window_start_ms <= time < window_end_ms
        ]


class OpenLoopSqlClient:
    """Poisson SQL arrivals at a fixed rate, rotating over statements."""

    def __init__(self, sim: Simulator, service, statements: list[str],
                 rate_per_s: float, materialize: bool = False,
                 name: str = "sql-client") -> None:
        self._sim = sim
        self._service = service
        self._statements = list(statements)
        self._rate = rate_per_s
        self._materialize = materialize
        self._name = name
        self._stopped = False
        self._next_statement = 0
        self.completions: list[tuple[float, float]] = []
        self.errors = 0

    def start(self) -> None:
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped or self._rate <= 0:
            return
        delay = self._sim.rng.exponential(self._name, 1000.0 / self._rate)
        self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        sql = self._statements[self._next_statement % len(self._statements)]
        self._next_statement += 1
        self._service.submit(
            sql, on_done=self._on_done, materialize=self._materialize
        )
        self._schedule_next()

    def _on_done(self, execution) -> None:
        if execution.error is not None:
            self.errors += 1
            return
        self.completions.append((self._sim.now, execution.latency_ms))

    def latencies_in(self, window_start_ms: float,
                     window_end_ms: float) -> list[float]:
        return [
            latency for time, latency in self.completions
            if window_start_ms <= time < window_end_ms
        ]
