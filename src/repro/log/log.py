"""The partitioned log, producer, and log-backed source."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

from ..errors import ConfigurationError, ReproError
from ..dataflow.sources import RETRY
from ..simtime import Simulator


class LogError(ReproError):
    """An invalid log operation (bad partition, out-of-range offset)."""


@dataclass(frozen=True)
class Record:
    """One appended log record."""

    offset: int
    key: Hashable
    value: object
    appended_ms: float


class PartitionedLog:
    """An append-only, offset-addressed, partitioned log.

    The log is an *external* system: it lives outside the compute
    cluster, so node failures never lose it — which is precisely why
    replaying from recorded offsets gives exactly-once (§IV + §VI).
    """

    def __init__(self, name: str, partitions: int) -> None:
        if partitions < 1:
            raise ConfigurationError("log needs at least one partition")
        self.name = name
        self._partitions: list[list[Record]] = [
            [] for _ in range(partitions)
        ]

    @property
    def partitions(self) -> int:
        return len(self._partitions)

    def _partition(self, partition: int) -> list[Record]:
        if not 0 <= partition < len(self._partitions):
            raise LogError(
                f"{self.name}: no partition {partition} "
                f"(have {len(self._partitions)})"
            )
        return self._partitions[partition]

    # -- producing --------------------------------------------------------

    def append(self, partition: int, key: Hashable, value: object,
               now_ms: float = 0.0) -> int:
        """Append one record; returns its offset."""
        records = self._partition(partition)
        record = Record(
            offset=len(records), key=key, value=value, appended_ms=now_ms
        )
        records.append(record)
        return record.offset

    def append_keyed(self, key: Hashable, value: object,
                     now_ms: float = 0.0) -> tuple[int, int]:
        """Route by key hash (like a keyed Kafka producer); returns
        ``(partition, offset)``."""
        from ..cluster.partition import stable_hash

        partition = stable_hash(key) % self.partitions
        return partition, self.append(partition, key, value, now_ms)

    # -- consuming ----------------------------------------------------------

    def end_offset(self, partition: int) -> int:
        """One past the last record (the next append's offset)."""
        return len(self._partition(partition))

    def read(self, partition: int, offset: int) -> Record:
        records = self._partition(partition)
        if not 0 <= offset < len(records):
            raise LogError(
                f"{self.name}[{partition}]: offset {offset} out of "
                f"range [0, {len(records)})"
            )
        return records[offset]

    def fetch(self, partition: int, from_offset: int,
              max_records: int = 100) -> list[Record]:
        """Up to ``max_records`` records starting at ``from_offset``."""
        records = self._partition(partition)
        if from_offset < 0:
            raise LogError("offset must be non-negative")
        return records[from_offset:from_offset + max_records]

    def iter_partition(self, partition: int) -> Iterator[Record]:
        return iter(list(self._partition(partition)))

    def total_records(self) -> int:
        return sum(len(records) for records in self._partitions)


class LogAppender:
    """A rate-controlled producer appending generated records.

    ``value_fn(partition, offset) -> (key, value)`` keeps the produced
    stream deterministic; the appender round-robins partitions.
    """

    def __init__(self, sim: Simulator, log: PartitionedLog,
                 rate_per_s: float,
                 value_fn: Callable[[int, int], tuple[Hashable, object]],
                 name: str = "producer") -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("producer rate must be positive")
        self._sim = sim
        self._log = log
        self._rate = rate_per_s
        self._value_fn = value_fn
        self._name = name
        self._next_partition = 0
        self._stopped = False
        self.appended = 0

    def start(self) -> None:
        self._schedule()

    def stop(self) -> None:
        self._stopped = True

    def _schedule(self) -> None:
        delay = self._sim.rng.exponential(
            f"producer.{self._name}", 1000.0 / self._rate
        )
        self._sim.schedule(delay, self._produce)

    def _produce(self) -> None:
        if self._stopped:
            return
        partition = self._next_partition % self._log.partitions
        self._next_partition += 1
        offset = self._log.end_offset(partition)
        key, value = self._value_fn(partition, offset)
        self._log.append(partition, key, value, now_ms=self._sim.now)
        self.appended += 1
        self._schedule()


class LogBackedSource:
    """A dataflow source consuming one log partition per instance.

    The source's sequence number *is* the log offset, so checkpointed
    source offsets translate directly into log positions — replay after
    a failure re-reads exactly the records that followed the snapshot,
    even though the producer kept appending in the meantime.  When the
    consumer catches up with the log end it returns :data:`RETRY` and
    polls again (consumer lag stays bounded by the poll rate).
    """

    def __init__(self, log: PartitionedLog,
                 poll_rate_per_s: float = 10_000.0) -> None:
        if log.partitions < 1:
            raise ConfigurationError("log has no partitions")
        self._log = log
        self._poll_rate = poll_rate_per_s

    def generate(self, instance: int, seq: int):
        partition = instance % self._log.partitions
        if seq >= self._log.end_offset(partition):
            return RETRY
        record = self._log.read(partition, seq)
        return record.key, record.value

    def rate_per_instance(self, parallelism: int) -> float:
        return self._poll_rate / parallelism
