"""A Kafka-like durable partitioned log (§VI substrate).

Stream processors achieve exactly-once end-to-end by pairing their
checkpoint protocol with *replayable* inputs — "leveraging also
transactional queues, such as Apache Kafka" (§VI).  This package
provides that substrate: an append-only, partitioned, offset-addressed
log that survives compute-node failures (it is an external system), a
rate-controlled producer, and a :class:`LogBackedSource` that plugs the
log into the dataflow engine's source/offset-replay machinery.
"""

from .log import LogAppender, LogBackedSource, PartitionedLog, Record

__all__ = [
    "LogAppender",
    "LogBackedSource",
    "PartitionedLog",
    "Record",
]
