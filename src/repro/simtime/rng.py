"""Named deterministic random streams.

Each subsystem draws from its own named stream so that, e.g., adding a
query workload does not perturb the arrival process of the sources.  All
streams derive from one master seed, making every experiment
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import zlib


class RngStreams:
    """Factory of independent, deterministic random streams."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed mixes the master seed with a CRC of the
        name, so streams are decorrelated but stable across runs.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        mixed = (self._seed * 1_000_003) ^ zlib.crc32(name.encode("utf-8"))
        stream = random.Random(mixed)
        self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float) -> float:
        """One draw from an exponential distribution with ``mean``."""
        return self.stream(name).expovariate(1.0 / mean) if mean > 0 else 0.0

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)
