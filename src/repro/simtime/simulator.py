"""The discrete-event simulator loop."""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SimulationError
from .events import EventHandle, EventQueue
from .rng import RngStreams


class Simulator:
    """Executes scheduled callbacks in virtual-time order.

    Components schedule callbacks with :meth:`schedule` (relative delay)
    or :meth:`schedule_at` (absolute time).  The simulation advances with
    :meth:`run_until` / :meth:`run`; time never moves backwards.
    """

    def __init__(self, seed: int = 7) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._processed = 0
        self.rng = RngStreams(seed)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        return self._queue.push(time, callback, args)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue produced a past event")
        self._now = event.time
        self._processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, time: float) -> None:
        """Run all events with timestamps ``<= time``, then set now=time.

        Events scheduled during execution are processed too, as long as
        they fall within the horizon.
        """
        if time < self._now:
            raise SimulationError("run_until target is in the past")
        if self._running:
            raise SimulationError("simulator re-entered while running")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
            self._now = max(self._now, time)
        finally:
            self._running = False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events``); returns count."""
        if self._running:
            raise SimulationError("simulator re-entered while running")
        self._running = True
        executed = 0
        try:
            while max_events is None or executed < max_events:
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed
