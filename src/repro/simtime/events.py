"""Event objects and the time-ordered event queue."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``: the sequence number breaks
    ties deterministically in scheduling order, which keeps simulations
    reproducible even when many events share a timestamp.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by ``schedule``; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class EventQueue:
    """Binary-heap event queue with lazy deletion of cancelled events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...]) -> EventHandle:
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
