"""Discrete-event simulation core: virtual clock, event queue, resources.

The whole reproduction runs on virtual time so that latency and
throughput measurements are deterministic.  The public pieces are:

* :class:`~repro.simtime.simulator.Simulator` — the event loop;
* :class:`~repro.simtime.resources.Server` — a FIFO single-server
  resource (store partitions, coordinator);
* :class:`~repro.simtime.resources.WorkerPool` — an n-worker pool with
  per-key FIFO ordering (node CPU pools);
* :class:`~repro.simtime.rng.RngStreams` — named deterministic random
  streams.
"""

from .events import Event, EventHandle
from .rng import RngStreams
from .resources import Server, WorkerPool
from .simulator import Simulator

__all__ = [
    "Event",
    "EventHandle",
    "RngStreams",
    "Server",
    "Simulator",
    "WorkerPool",
]
