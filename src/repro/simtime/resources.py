"""Simulated contended resources: FIFO servers and worker pools.

These model CPUs and store partitions.  Both use *advance reservation*:
because jobs are only ever submitted at the current virtual time and the
simulator processes events in time order, reserving the earliest feasible
completion slot at submission time yields the same schedule as an
operational FIFO queue, with far fewer events.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..errors import SimulationError
from .simulator import Simulator

Callback = Callable[..., None]


class Server:
    """A single FIFO server (e.g. one store partition).

    Jobs run one at a time, in submission order; each job occupies the
    server for its ``duration`` and then fires its completion callback.
    """

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        self._sim = sim
        self.name = name
        self._busy_until = 0.0
        self._jobs = 0
        self._busy_time = 0.0
        self._wait_time = 0.0

    @property
    def busy_until(self) -> float:
        return max(self._busy_until, self._sim.now)

    @property
    def jobs_served(self) -> int:
        return self._jobs

    @property
    def total_busy_ms(self) -> float:
        return self._busy_time

    @property
    def total_wait_ms(self) -> float:
        """Sum of queueing delays experienced by submitted jobs."""
        return self._wait_time

    def submit(self, duration: float, on_complete: Callback | None = None,
               *args: Any) -> float:
        """Queue a job; returns its completion time (virtual ms)."""
        if duration < 0:
            raise SimulationError("job duration must be non-negative")
        start = max(self._sim.now, self._busy_until)
        finish = start + duration
        self._busy_until = finish
        self._jobs += 1
        self._busy_time += duration
        self._wait_time += start - self._sim.now
        if on_complete is not None:
            self._sim.schedule_at(finish, on_complete, *args)
        return finish

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of ``horizon_ms`` spent busy (may exceed 1 if the
        queue has grown beyond the horizon — a sign of overload)."""
        if horizon_ms <= 0:
            return 0.0
        return self._busy_time / horizon_ms


class WorkerPool:
    """An ``n``-worker pool with per-key FIFO ordering.

    Jobs tagged with the same key execute in submission order (this is
    how we keep per-operator-instance record processing ordered while
    instances share a node's CPU pool).  Jobs with different keys run
    concurrently, up to the worker count.
    """

    def __init__(self, sim: Simulator, workers: int,
                 name: str = "pool") -> None:
        if workers < 1:
            raise SimulationError("worker pool needs at least one worker")
        self._sim = sim
        self.name = name
        self._worker_busy_until = [0.0] * workers
        self._key_busy_until: dict[Hashable, float] = {}
        self._jobs = 0
        self._busy_time = 0.0
        self._wait_time = 0.0

    @property
    def workers(self) -> int:
        return len(self._worker_busy_until)

    @property
    def jobs_served(self) -> int:
        return self._jobs

    @property
    def total_busy_ms(self) -> float:
        return self._busy_time

    @property
    def total_wait_ms(self) -> float:
        return self._wait_time

    def submit(self, key: Hashable, duration: float,
               on_complete: Callback | None = None, *args: Any) -> float:
        """Queue a job for ``key``; returns its completion time."""
        if duration < 0:
            raise SimulationError("job duration must be non-negative")
        now = self._sim.now
        worker = min(
            range(len(self._worker_busy_until)),
            key=self._worker_busy_until.__getitem__,
        )
        earliest = max(
            now,
            self._worker_busy_until[worker],
            self._key_busy_until.get(key, 0.0),
        )
        finish = earliest + duration
        self._worker_busy_until[worker] = finish
        self._key_busy_until[key] = finish
        self._jobs += 1
        self._busy_time += duration
        self._wait_time += earliest - now
        if on_complete is not None:
            self._sim.schedule_at(finish, on_complete, *args)
        return finish

    def key_available_at(self, key: Hashable) -> float:
        """Earliest time a new job for ``key`` could start."""
        return max(self._sim.now, self._key_busy_until.get(key, 0.0))

    def utilization(self, horizon_ms: float) -> float:
        if horizon_ms <= 0:
            return 0.0
        return self._busy_time / (horizon_ms * self.workers)
