"""The direct object interface (§IX-D, Fig. 14).

Instead of going through SQL, applications can fetch state objects for a
set of keys directly — the equivalent of IMDG's ``getAll``.  Per-query
cost is a fixed overhead plus a batched per-key cost with economies of
scale (``direct_key_ms * k ** direct_batch_exponent``), which produces
the power-law throughput/selectivity curve the paper measures.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..errors import QueryError, SnapshotNotFoundError


class DirectQuery:
    """Handle for one direct-object query."""

    def __init__(self, table: str, keys: list[Hashable],
                 submitted_ms: float) -> None:
        self.table = table
        self.keys = keys
        self.submitted_ms = submitted_ms
        self.completed_ms: float | None = None
        self.values: dict[Hashable, object] | None = None
        self.error: Exception | None = None
        self.on_done: Callable[["DirectQuery"], None] | None = None

    @property
    def done(self) -> bool:
        return self.completed_ms is not None

    @property
    def latency_ms(self) -> float:
        if self.completed_ms is None:
            raise QueryError("query still running")
        return self.completed_ms - self.submitted_ms


class DirectObjectInterface:
    """Key-lookup queries against live or snapshot state."""

    def __init__(self, env) -> None:
        self.env = env
        self.sim = env.sim
        self.cluster = env.cluster
        self.store = env.store
        self.costs = env.costs
        self._entry_rotation = 0
        self.queries_executed = 0

    def submit_get(self, table: str, keys: list[Hashable],
                   snapshot_id: int | None = None,
                   on_done: Callable[[DirectQuery], None] | None = None,
                   ) -> DirectQuery:
        """Fetch the state objects for ``keys`` from a live table, or
        from a snapshot table when ``snapshot_id`` is given (or the
        latest committed one if ``snapshot_id`` is ``-1``)."""
        query = DirectQuery(table, list(keys), self.sim.now)
        query.on_done = on_done
        costs = self.costs
        k = max(1, len(keys))
        duration = (
            costs.direct_fixed_ms
            + costs.direct_key_ms * (k ** costs.direct_batch_exponent)
        )
        node = self._next_entry_node()
        pool = self.cluster.node(node).query_pool
        pool.submit(
            ("direct", id(query)), duration,
            self._complete, query, snapshot_id,
        )
        return query

    def _next_entry_node(self) -> int:
        alive = self.cluster.surviving_node_ids()
        node = alive[self._entry_rotation % len(alive)]
        self._entry_rotation += 1
        return node

    def _complete(self, query: DirectQuery,
                  snapshot_id: int | None) -> None:
        try:
            query.values = self._fetch(query, snapshot_id)
        except Exception as exc:
            query.error = exc
        else:
            self.queries_executed += 1
        query.completed_ms = self.sim.now
        if query.on_done is not None:
            query.on_done(query)

    def _fetch(self, query: DirectQuery,
               snapshot_id: int | None) -> dict[Hashable, object]:
        if snapshot_id is None:
            table = self.store.get_live_table(query.table)
            return {
                key: table.get(key)
                for key in query.keys
                if table.get(key) is not None
            }
        if snapshot_id == -1:
            committed = self.store.committed_ssid
            if committed is None:
                raise SnapshotNotFoundError(-1)
            snapshot_id = committed
        table = self.store.get_snapshot_table(query.table)
        out: dict[Hashable, object] = {}
        for instance in range(table.parallelism):
            state = table.instance_state(snapshot_id, instance)
            for key in query.keys:
                if key in state:
                    out[key] = state[key]
        return out
