"""Distributed multi-way join execution.

The query service executes eligible JOIN statements as a pipeline of
per-step build/probe *stages* instead of shipping every table's rows to
the entry node.  Each step's physical strategy is chosen up front by
:func:`repro.sql.access.choose_join_path` from CostModel-priced
candidates:

* **co-partitioned hash join** — the join key is the partition key on
  both sides and the tables share partition placement, so each node
  joins its local shards and no join input crosses the network;
* **broadcast hash join** — the build side is estimated small (sketch /
  zone-map estimates feed the chooser), built once and replicated to
  every node holding probe rows, which probe locally — during the
  vectorized sweep via compiled key closures when the probe side is
  the base table's scan payload;
* **shuffle-hash join** — the general fallback: both sides repartition
  by join key across the surviving nodes, which build and probe their
  slice in parallel;
* **index-nested-loop join** — an index-assisted broadcast: the build
  side is resolved through a secondary index on the join column
  (probing only the keys the probe side actually contains) instead of
  being scanned at all.

Correctness never depends on the strategy: the coordinator manipulates
the actual rows in-process (the data plane) while the chosen strategy
decides *where* simulated time and network bytes are billed (the
billing plane) — the same split the scan machinery uses.  Every row
carries an *order tag* (a tuple of per-step ``(node, position)``
components; LEFT-join NULL padding appends ``()``), and the entry node
sorts merged rows by tag before finalizing, which reproduces the
central left-deep execution's row order bit for bit.  Error precedence
also mirrors central execution: scan-fragment errors (table FROM
order, node-sorted) outrank statement-shape validation, which outranks
the first build-key error (minimum right tag), which outranks the
first probe-key error (minimum left tag); residual/projection errors
surface naturally from the sorted merged rows.

Failures restart the whole join: any relevant node death bumps the
join attempt token together with every table's scan attempt, voiding
in-flight stages and shipments, and re-dispatches all scans onto the
survivors after the retry backoff — build/probe stages are never
resumed half-way, because a stage's inputs may have lived on the dead
node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.partition import copartitioned_tables, stable_hash
from ..errors import QueryAbortedError
from ..kvstore.indexes import EqProbe
from ..sql.access import JoinCandidate, JoinPath, choose_join_path
from ..sql.ast import Binary, Column, Literal, Select
from ..sql.batch import compile_probe_key, run_broadcast_probe, run_fragment_batches
from ..sql.executor import (
    EvalContext,
    bind_row,
    build_join_index,
    collect_right_columns,
    execute_joined_select,
    probe_join_index,
    validate_joined_select,
)
from ..sql.fragments import JoinFragment, KeySet, join_fragments, partition_aligned_binding


class _JoinLocalAck:
    """Scan payload held on its node for a later join stage.

    The rows travel in-process (data plane) but the shipment bills only
    a framed control message (``row_overhead_bytes``): in join mode the
    node's shard output is a *join input kept local*, not a result
    shipped to the entry node.  ``__len__`` is 0 so the generic arrival
    path counts no shipped rows; the held rows are discarded with the
    payload buffer when a retry voids the table.
    """

    __slots__ = ("node_id", "rows")

    def __init__(self, node_id: int, rows: list) -> None:
        self.node_id = node_id
        self.rows = rows

    def __len__(self) -> int:
        return 0


@dataclass
class JoinPlan:
    """Chosen strategies and table roles for one join-mode query."""

    steps: tuple[JoinFragment, ...]
    paths: tuple[JoinPath, ...]
    final_select: Select
    base_table: str
    base_binding: str
    #: tables whose scan payload stays node-local (ack shipment).
    local: frozenset
    #: index-nested-loop build tables — never scanned at all.
    excluded: frozenset
    #: bumped (with every table attempt) to void in-flight stages.
    attempt: int = 0
    #: True while build/probe stages are running — any node death is
    #: then relevant, because stage inputs live across the cluster.
    stage_active: bool = False


# -- strategy selection ------------------------------------------------------


def _table_args(kind: str, snapshot_id) -> tuple:
    return () if kind == "live" else (snapshot_id,)


def _pushed_equality(conjunct) -> "tuple[str, object] | None":
    """``col = literal`` (either side) → ``(column name, value)``."""
    if not isinstance(conjunct, Binary) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Column) and isinstance(right, Literal):
        return left.name, right.value
    if isinstance(right, Column) and isinstance(left, Literal):
        return right.name, left.value
    return None


def _estimate_rows(service, table, fragment, args) -> tuple[int, str]:
    """Estimated post-pushdown rows of one side, with its source."""
    nodes = service.cluster.surviving_node_ids()
    partitions: list[int] = []
    entries = 0
    if hasattr(table, "partition_entry_count"):
        for node_id in nodes:
            for partition in table.partitions_on_node(node_id):
                partitions.append(partition)
                entries += table.partition_entry_count(partition, *args)
    else:
        entries = sum(table.entries_on_node(node_id, *args)
                      for node_id in nodes)
    if fragment is not None and isinstance(fragment.key_filter, KeySet):
        return min(entries, len(fragment.key_filter.keys)), "zone-map"
    if (
        fragment is not None
        and fragment.pushed
        and partitions
        and service.sketch_enabled
        and hasattr(table, "approx_estimate")
        and table.sketch_ready(*args)
    ):
        for conjunct in fragment.pushed:
            equality = _pushed_equality(conjunct)
            if equality is None:
                continue
            column, value = equality
            if not table.has_sketch(column, "countmin"):
                continue
            answer = table.approx_estimate(
                partitions, "count_eq", column, value, *args
            )
            if answer is not None:
                estimate = max(0, int(round(answer[0])))
                return min(entries, estimate), "sketch"
    return entries, "entries"


def _row_width_bytes(costs, fragment) -> int:
    if fragment is not None and fragment.projection is not None:
        return (costs.row_overhead_bytes
                + len(fragment.projection) * costs.column_bytes)
    return costs.row_bytes


def _index_kind_for(service, step: JoinFragment, table, args) -> str | None:
    """Index kind on the build column, for index-nested-loop pricing."""
    if not service.index_enabled:
        return None
    if step.using:
        column = step.using[0] if len(step.using) == 1 else None
    elif isinstance(step.build, Column):
        column = step.build.name
    else:
        column = None
    if column is None:
        return None
    ready = getattr(table, "index_ready", None)
    if ready is None or not ready(*args):
        return None
    return table.index_columns().get(column)


def choose_join_strategies(service, select: Select, plan, table_kinds,
                           snapshot_id):
    """Per-step strategy choices, or ``None`` when the statement must
    run its joins centrally.  Shared by execution and ``explain``."""
    if not service.distributed_joins_enabled:
        return None
    if plan is None or plan.partial is not None:
        return None
    if isinstance(snapshot_id, list):
        return None
    steps = join_fragments(select)
    if steps is None:
        return None
    kinds = dict(table_kinds)
    nodes = service.cluster.surviving_node_ids()
    costs = service.costs
    base_name = select.table.name
    base_binding = select.table.binding
    base_fragment = plan.fragments.get(base_name)
    base_args = _table_args(kinds[base_name], snapshot_id)
    base_table = service._table_for(base_name, kinds[base_name])
    left_rows, _ = _estimate_rows(service, base_table, base_fragment,
                                  base_args)
    left_bytes = _row_width_bytes(costs, base_fragment)
    #: bindings whose rows still sit where their partition key placed
    #: them (base initially; a co-partitioned step keeps its right side
    #: aligned too, a shuffle step invalidates everything).
    aligned = {base_binding}
    binding_table = {base_binding: (base_table, base_name)}
    left_native = True
    paths: list[JoinPath] = []
    for step in steps:
        args = _table_args(kinds[step.table], snapshot_id)
        right_table = service._table_for(step.table, kinds[step.table])
        fragment = plan.fragments.get(step.table)
        right_rows, source = _estimate_rows(service, right_table,
                                            fragment, args)
        aligned_binding = partition_aligned_binding(step)
        probe_binding = (base_binding if aligned_binding == ""
                         else aligned_binding)
        partition_key_join = (aligned_binding is not None
                              and probe_binding in aligned)
        copartitioned = False
        if partition_key_join:
            left_ref = binding_table.get(probe_binding)
            copartitioned = left_ref is not None and copartitioned_tables(
                left_ref[0], right_table, nodes
            )
        candidate = JoinCandidate(
            table=step.table,
            kind=step.kind,
            left_rows=left_rows,
            right_rows=right_rows,
            left_row_bytes=left_bytes,
            right_row_bytes=_row_width_bytes(costs, fragment),
            node_count=len(nodes),
            partition_key_join=partition_key_join,
            copartitioned=copartitioned,
            left_native=left_native,
            index_kind=_index_kind_for(service, step, right_table, args),
            estimate_source=source,
        )
        path = choose_join_path(candidate, costs)
        paths.append(path)
        if path.strategy == "copartitioned":
            aligned.add(step.binding)
            binding_table[step.binding] = (right_table, step.table)
        elif path.strategy == "shuffle":
            left_native = False
            aligned.clear()
        left_rows = max(left_rows, right_rows)
        left_bytes += _row_width_bytes(costs, fragment)
    return steps, tuple(paths)


def plan_distributed_joins(service, record) -> JoinPlan | None:
    """Decide join mode for one query; updates the strategy counters."""
    execution = record.execution
    select = record.select
    if not isinstance(select, Select) or not select.joins:
        return None
    if not execution.materialize:
        return None
    chosen = choose_join_strategies(
        service, select, record.plan, record.table_kinds,
        record.snapshot_id,
    )
    if chosen is None or any(
        path.strategy == "central" for path in chosen[1]
    ):
        # One central step makes the whole statement central: the entry
        # node needs every table's rows anyway, so a mixed pipeline
        # would only add stages without saving shipping.
        execution.joins_central += len(select.joins)
        execution.join_strategies = ["central"] * len(select.joins)
        return None
    steps, paths = chosen
    execution.join_strategies = [path.strategy for path in paths]
    local = {select.table.name}
    excluded = set()
    for step, path in zip(steps, paths):
        if path.strategy == "copartitioned":
            execution.joins_copartitioned += 1
            local.add(step.table)
        elif path.strategy == "broadcast":
            execution.joins_broadcast += 1
        elif path.strategy == "shuffle":
            execution.joins_shuffle += 1
            local.add(step.table)
        elif path.strategy == "index-nested-loop":
            execution.joins_index_nested += 1
            excluded.add(step.table)
    return JoinPlan(
        steps=steps,
        paths=paths,
        final_select=record.plan.final_select,
        base_table=select.table.name,
        base_binding=select.table.binding,
        local=frozenset(local),
        excluded=frozenset(excluded),
    )


def explain_join_lines(service, select: Select, plan,
                       table_kinds) -> list[str]:
    """Per-step strategy lines for ``QueryService.explain``."""
    if not isinstance(select, Select) or not select.joins:
        return []
    if not service.distributed_joins_enabled:
        return ["  joins: central (distributed joins disabled)"]
    kinds = dict(table_kinds)
    snapshot_id = None
    if any(kind == "snapshot" for kind in kinds.values()):
        snapshot_id = service.store.committed_ssid
        if snapshot_id is None:
            return ["  joins: central (no committed snapshot to price "
                    "against)"]
    chosen = choose_join_strategies(service, select, plan, table_kinds,
                                    snapshot_id)
    if chosen is None:
        return ["  joins: central (statement not eligible for "
                "distributed join execution)"]
    steps, paths = chosen
    lines: list[str] = []
    central = any(path.strategy == "central" for path in paths)
    if central:
        lines.append("  joins: central (a step priced central, so the "
                     "entry node needs every table anyway)")
    for step, path in zip(steps, paths):
        lines.append(f"  join [{step.table}]: {path.describe()}")
        lines.extend(f"    rejected {reason}" for reason in path.rejected)
    return lines


# -- failure handling --------------------------------------------------------


def join_failure_relevant(record, node_id: int) -> bool:
    """Whether a node death must restart this join-mode query."""
    join = record.join
    if join.stage_active:
        return True  # stage inputs/outputs live across the cluster
    return any(
        node_id in nodes for nodes in record.state["nodes"].values()
    )


def restart_join(service, record) -> None:
    """Void every in-flight scan and stage; re-dispatch after backoff.

    Stages are never resumed: a build index or probe slice may have
    lived on the dead node, so the only faithful recovery is to re-scan
    everything on the survivors and re-run the pipeline.
    """
    join = record.join
    state = record.state
    join.attempt += 1
    join.stage_active = False
    for table in state["rows"]:
        state["attempt"][table] += 1
        state["nodes"][table] = set()
        state["rows"][table].clear()
    state["pending"] = 0
    service.sim.schedule(
        service.retry_policy.retry_backoff_ms,
        _join_redispatch, service, record, join.attempt,
    )


def _join_redispatch(service, record, token: int) -> None:
    execution = record.execution
    join = record.join
    if execution.done or join.attempt != token:
        return
    alive = service.cluster.surviving_node_ids()
    if not alive:
        service._abort(execution, QueryAbortedError("no surviving nodes"))
        return
    state = record.state
    shards: list[tuple[str, str, int]] = []
    for stripe, (table_name, kind) in enumerate(record.table_kinds):
        if table_name in join.excluded:
            continue
        state["stripe"][table_name] = stripe * max(1, len(alive))
        targets = service._scan_targets(record, table_name, kind)
        state["nodes"][table_name] = set(targets)
        shards.extend((table_name, kind, n) for n in targets)
    state["pending"] = len(shards)
    if not shards:
        start_join_pipeline(service, record)
        return
    for table_name, kind, node_id in shards:
        service._scan_shard(record, table_name, kind, node_id,
                            state["attempt"][table_name])


# -- the stage pipeline ------------------------------------------------------


class _Countdown:
    """Run ``done`` after ``n`` completions (immediately when n == 0)."""

    __slots__ = ("remaining", "done")

    def __init__(self, remaining: int, done) -> None:
        self.remaining = remaining
        self.done = done
        if remaining == 0:
            done()

    def one(self, *_args) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.done()


def start_join_pipeline(service, record) -> None:
    """All scans landed: surface canonical scan errors, validate the
    statement shape, then run the per-step stages."""
    execution = record.execution
    shard_error = service._first_shard_error(record)
    if shard_error is not None:
        service._finish_execution(execution, None, shard_error)
        return
    join = record.join
    try:
        validate_joined_select(join.final_select)
    except Exception as exc:  # same errors central plan_select raises
        service._finish_execution(execution, None, exc)
        return
    join.stage_active = True
    _PipelineRunner(service, record).run()


class _PipelineRunner:
    """Executes one query's join stages; one instance per (re)start."""

    def __init__(self, service, record) -> None:
        self.service = service
        self.record = record
        self.join = record.join
        self.execution = record.execution
        self.state = record.state
        self.costs = service.costs
        self.token = self.join.attempt
        self.context = EvalContext(now_ms=service.sim.now)
        #: holder node -> [(tag, bound row), ...] in tag order.
        self.left: dict[int, list] = {}
        #: holder node -> projected raw payload (base table only; feeds
        #: the vectorized broadcast probe of step 0, then dropped).
        self.raw_left: "dict[int, list] | None" = None
        self.scanned = 0

    # -- plumbing -------------------------------------------------------

    def _live(self) -> bool:
        return (not self.execution.done
                and self.join.attempt == self.token)

    def _fail(self, error: Exception) -> None:
        if self._live():
            self.service._finish_execution(self.execution, None, error)

    def _store_bill(self, node_id: int, stripe: int, duration: float,
                    then, *args) -> None:
        server = self.service.cluster.node(node_id).store_server(stripe)
        server.submit(duration, then, *args)

    def _payload_rows(self, table: str) -> dict[int, list]:
        per_node = self.state["rows"][table]
        return {
            node_id: (payload.rows
                      if isinstance(payload, _JoinLocalAck) else payload)
            for node_id, payload in per_node.items()
        }

    def _raw_bytes(self, raws) -> int:
        costs = self.costs
        return sum(
            costs.row_overhead_bytes + len(raw) * costs.column_bytes
            for raw in raws
        )

    def _bound_bytes(self, tagged) -> int:
        costs = self.costs
        total = 0
        for _tag, row in tagged:
            width = sum(1 for name in row if "." not in name)
            total += costs.row_overhead_bytes + width * costs.column_bytes
        return total

    def _send(self, src: int, dst: int, label: str, step_index: int,
              nbytes: int, then, *args) -> None:
        channel = (label, self.execution.qid, step_index, src, dst,
                   self.token)
        self.execution.channels.add(channel)
        self.service.cluster.network.send(
            src, dst, then, *args, nbytes=nbytes, channel=channel,
        )

    def _tagged_rights(self, step: JoinFragment,
                       raw_by_node: dict[int, list]) -> list:
        return [
            ((node_id, position), bind_row(raw, step.binding))
            for node_id in sorted(raw_by_node)
            for position, raw in enumerate(raw_by_node[node_id])
        ]

    # -- pipeline -------------------------------------------------------

    def run(self) -> None:
        base_rows = self._payload_rows(self.join.base_table)
        self.raw_left = {n: base_rows[n] for n in sorted(base_rows)}
        binding = self.join.base_binding
        for node_id in sorted(base_rows):
            self.left[node_id] = [
                (((node_id, position),), bind_row(raw, binding))
                for position, raw in enumerate(base_rows[node_id])
            ]
        self.scanned = sum(len(rows) for rows in base_rows.values())
        self._step(0)

    def _step(self, index: int) -> None:
        if not self._live():
            return
        if index >= len(self.join.steps):
            self._final_ship()
            return
        step = self.join.steps[index]
        strategy = self.join.paths[index].strategy
        if strategy == "index-nested-loop":
            self._run_index_nested(index, step)
            return
        raw_by_node = self._payload_rows(step.table)
        rights = self._tagged_rights(step, raw_by_node)
        self.scanned += len(rights)
        self.execution.join_build_rows += len(rights)
        right_columns = collect_right_columns(
            [row for _tag, row in rights]
        )
        build_index, build_error = build_join_index(
            rights, step.using, step.build, self.context
        )
        if strategy == "copartitioned":
            self._run_copartitioned(index, step, raw_by_node,
                                    build_index, build_error,
                                    right_columns)
        elif strategy == "broadcast":
            self._run_broadcast(index, step, raw_by_node, build_index,
                                build_error, right_columns, len(rights))
        else:
            self._run_shuffle(index, step, raw_by_node, rights,
                              build_index, build_error, right_columns)

    # A build-key error outranks every probe error (central evaluates
    # the whole build side before probing), so stages check it after
    # their build billing and before any probe work.

    def _probe_all(self, step: JoinFragment, build_index: dict,
                   right_columns: set,
                   lefts: dict[int, list]) -> tuple[dict, object]:
        """Probe every holder's rows; returns (results per holder,
        minimum-tag probe error)."""
        results: dict[int, list] = {}
        probe_error = None
        for node_id in sorted(lefts):
            rows, error = probe_join_index(
                lefts[node_id], build_index, step.using, step.probe,
                step.kind, right_columns, self.context,
            )
            if rows:
                results[node_id] = rows
            if error is not None and (
                probe_error is None or error[0] < probe_error[0]
            ):
                probe_error = error
        return results, probe_error

    def _advance(self, index: int, results: dict[int, list],
                 probe_error) -> None:
        if not self._live():
            return
        if probe_error is not None:
            self._fail(probe_error[1])
            return
        self.left = results
        self.raw_left = None
        self._step(index + 1)

    # -- co-partitioned -------------------------------------------------

    def _run_copartitioned(self, index: int, step: JoinFragment,
                           raw_by_node: dict, build_index: dict,
                           build_error, right_columns: set) -> None:
        # Build and probe are local to every node; matching rows are
        # co-located by the partition key, so probing the global index
        # returns exactly the local matches.  Nothing crosses the wire.
        costs = self.costs
        holders = sorted(set(self.left) | set(raw_by_node))

        def stages_done() -> None:
            if not self._live():
                return
            if build_error is not None:
                self._fail(build_error[1])
                return
            results, probe_error = self._probe_all(
                step, build_index, right_columns, self.left
            )
            self._advance(index, results, probe_error)

        countdown = _Countdown(len(holders), stages_done)
        for node_id in holders:
            duration = (
                len(raw_by_node.get(node_id, ()))
                * costs.join_build_entry_ms
                + len(self.left.get(node_id, ()))
                * costs.join_probe_entry_ms
            )
            self._store_bill(node_id, node_id + index, duration,
                             countdown.one)

    # -- broadcast ------------------------------------------------------

    def _run_broadcast(self, index: int, step: JoinFragment,
                       raw_by_node: dict, build_index: dict,
                       build_error, right_columns: set,
                       build_rows: int) -> None:
        costs = self.costs
        execution = self.execution
        service = self.service
        build_bytes = sum(
            self._raw_bytes(raw_by_node[node_id])
            for node_id in raw_by_node
        )
        entry = execution.entry_node
        compiled_probe = None
        sweep = (index == 0 and self.raw_left is not None
                 and service.vectorized_enabled)
        if sweep and step.probe is not None:
            compiled_probe = compile_probe_key(
                step.probe, self.join.base_binding
            )
        results: dict[int, list] = {}
        errors: list = []

        def probes_done() -> None:
            if not self._live():
                return
            probe_error = None
            for error in errors:
                if probe_error is None or error[0] < probe_error[0]:
                    probe_error = error
            self._advance(index, results, probe_error)

        def built() -> None:
            attempt = self.token
            if execution.done or self.join.attempt != attempt:
                return  # a retry voided this stage while we were billed
            if build_error is not None:
                self._fail(build_error[1])
                return
            holders = sorted(self.left)
            countdown = _Countdown(len(holders), probes_done)
            for node_id in holders:
                execution.join_bytes_broadcast += build_bytes
                execution.bytes_shipped += build_bytes
                self._send(entry, node_id, "join-bcast", index,
                           build_bytes, self._broadcast_arrived, index,
                           step, node_id, build_index, right_columns,
                           sweep, compiled_probe, results, errors,
                           countdown)

        # The build side reached the entry node through the normal scan
        # shipment; it is built once there, then replicated.
        pool = service.cluster.node(entry).query_pool
        pool.submit(("query", execution.qid),
                    build_rows * costs.join_build_entry_ms, built)

    def _broadcast_arrived(self, index: int, step: JoinFragment,
                           node_id: int, build_index: dict,
                           right_columns: set, sweep: bool,
                           compiled_probe, results: dict, errors: list,
                           countdown: _Countdown) -> None:
        if not self._live():
            return
        lefts = self.left.get(node_id, [])
        duration = len(lefts) * self.costs.join_probe_entry_ms

        def probe() -> None:
            if not self._live():
                return
            if sweep:
                rows, error = run_broadcast_probe(
                    self.raw_left[node_id], (node_id,),
                    self.join.base_binding, step.using, compiled_probe,
                    step.kind, build_index, right_columns, self.context,
                )
            else:
                rows, error = probe_join_index(
                    lefts, build_index, step.using, step.probe,
                    step.kind, right_columns, self.context,
                )
            if rows:
                results[node_id] = rows
            if error is not None:
                errors.append(error)
            countdown.one()

        self._store_bill(node_id, node_id + index, duration, probe)

    # -- shuffle-hash ---------------------------------------------------

    def _run_shuffle(self, index: int, step: JoinFragment,
                     raw_by_node: dict, rights: list, build_index: dict,
                     build_error, right_columns: set) -> None:
        attempt = self.token
        if self.execution.done or self.join.attempt != attempt:
            return  # a retry voided this stage before it started
        if build_error is not None:
            # Central raises while building, before anything probes —
            # and before this step would have shipped anything.
            self._fail(build_error[1])
            return
        costs = self.costs
        execution = self.execution
        workers = sorted(self.service.cluster.surviving_node_ids())
        count = max(1, len(workers))

        def worker_of(key) -> int:
            return workers[stable_hash(key) % count]

        # Route the build side: one slice per worker, keyed exactly
        # like the index (NULL keys never ship — they cannot match).
        transfer: dict[tuple[int, int], int] = {}
        build_counts: dict[int, int] = {}
        position = 0
        for node_id in sorted(raw_by_node):
            for raw in raw_by_node[node_id]:
                _tag, row = rights[position]
                position += 1
                key = _shuffle_key(step, row, self.context)
                if key is _SKIP:
                    continue
                worker = worker_of(key)
                nbytes = (costs.row_overhead_bytes
                          + len(raw) * costs.column_bytes)
                transfer[node_id, worker] = (
                    transfer.get((node_id, worker), 0) + nbytes
                )
                build_counts[worker] = build_counts.get(worker, 0) + 1
        # Route the probe side; erroring/NULL keys go to the first
        # worker, where the probe re-raises or pads deterministically.
        lefts_by_worker: dict[int, list] = {}
        probe_counts: dict[int, int] = {}
        for node_id in sorted(self.left):
            for tag, row in self.left[node_id]:
                key = _shuffle_key(step, row, self.context, probe=True)
                worker = workers[0] if key is _SKIP else worker_of(key)
                lefts_by_worker.setdefault(worker, []).append((tag, row))
                probe_counts[worker] = probe_counts.get(worker, 0) + 1
                transfer[node_id, worker] = (
                    transfer.get((node_id, worker), 0)
                    + self._bound_bytes([(tag, row)])
                )

        def workers_done() -> None:
            if not self._live():
                return
            results, probe_error = self._probe_all(
                step, build_index, right_columns,
                {w: sorted(lefts_by_worker[w]) for w in lefts_by_worker},
            )
            self._advance(index, results, probe_error)

        def all_arrived() -> None:
            if not self._live():
                return
            busy = sorted(set(build_counts) | set(probe_counts))
            countdown = _Countdown(len(busy), workers_done)
            for worker in busy:
                duration = (
                    build_counts.get(worker, 0)
                    * costs.join_build_entry_ms
                    + probe_counts.get(worker, 0)
                    * costs.join_probe_entry_ms
                )
                self._store_bill(worker, worker + index, duration,
                                 countdown.one)

        pairs = sorted(transfer)
        arrivals = _Countdown(len(pairs), all_arrived)
        for sender, worker in pairs:
            nbytes = transfer[sender, worker]
            execution.join_bytes_shuffled += nbytes
            execution.bytes_shipped += nbytes
            self._send(sender, worker, "join-shuffle", index, nbytes,
                       arrivals.one)

    # -- index-nested-loop ----------------------------------------------

    def _run_index_nested(self, index: int, step: JoinFragment) -> None:
        """Index-assisted broadcast: resolve the build side through the
        index on the join column (only the probe side's keys), filter
        the candidates through the table's scan fragment, then run the
        broadcast tail.  INNER-only — the chooser rejects LEFT."""
        service = self.service
        execution = self.execution
        costs = self.costs
        kind = self.state["kinds"][step.table]
        table = service._table_for(step.table, kind)
        args = _table_args(kind, self.record.snapshot_id)
        column = step.using[0] if step.using else step.build.name
        keys: list = []
        seen: set = set()
        for node_id in sorted(self.left):
            for _tag, row in self.left[node_id]:
                key = _shuffle_key(step, row, self.context, probe=True)
                if key is _SKIP:
                    continue  # NULL / erroring keys cannot match
                if step.using:
                    key = key[0]
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        probe = EqProbe(values=tuple(keys))
        fragment = self.record.plan.fragments.get(step.table)
        if fragment is not None and fragment.is_passthrough:
            fragment = None
        compiled = None
        if fragment is not None and service.vectorized_enabled:
            compiled, _hit = fragment.compiled_form()
        nodes = sorted(service.cluster.surviving_node_ids())
        surviving: dict[int, list] = {}

        def fetched_all() -> None:
            if not self._live():
                return
            self._index_build_and_broadcast(index, step, surviving)

        countdown = _Countdown(len(nodes), fetched_all)
        for node_id in nodes:
            partitions = table.partitions_on_node(node_id)
            candidates = table.index_rows(partitions, column, probe,
                                          *args)
            execution.index_probes += len(partitions)
            execution.index_rows_read += len(candidates)
            if fragment is not None:
                try:
                    lock_rows, payload, _batches = run_fragment_batches(
                        fragment, compiled, candidates, self.context,
                        costs.scan_chunk_entries,
                    )
                except Exception as exc:  # noqa: BLE001 — ship as the error
                    self._fail(exc)
                    return
            else:
                lock_rows, payload = candidates, candidates
            if payload:
                surviving[node_id] = payload
            duration = (len(partitions) * costs.index_probe_ms
                        + len(candidates) * costs.index_entry_ms)

            def after_bill(node_id: int = node_id,
                           lock_rows: list = lock_rows) -> None:
                if not self._live():
                    return
                if service.repeatable_read and kind == "live":
                    service._lock_rows(execution, step.table, lock_rows,
                                       countdown.one)
                else:
                    countdown.one()

            self._store_bill(node_id, node_id + index, duration,
                             after_bill)

    def _index_build_and_broadcast(self, index: int, step: JoinFragment,
                                   surviving: dict[int, list]) -> None:
        execution = self.execution
        attempt = self.token
        if execution.done or self.join.attempt != attempt:
            return  # a retry voided this stage mid-index-fetch
        entry = execution.entry_node

        def assembled() -> None:
            if not self._live():
                return
            rights = self._tagged_rights(step, surviving)
            self.scanned += len(rights)
            execution.join_build_rows += len(rights)
            right_columns = collect_right_columns(
                [row for _tag, row in rights]
            )
            build_index, build_error = build_join_index(
                rights, step.using, step.build, self.context
            )
            self._run_broadcast(index, step, surviving, build_index,
                                build_error, right_columns, len(rights))

        senders = sorted(surviving)
        arrivals = _Countdown(len(senders), assembled)
        for node_id in senders:
            nbytes = self._raw_bytes(surviving[node_id])
            execution.bytes_shipped += nbytes
            self._send(node_id, entry, "join-inlj", index, nbytes,
                       arrivals.one)

    # -- finalization ---------------------------------------------------

    def _final_ship(self) -> None:
        execution = self.execution
        attempt = self.token
        if execution.done or self.join.attempt != attempt:
            return  # a retry voided the pipeline before the final ship
        service = self.service
        entry = execution.entry_node
        holders = sorted(self.left)
        shipped: list = []

        def merge() -> None:
            if not self._live():
                return
            execution.entries_scanned = self.state["scanned"]
            duration = (execution.rows_shipped
                        * self.costs.merge_row_ms)
            pool = service.cluster.node(entry).query_pool
            pool.submit(("query", execution.qid), duration,
                        self._finalize, shipped)

        arrivals = _Countdown(len(holders), merge)
        for node_id in holders:
            rows = self.left[node_id]
            nbytes = self._bound_bytes(rows)
            execution.rows_shipped += len(rows)
            execution.bytes_shipped += nbytes
            self._send(node_id, entry, "join-result", -1, nbytes,
                       arrivals.one)
            shipped.extend(rows)

    def _finalize(self, shipped: list) -> None:
        if not self._live():
            return
        self.join.stage_active = False
        shipped.sort(key=lambda item: item[0])
        rows = [row for _tag, row in shipped]
        context = EvalContext(now_ms=self.service.sim.now)
        try:
            result = execute_joined_select(
                self.join.final_select, rows, context,
                scanned=self.scanned,
            )
        except Exception as exc:  # surface SQL errors on the handle
            self.service._finish_execution(self.execution, None, exc)
            return
        self.service._finish_execution(self.execution, result, None)


class _Skip:
    __slots__ = ()


_SKIP = _Skip()


def _shuffle_key(step: JoinFragment, row: dict, context: EvalContext,
                 probe: bool = False):
    """A row's join key for routing — ``_SKIP`` for NULL components or
    evaluation errors (the worker-side probe re-raises those with the
    right tag, so routing never has to)."""
    if step.using:
        key = tuple(row.get(col) for col in step.using)
        if any(part is None for part in key):
            return _SKIP
        return key
    expr = step.probe if probe else step.build
    try:
        from ..sql.executor import _eval

        key = _eval(expr, row, context, None)
    except Exception:  # noqa: BLE001 — surfaced by the worker's probe
        return _SKIP
    return _SKIP if key is None else key
