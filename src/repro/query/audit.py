"""Auditing and compliance queries (§III).

GDPR Article 15 gives individuals the right to access their personal
data — *including* data held inside a stream processor's internal state.
:class:`StateAuditor` answers such subject-access requests in one shot:
for a given key it collects the live value and every retained snapshot
version from **every** stateful operator in the job, producing a
complete picture of what the system currently knows and recently knew
about that subject.

The same machinery serves the paper's debugging story:
:meth:`StateAuditor.submit_history` shows how one key's state mutated
across snapshot versions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..errors import QueryError

#: Process-wide monotonic audit ids.  Never key scheduled work on
#: ``id(report)``: CPython recycles object addresses, so two audits
#: alive at different times could collide on the pool's per-key FIFO
#: and serialize (or reorder) work that should be independent.
_audit_ids = itertools.count(1)


@dataclass
class TableAudit:
    """What one operator's state holds about a subject."""

    table: str
    live_value: object | None = None
    #: snapshot id -> state object (only ids where the key was present).
    versions: dict[int, object] = field(default_factory=dict)

    @property
    def present(self) -> bool:
        return self.live_value is not None or bool(self.versions)


@dataclass
class AuditReport:
    """Result of a subject-access request across all operators."""

    key: Hashable
    submitted_ms: float
    completed_ms: float | None = None
    tables: dict[str, TableAudit] = field(default_factory=dict)
    on_done: Callable[["AuditReport"], None] | None = None
    aid: int = field(default_factory=_audit_ids.__next__)

    @property
    def done(self) -> bool:
        return self.completed_ms is not None

    @property
    def latency_ms(self) -> float:
        if self.completed_ms is None:
            raise QueryError("audit still running")
        return self.completed_ms - self.submitted_ms

    def tables_holding_data(self) -> list[str]:
        return sorted(
            name for name, audit in self.tables.items() if audit.present
        )


class StateAuditor:
    """Subject-access and state-history queries over all operators."""

    def __init__(self, env) -> None:
        self.env = env
        self.sim = env.sim
        self.cluster = env.cluster
        self.store = env.store
        self.costs = env.costs
        self._entry_rotation = 0
        self.audits_executed = 0

    # -- subject access -----------------------------------------------------

    def submit_subject_access(
        self, key: Hashable,
        on_done: Callable[[AuditReport], None] | None = None,
    ) -> AuditReport:
        """Collect everything the system stores about ``key``.

        Performs one keyed lookup per live table plus one per retained
        snapshot version of each snapshot table, all charged to the
        entry node's query workers.
        """
        report = AuditReport(key=key, submitted_ms=self.sim.now)
        report.on_done = on_done
        live_tables = self.store.live_table_names()
        snapshot_tables = self.store.snapshot_table_names()
        versions = self.store.available_ssids()
        lookups = len(live_tables) + len(snapshot_tables) * len(versions)
        duration = (
            self.costs.direct_fixed_ms
            + max(1, lookups) * self.costs.direct_key_ms
        )
        node = self._next_entry_node()
        pool = self.cluster.node(node).query_pool
        pool.submit(("audit", report.aid), duration,
                    self._complete, report, versions)
        return report

    def _complete(self, report: AuditReport, versions: list[int]) -> None:
        key = report.key
        for name in self.store.live_table_names():
            audit = report.tables.setdefault(name, TableAudit(name))
            audit.live_value = self.store.get_live_table(name).get(key)
        for name in self.store.snapshot_table_names():
            base = name.removeprefix("snapshot_")
            audit = report.tables.setdefault(base, TableAudit(base))
            table = self.store.get_snapshot_table(name)
            for ssid in versions:
                if not table.has_snapshot(ssid):
                    continue
                for instance in range(table.parallelism):
                    state = table.instance_state(ssid, instance)
                    if key in state:
                        audit.versions[ssid] = state[key]
                        break
        report.completed_ms = self.sim.now
        self.audits_executed += 1
        if report.on_done is not None:
            report.on_done(report)

    # -- state history ------------------------------------------------------

    def submit_history(
        self, table: str, key: Hashable,
        on_done: Callable[[AuditReport], None] | None = None,
    ) -> AuditReport:
        """How ``key``'s state in one operator evolved across the
        retained snapshot versions (the §III debugging capability)."""
        snap_name = table if table.startswith("snapshot_") \
            else f"snapshot_{table}"
        if not self.store.has_snapshot_table(snap_name):
            raise QueryError(f"no snapshot table for {table!r}")
        report = AuditReport(key=key, submitted_ms=self.sim.now)
        report.on_done = on_done
        versions = self.store.available_ssids()
        duration = (
            self.costs.direct_fixed_ms
            + max(1, len(versions)) * self.costs.direct_key_ms
        )
        node = self._next_entry_node()
        pool = self.cluster.node(node).query_pool
        pool.submit(
            ("audit", report.aid), duration,
            self._complete_history, report, snap_name, versions,
        )
        return report

    def _complete_history(self, report: AuditReport, snap_name: str,
                          versions: list[int]) -> None:
        base = snap_name.removeprefix("snapshot_")
        audit = report.tables.setdefault(base, TableAudit(base))
        table = self.store.get_snapshot_table(snap_name)
        if self.store.has_live_table(base):
            audit.live_value = self.store.get_live_table(base).get(
                report.key
            )
        for ssid in versions:
            if not table.has_snapshot(ssid):
                continue
            for instance in range(table.parallelism):
                state = table.instance_state(ssid, instance)
                if report.key in state:
                    audit.versions[ssid] = state[report.key]
                    break
        report.completed_ms = self.sim.now
        self.audits_executed += 1
        if report.on_done is not None:
            report.on_done(report)

    def _next_entry_node(self) -> int:
        alive = self.cluster.surviving_node_ids()
        node = alive[self._entry_rotation % len(alive)]
        self._entry_rotation += 1
        return node
