"""The query system of Fig. 1: SQL and direct-object interfaces.

:class:`~repro.query.service.QueryService` executes SQL over live and
snapshot state with full cost modelling — fixed parse/plan cost,
snapshot-id retrieval, chunked per-node scans on the store partition
servers (where they contend with checkpoint writes), result shipping
over the network, and a coordinator-side merge.  Results are computed by
the real SQL engine over the real state, so correctness and isolation
semantics are exact while time is simulated.

:class:`~repro.query.direct.DirectObjectInterface` is the lighter
key-lookup path used for the TSpoon comparison (Fig. 14).
"""

from .audit import AuditReport, StateAuditor, TableAudit
from .direct import DirectObjectInterface, DirectQuery
from .service import QueryExecution, QueryService

__all__ = [
    "AuditReport",
    "DirectObjectInterface",
    "DirectQuery",
    "QueryExecution",
    "QueryService",
    "StateAuditor",
    "TableAudit",
]
